"""Ablation: the class cache (§4.2).

"MAGE currently clones classes, leaving behind a copy of each object's
class that visited a particular node … Caching class definitions in this
way is an optimization that can speed up object migration."

The bench migrates a stream of same-class objects into one node with the
cache on and off, reporting per-move virtual cost and wire traffic, and
asserts the optimization's claimed direction.
"""

from repro.bench.tables import render_table
from repro.bench.workloads import Counter
from repro.net.conditions import ConstantLatency

BANDWIDTH = 1250.0  # 10 Mb/s in bytes/ms
N_OBJECTS = 8


def _migration_stream(make_cluster, class_cache: bool):
    cluster = make_cluster(
        ["source", "sink"],
        class_cache=class_cache,
        latency=ConstantLatency(bandwidth_bytes_per_ms=BANDWIDTH),
    )
    for i in range(N_OBJECTS):
        cluster["source"].register(f"obj{i}", Counter(i))
    costs = []
    for i in range(N_OBJECTS):
        before_ms = cluster.clock.now_ms()
        before_msgs = cluster.trace.remote_message_count()
        cluster["source"].namespace.move(f"obj{i}", "sink")
        costs.append((
            cluster.clock.now_ms() - before_ms,
            cluster.trace.remote_message_count() - before_msgs,
        ))
    loads = cluster["sink"].namespace.classcache.loads
    return costs, loads


def test_ablation_class_cache(benchmark, report, make_cluster):
    (cached_costs, cached_loads) = benchmark.pedantic(
        _migration_stream, args=(make_cluster, True), iterations=1, rounds=1
    )
    (uncached_costs, uncached_loads) = _migration_stream(make_cluster, False)

    cached_warm = [ms for ms, _m in cached_costs[1:]]
    uncached_warm = [ms for ms, _m in uncached_costs[1:]]
    mean_cached = sum(cached_warm) / len(cached_warm)
    mean_uncached = sum(uncached_warm) / len(uncached_warm)

    # The §4.2 claim: caching speeds up object migration.
    assert mean_cached < mean_uncached
    # Mechanism: cached warm moves are 2 messages (transfer + ack);
    # uncached ones add a class back-pull round trip.
    assert all(m == 2 for _ms, m in cached_costs[1:])
    assert all(m == 4 for _ms, m in uncached_costs[1:])
    # And the receiver re-execs every arrival without the cache.
    assert cached_loads == 1
    assert uncached_loads == N_OBJECTS

    rows = [
        ("cache on (paper)", f"{cached_costs[0][0]:.1f}",
         f"{mean_cached:.1f}", f"{cached_costs[0][1]}/{cached_costs[-1][1]}",
         cached_loads),
        ("cache off (ablation)", f"{uncached_costs[0][0]:.1f}",
         f"{mean_uncached:.1f}",
         f"{uncached_costs[0][1]}/{uncached_costs[-1][1]}", uncached_loads),
    ]
    report("ablation_classcache", render_table(
        ["Configuration", "first move (vms)", "warm move (vms)",
         "msgs cold/warm", "class loads at sink"],
        rows,
        title=f"Ablation — §4.2 class cache ({N_OBJECTS} same-class "
              "objects migrating to one node)",
    ))
