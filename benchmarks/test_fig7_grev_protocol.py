"""Figure 7: the GREV protocol, message for message.

"The mobility attribute, denoted GREV, finds C by consulting the local
MAGE registry, at 1 and 2 … After GREV determines its computation target,
it sends message 3 to the remote virtual machine to move C from namespace
Y to Z.  Y's virtual machine sends C at 4, then informs REV with the
message 5.  GREV then invokes the operation on C by sending message 6 and
receives its result in 7."

The bench reproduces the exact scenario (C remote at Y, not yet at target
Z) and asserts the live trace realizes messages 1–7.  Two message pairs
beyond the figure's seven are asserted explicitly, and both are covered by
the paper's own caveat that the figure "elides any messages sent by the
registry in the course of finding C": the forwarding-chain walk behind the
registry consultation, and the OBJECT_TRANSFER acknowledgment of our
reliable transfer.
"""

from repro.bench.tables import render_arrows
from repro.bench.workloads import Counter
from repro.core.models import GREV

#: Figure 7's messages, as (kind, src, dst) — X hosts GREV, Y hosts C,
#: Z is the computation target.  Unnumbered entries are the elided ones.
FIGURE7_EXPECTED = [
    ("FIND", "X", "X"),                       # 1: consult local registry
    ("FIND", "X", "Y"),                       # (chain walk — elided)
    ("REPLY(FIND)", "Y", "X"),                # (chain walk — elided)
    ("REPLY(FIND)", "X", "X"),                # 2: registry answers
    ("MOVE_REQUEST", "X", "Y"),               # 3: ask Y to move C
    ("OBJECT_TRANSFER", "Y", "Z"),            # 4: Y sends C to Z
    ("REPLY(OBJECT_TRANSFER)", "Z", "Y"),     # (ack — elided in the figure)
    ("REPLY(MOVE_REQUEST)", "Y", "X"),        # 5: Y informs GREV
    ("INVOKE", "X", "Z"),                     # 6: invoke the operation on C
    ("REPLY(INVOKE)", "Z", "X"),              # 7: the result returns
]


def _figure7_run(make_cluster):
    cluster = make_cluster(["X", "Y", "Z"])
    cluster["Y"].register("C", Counter())
    # Prime X's registry so the bind-time consultation is purely local
    # (the figure's messages 1–2 target the *local* MAGE registry).
    cluster["X"].find("C", origin_hint="Y", verify=True)
    grev = GREV("C", "Z", runtime=cluster["X"].namespace, origin="Y")
    start = len(cluster.trace)
    stub = grev.bind()
    result = stub.increment()
    events = [
        e for e in cluster.trace.events()[start:]
        if e.kind in {k for k, _s, _d in FIGURE7_EXPECTED}
    ]
    return cluster, events, result


def test_fig7_grev_message_sequence(benchmark, report, make_cluster):
    cluster, events, result = benchmark.pedantic(
        _figure7_run, args=(make_cluster,), iterations=1, rounds=1
    )
    assert result == 1
    observed = [(e.kind, e.src, e.dst) for e in events]
    assert observed == FIGURE7_EXPECTED, (
        "GREV protocol deviated from Figure 7:\n"
        + "\n".join(map(str, observed))
    )
    numbered = [
        f"{e.src} -> {e.dst}: {e.kind}" for e in events
    ]
    report("figure7_grev_protocol", render_arrows(
        "Figure 7 — The GREV Protocol (messages 1-7; transfer ack elided "
        "in the paper's figure)",
        numbered,
    ))


def test_fig7_total_remote_cost(benchmark, make_cluster):
    """The protocol costs exactly 4 remote round trips (8 messages):
    registry walk, move request, object transfer, invoke."""
    cluster, events, _result = benchmark.pedantic(
        _figure7_run, args=(make_cluster,), iterations=1, rounds=1
    )
    remote = [e for e in events if not e.local]
    assert len(remote) == 8
