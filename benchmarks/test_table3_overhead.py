"""Table 3: MAGE overhead measurements.

The headline experiment.  For each of the five measured models we run 10
full invocations on a fresh two-node cluster (the paper's two-machine
testbed) and report:

* single (cold) and amortized-over-10 virtual milliseconds — comparable to
  the paper's columns because the simulated network charges 10 ms per
  one-way remote message, calibrating a request/reply pair to the paper's
  20 ms RMI round trip (plus 10 Mb/s bandwidth for payload size);
* remote message counts (cold/warm) — the mechanistic explanation the
  paper gives ("multiple calls to Java's RMI");
* real wall microseconds of this in-process implementation.

Shape assertions: the paper's orderings must hold — RMI ≤ MageRMI,
{MageRMI, TCOD} ≪ MA < TREV — and TREV must land at roughly 4 bare-RMI
round trips.
"""

import pytest

from repro.bench.harness import measure_invocations
from repro.bench.paper import PAPER_TABLE3, TABLE3_ORDERINGS
from repro.bench.table3 import TABLE3_MODELS, two_nodes
from repro.bench.tables import render_table
from repro.net.conditions import ConstantLatency

#: 10 Mb/s Ethernet ≈ 1250 bytes per millisecond.
PAPER_BANDWIDTH = 1250.0


def _run_model(label, make_cluster, iterations=10):
    cluster = make_cluster(
        two_nodes(),
        latency=ConstantLatency(bandwidth_bytes_per_ms=PAPER_BANDWIDTH),
    )
    operation = TABLE3_MODELS[label](cluster)
    return measure_invocations(cluster, label, operation, iterations)


@pytest.fixture(scope="module")
def all_series(request):
    """Run all five models once; shared across the assertions below."""
    from repro.cluster import Cluster

    created = []

    def factory(node_ids, **kwargs):
        kwargs.setdefault("synchronous_casts", True)
        cluster = Cluster(node_ids, **kwargs)
        created.append(cluster)
        return cluster

    series = {label: _run_model(label, factory) for label in TABLE3_MODELS}
    yield series
    for cluster in created:
        cluster.shutdown()


def test_table3_overhead_table(benchmark, report, all_series, make_cluster):
    # pytest-benchmark times the paper's headline row (amortized TREV).
    benchmark.pedantic(
        lambda: _run_model("Traditional REV (TREV)", make_cluster),
        iterations=1, rounds=3,
    )
    rows = []
    for label, series in all_series.items():
        paper = PAPER_TABLE3[label]
        rows.append((
            label,
            f"{paper.single_ms:.0f}",
            f"{paper.amortized_ms:.0f}",
            f"{series.single_ms:.1f}",
            f"{series.amortized_ms:.1f}",
            f"{series.remote_messages[0]}/{series.warm_messages}",
            f"{series.amortized_wall_us:.0f}",
        ))
    text = render_table(
        ["Model", "paper single (ms)", "paper amort (ms)",
         "ours single (vms)", "ours amort (vms)", "msgs cold/warm",
         "wall µs/invocation"],
        rows,
        title="Table 3 — MAGE Overhead Measurements "
              "(virtual ms calibrated to the paper's 10 Mb/s testbed)",
    )
    report("table3_overhead", text)


def test_table3_orderings_hold(benchmark, all_series):
    """Who beats whom, as in the paper."""
    amortized = benchmark(
        lambda: {label: s.amortized_ms for label, s in all_series.items()}
    )
    for cheaper, dearer in TABLE3_ORDERINGS:
        assert amortized[cheaper] <= amortized[dearer], (
            f"{cheaper} ({amortized[cheaper]:.1f}) must not exceed "
            f"{dearer} ({amortized[dearer]:.1f})"
        )


def test_table3_trev_is_about_four_rmi_calls(benchmark, all_series):
    """§5: 'REV involves four Java RMI calls in our implementation.'"""
    rmi = benchmark(lambda: all_series["Java's RMI"].amortized_ms)
    trev = all_series["Traditional REV (TREV)"].amortized_ms
    assert 3.0 <= trev / rmi <= 5.5, f"TREV/RMI ratio off: {trev / rmi:.2f}"
    assert all_series["Traditional REV (TREV)"].warm_messages == 8


def test_table3_mage_rmi_is_a_thin_wrapper(benchmark, all_series):
    """'MAGE's RMI is a thin wrapper … only a slightly longer execution
    time' — within 25% of bare RMI, as in the paper (23 vs 20 ms)."""
    rmi = benchmark(lambda: all_series["Java's RMI"].amortized_ms)
    mage = all_series["Mage's RMI"].amortized_ms
    assert mage / rmi <= 1.25


def test_table3_tcod_amortizes_to_about_one_rmi(benchmark, all_series):
    """TCOD's class cache makes warm binds ≈ one conditional round trip."""
    rmi = benchmark(lambda: all_series["Java's RMI"].amortized_ms)
    tcod = all_series["Traditional COD (TCOD)"].amortized_ms
    assert tcod / rmi <= 1.3


def test_table3_ma_cheaper_than_trev_result_stays_remote(benchmark, all_series):
    """MA skips the result return: strictly fewer messages than TREV."""
    ma = benchmark(lambda: all_series["MA"])
    trev = all_series["Traditional REV (TREV)"]
    assert ma.warm_messages < trev.warm_messages
    assert ma.amortized_ms < trev.amortized_ms
