"""Figure 3: Current Location Evaluation.

"In Figure 3, P finds C to make its invocation request" — while a
controller keeps moving C.  The bench drives the §3.3 printer scenario:
clients invoke through CLE as the job controller migrates the print server
across the fleet, asserting every job lands on the *same component*
("CLE … can refer to the same component across invocations and
namespaces", unlike Jini's interface-level rebinding).
"""

from repro.bench.tables import render_table
from repro.bench.workloads import PrintServer
from repro.core.models import CLE


def _printer_scenario(make_cluster, migrations=6):
    floors = ["floor1", "floor2", "floor3"]
    cluster = make_cluster(["controller"] + floors)
    cluster["controller"].register("ps", PrintServer("ps"), shared=True)
    client = CLE("ps", runtime=cluster["floor1"].namespace,
                 origin="controller")
    controller = cluster["controller"].namespace

    rows = []
    for i in range(migrations):
        target = floors[i % len(floors)]
        controller.move("ps", target, origin_hint="controller")
        receipt = client.bind().print_job(f"job-{i}")
        rows.append((i, target, client.cloc, receipt))
    total = client.bind().queue_length()
    return cluster, rows, total


def test_fig3_cle_follows_the_moving_component(benchmark, report,
                                               make_cluster):
    cluster, rows, total = benchmark.pedantic(
        _printer_scenario, args=(make_cluster,), iterations=1, rounds=1
    )
    for i, target, found_at, receipt in rows:
        assert found_at == target, f"job {i}: CLE found {found_at}, not {target}"
        assert receipt.startswith(f"ps:{i + 1}:")  # one queue, one component
    assert total == len(rows)
    report("figure3_cle", render_table(
        ["Invocation", "Controller moved ps to", "CLE found it at", "Receipt"],
        rows,
        title="Figure 3 — Current Location Evaluation "
              "(printer management, §3.3)",
    ))


def test_fig3_cle_find_cost_scales_with_staleness(benchmark, report,
                                                  make_cluster):
    """CLE pays a verified find per bind; path collapsing keeps the cost at
    one extra round trip once the chain is short."""
    cluster = make_cluster(["controller", "floor1", "floor2", "floor3"])
    cluster["controller"].register("ps", PrintServer(), shared=True)
    client = CLE("ps", runtime=cluster["floor1"].namespace,
                 origin="controller")
    controller = cluster["controller"].namespace

    def one_invocation():
        controller.move("ps", "floor2", origin_hint="controller")
        controller.move("ps", "floor3", origin_hint="controller")
        client.bind().print_job("x")

    benchmark(one_invocation)
    rows = []
    for _ in range(3):
        before = cluster.trace.remote_message_count()
        client.bind().print_job("steady")
        rows.append(("steady-state bind+invoke",
                     cluster.trace.remote_message_count() - before))
    # Steady state: verified FIND round trip + INVOKE round trip.
    assert all(cost == 4 for _label, cost in rows)
    report("figure3_cle_cost", render_table(
        ["Operation", "Remote messages"], rows,
        title="CLE steady-state cost (find + invoke)",
    ))
