"""Same-host fast paths: what each rung of the locality ladder buys.

Three comparisons, all at 8 concurrent callers:

* **Colocated invoke** — a stub whose servant lives in the caller's own
  store, with the tier-1 in-process bypass on vs off (off = the
  pre-bypass behaviour: marshal, frame, loopback TCP through this node's
  own listener, unmarshal).  The ladder's headline number: the bypass
  must clear **5x**.
* **Same-host UDS** — two separate transports on one machine (stand-ins
  for two processes), dialling each other over the tier-2 Unix-domain
  socket vs plain loopback TCP.  The payload is a compressible ~15 KB
  tree, the case the same-host codec policy targets: the TCP leg pays
  the negotiated zlib pass both ways, the UDS leg provably shares the
  machine and skips it.  Must clear **1.2x**.
* **Migrate-then-call** — a servant starts remote, the stub's first call
  takes the wire, the object migrates to the caller's node, and the next
  call rides the bypass: the tier upgrade MAGE's whole migrate-toward-
  the-caller argument banks on, asserted via the client's bypass-hit
  counter.

Interleaved best-of sampling (each transport measured in adjacent load
windows, best rate kept) damps the box noise a single A/B run is hostage
to.  Results go to ``results/local_bypass.txt`` and machine-readable
``results/BENCH_local_bypass.json``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.net.message import MessageKind, inline_safe
from repro.net.tcpnet import TcpNetwork
from repro.runtime.namespace import Namespace

WORKERS = 8
COLOCATED_CALLS = 150
UDS_CALLS = 60
WARMUP_CALLS = 5
#: Interleaved A/B blocks; each block keeps its best of REPS runs.
BLOCKS = 2
REPS = 3

#: The UDS comparison payload: compressible and over the negotiated
#: compression threshold, so the TCP leg pays zlib in both directions.
UDS_PAYLOAD = list(range(5000))


@dataclass(frozen=True)
class LadderSample:
    """One measured configuration: rate plus latency spread."""

    calls_per_s: float
    p50_ms: float
    p99_ms: float

    def as_dict(self) -> dict:
        return {
            "calls_per_s": round(self.calls_per_s, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _run_callers(call, workers: int, calls: int) -> LadderSample:
    """Rate and latency spread for ``workers`` threads looping ``call``."""
    barrier = threading.Barrier(workers + 1)
    lanes: list[list[float]] = [[] for _ in range(workers)]

    def worker(lane: list[float]) -> None:
        barrier.wait()
        for i in range(calls):
            t0 = time.perf_counter()
            call(i)
            lane.append(time.perf_counter() - t0)

    threads = [
        threading.Thread(target=worker, args=(lane,)) for lane in lanes
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    latencies = sorted(sample for lane in lanes for sample in lane)
    return LadderSample(
        calls_per_s=workers * calls / elapsed,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p99_ms=_percentile(latencies, 0.99) * 1000.0,
    )


def _best(a: LadderSample, b: LadderSample) -> LadderSample:
    return a if a.calls_per_s >= b.calls_per_s else b


def measure_colocated(local_bypass: bool,
                      calls: int = COLOCATED_CALLS) -> LadderSample:
    """Stub-call rate against a servant in the caller's own store."""
    net = TcpNetwork(local_bypass=local_bypass)
    try:
        ns = Namespace("bench", net)

        class Adder:
            def add(self, a, b=0):
                return a + b

        ns.register("adder", Adder())
        stub = ns.stub("adder")
        for _ in range(WARMUP_CALLS):
            stub.add(1)
        best = None
        for _ in range(REPS):
            sample = _run_callers(lambda i: stub.add(i), WORKERS, calls)
            best = sample if best is None else _best(best, sample)
        if local_bypass:
            assert ns.client.local_hits > 0, "bypass never engaged"
        else:
            assert ns.client.local_hits == 0, "wire leg leaked onto bypass"
        return best
    finally:
        net.shutdown()


def measure_same_host(uds: bool, calls: int = UDS_CALLS) -> LadderSample:
    """Cross-transport call rate: UDS dial vs plain loopback TCP."""
    a, b = TcpNetwork(), TcpNetwork(uds=uds)
    try:
        a.register("caller", lambda m: None)
        b.register("server", inline_safe(lambda m: m.payload))
        a.connect("server", b.endpoint_of("server"))
        b.connect("caller", a.endpoint_of("caller"))
        for _ in range(WARMUP_CALLS):
            a.call("caller", "server", MessageKind.PING, UDS_PAYLOAD)
        best = None
        for _ in range(REPS):
            sample = _run_callers(
                lambda i: a.call("caller", "server", MessageKind.PING,
                                 UDS_PAYLOAD),
                WORKERS, calls,
            )
            best = sample if best is None else _best(best, sample)
        return best
    finally:
        a.shutdown()
        b.shutdown()


def measure_migration_upgrade() -> dict:
    """Tier upgrade after a move: wire first, bypass after migration."""
    net = TcpNetwork()
    try:
        home = Namespace("home", net)
        away = Namespace("away", net)

        class Counter:
            def __init__(self):
                self.n = 0

            def bump(self):
                self.n += 1
                return self.n

        away.register("counter", Counter())
        stub = home.stub("counter", location="away")
        t0 = time.perf_counter()
        assert stub.bump() == 1
        wire_ms = (time.perf_counter() - t0) * 1000.0
        hits_before = home.client.local_hits
        home.move("counter", "home", location="away")
        t0 = time.perf_counter()
        assert stub.bump() == 2  # state travelled with the object
        upgraded_ms = (time.perf_counter() - t0) * 1000.0
        hits_after = home.client.local_hits
        assert hits_before == 0
        assert hits_after == 1, "post-migration call missed the bypass"
        return {
            "wire_call_ms": round(wire_ms, 3),
            "post_move_call_ms": round(upgraded_ms, 3),
            "bypass_hits_before_move": hits_before,
            "bypass_hits_after_move": hits_after,
        }
    finally:
        net.shutdown()


def test_local_bypass_smoke():
    """Low-iteration CI guard: the colocated bypass must beat the
    pipelined loopback-TCP baseline outright (the full bench, which
    also asserts the 5x margin, writes the recorded artifacts)."""
    bypass = measure_colocated(True, calls=40)
    wire = measure_colocated(False, calls=40)
    assert bypass.calls_per_s > wire.calls_per_s


def test_local_bypass(report):
    bypass = wire = uds = tcp = None
    for _ in range(BLOCKS):  # interleave: adjacent load windows per pair
        sample = measure_colocated(True)
        bypass = sample if bypass is None else _best(bypass, sample)
        sample = measure_colocated(False)
        wire = sample if wire is None else _best(wire, sample)
    for _ in range(BLOCKS):
        sample = measure_same_host(True)
        uds = sample if uds is None else _best(uds, sample)
        sample = measure_same_host(False)
        tcp = sample if tcp is None else _best(tcp, sample)
    migration = measure_migration_upgrade()
    bypass_speedup = bypass.calls_per_s / wire.calls_per_s
    uds_speedup = uds.calls_per_s / tcp.calls_per_s
    lines = [
        "Same-host fast paths -- 8 concurrent callers",
        "(locality tier vs calls/second; speedup over its wire baseline)",
        "",
        "colocated invoke (tier 1 vs pipelined loopback TCP):",
        f"  bypass     {bypass.calls_per_s:>10.0f} calls/s   "
        f"p50 {bypass.p50_ms:>6.3f} ms   p99 {bypass.p99_ms:>7.3f} ms",
        f"  wire       {wire.calls_per_s:>10.0f} calls/s   "
        f"p50 {wire.p50_ms:>6.3f} ms   p99 {wire.p99_ms:>7.3f} ms",
        f"  speedup    {bypass_speedup:>9.2f}x",
        "",
        "same-host transport (tier 2 UDS vs loopback TCP, ~15 KB "
        "compressible payload):",
        f"  uds        {uds.calls_per_s:>10.0f} calls/s   "
        f"p50 {uds.p50_ms:>6.3f} ms   p99 {uds.p99_ms:>7.3f} ms",
        f"  tcp        {tcp.calls_per_s:>10.0f} calls/s   "
        f"p50 {tcp.p50_ms:>6.3f} ms   p99 {tcp.p99_ms:>7.3f} ms",
        f"  speedup    {uds_speedup:>9.2f}x",
        "",
        "migrate-then-call (tier upgrade after a move):",
        f"  first call (wire)      {migration['wire_call_ms']:>8.3f} ms   "
        f"bypass hits {migration['bypass_hits_before_move']}",
        f"  post-move call (bypass){migration['post_move_call_ms']:>8.3f} ms"
        f"   bypass hits {migration['bypass_hits_after_move']}",
    ]
    data = {
        "workers": WORKERS,
        "colocated": {
            "calls_per_worker": COLOCATED_CALLS,
            "bypass": bypass.as_dict(),
            "pipelined_tcp": wire.as_dict(),
            "speedup": round(bypass_speedup, 2),
        },
        "same_host": {
            "calls_per_worker": UDS_CALLS,
            "payload": "list(range(5000)), compressible, ~15 KB pickled",
            "uds": uds.as_dict(),
            "loopback_tcp": tcp.as_dict(),
            "speedup": round(uds_speedup, 2),
        },
        "migration_upgrade": migration,
    }
    report("local_bypass", "\n".join(lines), data)
    # The acceptance shape: the bypass collapses the loopback stack, and
    # the Unix socket (plus its same-host codec policy) beats TCP.
    assert bypass_speedup >= 5.0
    assert uds_speedup >= 1.2
