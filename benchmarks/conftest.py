"""Bench fixtures: result-artifact writing and cluster factories.

Every bench regenerates one of the paper's tables or figures, asserts the
shape that must hold, and writes the rendered artifact to
``benchmarks/results/<name>.txt`` (also echoed to stdout under ``-s``) so
EXPERIMENTS.md can point at concrete files.  A bench that also passes a
``data`` mapping gets a machine-readable twin at
``benchmarks/results/BENCH_<name>.json`` for dashboards and regression
tracking.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cluster import Cluster

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Write (and print) a named bench artifact."""

    def writer(name: str, text: str, data: dict | None = None) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        if data is not None:
            json_path = results_dir / f"BENCH_{name}.json"
            json_path.write_text(
                json.dumps(data, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        print(f"\n{text}\n[written to {path}]")

    return writer


@pytest.fixture
def make_cluster():
    """Simulated-network cluster factory (torn down after the bench)."""
    created: list[Cluster] = []

    def factory(node_ids, **kwargs) -> Cluster:
        kwargs.setdefault("synchronous_casts", True)
        cluster = Cluster(node_ids, **kwargs)
        created.append(cluster)
        return cluster

    yield factory
    for cluster in created:
        cluster.shutdown()
