"""Two-phase streamed migration vs the monolithic frame, plus hedged writes.

Not a paper figure — the engineering bench for the PR-4 migration data
path.  §3.5's weak migration shipped ``(class descriptor, marshalled
state)`` as one monolithic pickled frame: a large object serialized,
transmitted, and applied as a single blocking unit.  The streamed
pipeline cuts that three ways — chunked frames pipeline over the pooled
socket, the negotiated frame codec shrinks what crosses the (bandwidth-
limited) link, and the PREPARE/CHUNK/COMMIT handshake defers apply so
the write side can be hedged.

Topology: real TCP sockets, 2 ms emulated link delay, 200 Mbit/s
emulated link bandwidth (the regime where an 8 MB frame costs ~320 ms of
transmission).  Two workloads:

* ``throughput`` — an 8 MB (compressible) object moves between two
  nodes: the pre-PR monolithic OBJECT_TRANSFER (codecs disabled, single
  frame) vs chunked-raw vs chunked+zlib.  Bar: chunked+compressed ≥ 2x
  the monolithic throughput.
* ``hedged write`` — the same object must leave its host while the
  preferred target's dispatcher stalls 500 ms per message: plain
  ``move`` to the stalled target vs ``move(hedge=True,
  alternates=(healthy,))``.  Bar: hedged p99 ≥ 2x better.

Throughout, a poller asserts the staging invariant the two-phase design
exists for: **no observation ever sees a transferred object in a store
while its transfer is still staged** — partial streams are invisible,
and a hedged loser never materializes anything.

Excluded from tier-1 (``-m "not slow"``); runs in the weekly slow job or
explicitly via ``pytest -m slow benchmarks/test_transfer_pipeline.py``.
Results in ``results/transfer_pipeline.txt``.
"""

from __future__ import annotations

import statistics
import threading
import time

import pytest

from repro.cluster import Cluster
from repro.net.deadline import Deadline
from repro.net.tcpnet import TcpNetwork

LINK_LATENCY_MS = 2.0
BANDWIDTH_MBPS = 200.0
STATE_BYTES = 8 * 1024 * 1024      # 8 MB of object state
STALL_MS = 500.0
THROUGHPUT_SAMPLES = 5
HEDGE_SAMPLES = 5
IO_TIMEOUT_S = 30.0


class BulkState:
    """8 MB of structured, compressible state (sensor-log shaped)."""

    def __init__(self, nbytes=STATE_BYTES):
        self.readings = (b"reading:0042.17;" * (nbytes // 16))
        self.tag = "bulk"


def p99(samples_s):
    ordered = sorted(samples_s)
    index = min(len(ordered) - 1, round(0.99 * (len(ordered) + 1)) - 1)
    return ordered[max(index, 0)]


class StagingProbe:
    """Polls (store ∧ staging) on the receiving nodes during a move.

    Records a violation whenever a sampled instant shows the object
    present in a node's store *while that node still holds staged
    transfers* — the partially-applied-object observation the two-phase
    commit must make impossible.
    """

    def __init__(self, nodes, name):
        self._nodes = nodes
        self._name = name
        self.violations = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._poll, daemon=True)

    def _poll(self):
        while not self._stop.is_set():
            for node in self._nodes:
                present = node.namespace.store.contains(self._name)
                staged = node.namespace.mover.staging_count()
                if present and staged:
                    self.violations.append((node.node_id, self._name, staged))
            time.sleep(0.001)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._stop.set()
        self._thread.join(2.0)


def _cluster(codecs, stream_threshold, chunk_bytes=256 * 1024,
             node_ids=("n0", "n1", "n2")):
    net = TcpNetwork(latency_ms=LINK_LATENCY_MS, io_timeout_s=IO_TIMEOUT_S,
                     bandwidth_mbps=BANDWIDTH_MBPS, codecs=codecs,
                     server_workers=16)
    cluster = Cluster(list(node_ids), transport=net,
                      stream_threshold=stream_threshold,
                      chunk_bytes=chunk_bytes)
    return cluster, net


def measure_throughput(codecs, stream_threshold, label):
    """Seconds per 8 MB move, one arm; staging invariant asserted."""
    cluster, _net = _cluster(codecs, stream_threshold, node_ids=("n0", "n1"))
    samples = []
    try:
        receivers = [cluster["n1"]]
        for i in range(THROUGHPUT_SAMPLES):
            name = f"bulk-{label}-{i}"
            cluster["n0"].register(name, BulkState())
            with StagingProbe(receivers, name) as probe:
                start = time.perf_counter()
                assert cluster["n0"].namespace.move(name, "n1") == "n1"
                samples.append(time.perf_counter() - start)
            assert probe.violations == [], probe.violations
            assert cluster["n1"].namespace.store.get(name).tag == "bulk"
            cluster["n1"].namespace.unregister(name)
    finally:
        cluster.shutdown()
    return samples


def measure_hedged_write():
    """(plain_s, hedged_s) move times with the preferred target stalled."""
    cluster, net = _cluster(codecs=None, stream_threshold=256 * 1024,
                            chunk_bytes=1024 * 1024)
    plain, hedged = [], []
    release = threading.Event()
    try:
        inner = cluster["n1"].namespace.external.handle

        def stalled_dispatch(message):
            release.wait(STALL_MS / 1000.0)
            return inner(message)

        net.register("n1", stalled_dispatch)
        stalled = [cluster["n1"]]
        healthy = [cluster["n2"]]

        for i in range(HEDGE_SAMPLES):
            name = f"bulk-plain-{i}"
            cluster["n0"].register(name, BulkState())
            start = time.perf_counter()
            assert cluster["n0"].namespace.move(name, "n1") == "n1"
            plain.append(time.perf_counter() - start)

        for i in range(HEDGE_SAMPLES):
            name = f"bulk-hedged-{i}"
            cluster["n0"].register(name, BulkState())
            with StagingProbe(stalled + healthy, name) as probe:
                start = time.perf_counter()
                landed = cluster["n0"].namespace.move(
                    name, "n1", hedge=True, alternates=("n2",),
                    deadline=Deadline.after_s(IO_TIMEOUT_S),
                )
                hedged.append(time.perf_counter() - start)
            assert probe.violations == [], probe.violations
            # The healthy alternate won; the stalled loser never
            # materialized the object (its stream was aborted pre-apply).
            assert landed == "n2"
            assert not cluster["n1"].namespace.store.contains(name)
        # Let the losers' fire-and-forget aborts land, then confirm no
        # staging leaked anywhere (the GC would reap stragglers anyway).
        release.set()
        deadline = time.monotonic() + 10.0
        while (any(n.namespace.mover.staging_count() for n in cluster)
               and time.monotonic() < deadline):
            time.sleep(0.05)
        for node in cluster:
            assert node.namespace.mover.staging_count() == 0
    finally:
        release.set()
        cluster.shutdown()
    return plain, hedged


@pytest.mark.slow
def test_transfer_pipeline(report):
    mono = measure_throughput((), stream_threshold=1 << 30, label="mono")
    chunked_raw = measure_throughput((), stream_threshold=256 * 1024,
                                     label="raw")
    chunked_zlib = measure_throughput(None, stream_threshold=256 * 1024,
                                      label="zlib")
    plain, hedged = measure_hedged_write()

    mbytes = STATE_BYTES / (1024 * 1024)
    speedup = statistics.median(mono) / statistics.median(chunked_zlib)
    hedge_gain = p99(plain) / p99(hedged)

    def row(label, samples):
        med = statistics.median(samples)
        return (f"  {label:<28} median {med * 1000:>9.1f} ms   "
                f"p99 {p99(samples) * 1000:>9.1f} ms   "
                f"{mbytes / med:>7.1f} MB/s")

    lines = [
        f"Streamed two-phase migration -- {mbytes:.0f} MB object over TCP "
        f"sockets, {LINK_LATENCY_MS:.0f} ms link delay, "
        f"{BANDWIDTH_MBPS:.0f} Mbit/s emulated bandwidth",
        f"({THROUGHPUT_SAMPLES} samples per arm; chunk 256 KiB, window 8)",
        "",
        row("monolithic (pre-PR frame)", mono),
        row("chunked, raw", chunked_raw),
        row("chunked + zlib", chunked_zlib),
        f"  chunked+compressed vs monolithic: {speedup:.1f}x",
        "",
        f"Hedged writes -- preferred target stalls {STALL_MS:.0f} ms per "
        f"message ({HEDGE_SAMPLES} samples per arm; chunk 1 MiB)",
        f"  plain move -> stalled target   median "
        f"{statistics.median(plain) * 1000:>9.1f} ms   "
        f"p99 {p99(plain) * 1000:>9.1f} ms",
        f"  hedged (stalled + healthy)     median "
        f"{statistics.median(hedged) * 1000:>9.1f} ms   "
        f"p99 {p99(hedged) * 1000:>9.1f} ms",
        f"  hedged p99 gain: {hedge_gain:.1f}x",
        "",
        "staging invariant: zero observations of a store-visible object",
        "with transfers still staged; hedged losers never materialized.",
    ]
    report("transfer_pipeline", "\n".join(lines))

    # Acceptance bars.
    assert speedup >= 2.0, lines
    assert hedge_gain >= 2.0, lines
    # The plain arm honestly paid the stall at least once per move.
    assert p99(plain) >= STALL_MS / 1000.0, lines
