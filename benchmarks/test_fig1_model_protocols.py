"""Figure 1: the mobility semantics of RPC, COD, REV and MA — as traces.

The paper's Figure 1 draws each classical model's interaction between a
program P, a distinguished component C, and namespaces.  Here each model
runs live on a fresh cluster and the message trace *is* the figure: the
bench captures, prints, and asserts the defining sequence of each panel.
"""

from repro.bench.tables import render_arrows
from repro.bench.workloads import Counter
from repro.core.factory import FactoryMode
from repro.core.models import COD, MAgent, REV, RPC


def _remote_kinds(cluster, skip=0):
    return [e.kind for e in cluster.trace.filtered(remote_only=True)][skip:]


def _panel_a_rpc(make_cluster):
    """(a) Remote Procedure Call: C already resides on the target."""
    cluster = make_cluster(["A", "B"])
    cluster["B"].register("C", Counter())
    rpc = RPC("C", target="B", runtime=cluster["A"].namespace, origin="B")
    skip = cluster.trace.remote_message_count()
    rpc.bind().increment()
    return cluster, _remote_kinds(cluster, skip)


def _panel_b_cod(make_cluster):
    """(b) Code on Demand: the class is downloaded to the local namespace."""
    cluster = make_cluster(["A", "B"])
    cluster["B"].register_class(Counter)
    cod = COD("C", class_name="Counter", source="B",
              runtime=cluster["A"].namespace)
    skip = cluster.trace.remote_message_count()
    cod.bind().increment()
    return cluster, _remote_kinds(cluster, skip)


def _panel_c_rev(make_cluster):
    """(c) Remote Evaluation: P moves component C to namespace B."""
    cluster = make_cluster(["A", "B"])
    cluster["A"].register_class(Counter)
    rev = REV("Counter", "C", "B", mode=FactoryMode.TRADITIONAL,
              runtime=cluster["A"].namespace)
    skip = cluster.trace.remote_message_count()
    rev.bind().increment()
    return cluster, _remote_kinds(cluster, skip)


def _panel_d_ma(make_cluster):
    """(d) Mobile Agent: the component moves itself; results stay remote."""
    cluster = make_cluster(["A", "B"])
    cluster["A"].register_class(Counter)
    ma = MAgent("C", "B", class_name="Counter",
                runtime=cluster["A"].namespace)
    skip = cluster.trace.remote_message_count()
    ma.bind()
    ma.send("increment")
    cluster.quiesce()
    return cluster, _remote_kinds(cluster, skip)


PANELS = {
    "a_rpc": _panel_a_rpc,
    "b_cod": _panel_b_cod,
    "c_rev": _panel_c_rev,
    "d_ma": _panel_d_ma,
}


def test_fig1a_rpc_no_component_movement(benchmark, report, make_cluster):
    cluster, kinds = benchmark.pedantic(
        _panel_a_rpc, args=(make_cluster,), iterations=1, rounds=1
    )
    # RPC: pure invocation traffic, nothing about classes or objects moves.
    assert kinds == ["INVOKE", "REPLY(INVOKE)"]
    report("figure1a_rpc", render_arrows(
        "Figure 1(a) — Remote Procedure Call",
        cluster.trace.arrows(remote_only=True),
    ))


def test_fig1b_cod_downloads_code(benchmark, report, make_cluster):
    cluster, kinds = benchmark.pedantic(
        _panel_b_cod, args=(make_cluster,), iterations=1, rounds=1
    )
    # COD: the class crosses toward the caller, the invocation stays local.
    assert kinds == ["CLASS_REQUEST", "REPLY(CLASS_REQUEST)"]
    assert "INVOKE" not in kinds  # execution happened in the local namespace
    report("figure1b_cod", render_arrows(
        "Figure 1(b) — Code on Demand",
        cluster.trace.arrows(remote_only=True),
    ))


def test_fig1c_rev_ships_code_out_and_result_back(benchmark, report,
                                                  make_cluster):
    cluster, kinds = benchmark.pedantic(
        _panel_c_rev, args=(make_cluster,), iterations=1, rounds=1
    )
    assert kinds == [
        "CLASS_TRANSFER", "REPLY(CLASS_TRANSFER)",    # probe
        "CLASS_TRANSFER", "REPLY(CLASS_TRANSFER)",    # body
        "INSTANTIATE", "REPLY(INSTANTIATE)",
        "REGISTRY_BIND", "REPLY(REGISTRY_BIND)",      # publish
        "INVOKE", "REPLY(INVOKE)",                    # result returns
    ]
    report("figure1c_rev", render_arrows(
        "Figure 1(c) — Remote Evaluation",
        cluster.trace.arrows(remote_only=True),
    ))


def test_fig1d_ma_result_stays_remote(benchmark, report, make_cluster):
    cluster, kinds = benchmark.pedantic(
        _panel_d_ma, args=(make_cluster,), iterations=1, rounds=1
    )
    # MA deploys like REV but the final INVOKE is one-way: no reply.
    assert kinds[-1] == "INVOKE"
    assert kinds.count("INVOKE") == 1
    assert "REPLY(INVOKE)" not in kinds
    report("figure1d_ma", render_arrows(
        "Figure 1(d) — Mobile Agent",
        cluster.trace.arrows(remote_only=True),
    ))
