"""Table 1 + Figure 5: the models parameterized, and the class hierarchy.

Regenerates "Distributed Programming Models Parameterized" from the
implemented attribute classes (not from a hard-coded copy), checks the
uniqueness claim, and dumps the Figure 5 hierarchy from live introspection.
"""

from repro.bench.tables import render_table
from repro.core.attribute import MobilityAttribute
from repro.core.models import CANONICAL_MODELS
from repro.core.triple import CANONICAL_TRIPLES, TABLE1_ORDER, design_space, model_for


def _table1_rows():
    rows = []
    for model in TABLE1_ORDER:
        attribute_class = CANONICAL_MODELS[model]
        assert attribute_class.MODEL == model  # class ↔ table agreement
        rows.append((model, *CANONICAL_TRIPLES[model].row()))
    return rows


PAPER_TABLE1 = [
    ("MA", "remote", "remote", "yes"),
    ("REV", "local", "remote", "yes"),
    ("RPC", "remote", "remote", "no"),
    ("CLE", "not specified", "not specified", "no"),
    ("COD", "remote", "local", "yes"),
    ("LPC", "local", "local", "no"),
]


def test_table1_models_parameterized(benchmark, report):
    rows = benchmark(_table1_rows)
    assert rows == PAPER_TABLE1, "Table 1 must match the paper cell for cell"
    text = render_table(
        ["Model", "Current Location", "Target", "Moves Component"],
        rows,
        title="Table 1 — Distributed Programming Models Parameterized",
    )
    report("table1_models", text)


def test_table1_uniqueness_claim(benchmark):
    """'The triple … uniquely specifies all distributed programming models
    discussed in this paper.'"""

    def classical_triples():
        return [CANONICAL_TRIPLES[m] for m in TABLE1_ORDER]

    triples = benchmark(classical_triples)
    assert len(set(triples)) == len(triples)


def test_design_space_is_fully_enumerable(benchmark):
    space = benchmark(design_space)
    assert len(space) == 18
    named = [model_for(t) for t in space]
    assert sum(1 for n in named if n is not None) == len(CANONICAL_TRIPLES)


def test_figure5_class_hierarchy(benchmark, report):
    """Figure 5: every canonical model roots at MobilityAttribute."""

    def hierarchy():
        lines = ["MobilityAttribute (abstract, Figure 4)"]
        for model, cls in sorted(CANONICAL_MODELS.items()):
            assert issubclass(cls, MobilityAttribute)
            mro = " -> ".join(
                c.__name__ for c in cls.__mro__
                if issubclass(c, MobilityAttribute)
            )
            lines.append(f"  {model:5} {mro}")
        return lines

    lines = benchmark(hierarchy)
    report(
        "figure5_hierarchy",
        "Figure 5 — The Mobility Attribute Class Hierarchy\n"
        + "\n".join(lines),
    )
