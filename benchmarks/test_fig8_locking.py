"""Figure 8: mobile-object locking — stay/move queues under contention.

"If A.f and B.g both invoke C.g, MAGE must ensure their mutual
noninterference … Each mobile object has a lock queue … Because object
migration is so expensive, MAGE's current locking implementation unfairly
favors invocations that stay lock their object."

Two benches:

* the Figure 8 scenario itself — concurrent stay and move lockers on one
  object, asserting mutual noninterference (never two copies, no lost
  updates);
* the unfairness measurement — stay throughput achieved while a move
  waits, under the paper's unfair policy versus the fair-FIFO ablation.
"""

import threading
import time

from repro.bench.tables import render_table
from repro.bench.workloads import Counter
from repro.runtime.locks import LockManager


def _contention_round(locks: LockManager, stay_threads=4, stays_per_thread=25):
    """Hammer one object with stays while one mover waits; returns how many
    stay grants landed before the move got through.

    Sequencing matters: a primer stay blocks the mover, the mover is
    *confirmed queued*, and only then do the stayers start and the primer
    releases — so both policies face the identical situation: a waiting
    move versus a stream of stay requests.
    """
    stays_before_move = []
    counter_lock = threading.Lock()
    move_granted = threading.Event()
    stop = threading.Event()
    budget = stay_threads * stays_per_thread

    def stayer():
        from repro.errors import LockTimeoutError

        while not stop.is_set():
            try:
                grant = locks.acquire("C", "alpha", "stayer", timeout_ms=50)
            except LockTimeoutError:
                if move_granted.is_set():
                    return  # fair mode: blocked until the move went through
                continue
            with counter_lock:
                if not move_granted.is_set():
                    stays_before_move.append(1)
                done = len(stays_before_move) >= budget
            locks.release("C", grant.token)
            if done or move_granted.is_set():
                stop.set()

    def mover():
        grant = locks.acquire("C", "beta", "mover")
        move_granted.set()
        locks.release("C", grant.token)

    hold = locks.acquire("C", "alpha", "primer")  # make the mover queue up
    mover_thread = threading.Thread(target=mover)
    mover_thread.start()
    while locks.snapshot("C")["queued"] < 1:
        time.sleep(0.001)  # until the move request is demonstrably queued
    threads = [threading.Thread(target=stayer) for _ in range(stay_threads)]
    for t in threads:
        t.start()
    locks.release("C", hold.token)
    mover_thread.join(timeout=30)
    stop.set()
    for t in threads:
        t.join(timeout=30)
    return len(stays_before_move), locks.stats


def test_fig8_mutual_noninterference(benchmark, report, make_cluster):
    """The A.f / B.g scenario live: two attributes, different targets,
    interleaved moves — exactly one copy and no lost updates."""
    from repro.core.models import COD, GREV
    from repro.errors import LockMovedError, LockTimeoutError

    def scenario():
        cluster = make_cluster(["home", "alpha", "beta"])
        cluster["home"].register("C", Counter(), shared=True)
        errors = []

        def worker(node, attribute_factory, rounds=4):
            try:
                landed = 0
                attempts = 0
                while landed < rounds and attempts < 80:
                    attempts += 1
                    attribute = attribute_factory()
                    try:
                        with attribute.locked(timeout_ms=5000) as stub:
                            stub.increment()
                        landed += 1
                    except (LockMovedError, LockTimeoutError):
                        continue
                if landed != rounds:
                    raise AssertionError(f"{node}: only {landed} rounds")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(
                "alpha",
                lambda: COD("C", runtime=cluster["alpha"].namespace,
                            origin="home"),
            )),
            threading.Thread(target=worker, args=(
                "beta",
                lambda: GREV("C", "beta", runtime=cluster["beta"].namespace,
                             origin="home"),
            )),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == [], errors
        hosts = [n.node_id for n in cluster
                 if n.namespace.store.contains("C")]
        assert len(hosts) == 1
        final = cluster[hosts[0]].stub("C", location=hosts[0]).get()
        assert final == 8  # 2 workers x 4 increments, none lost
        return final

    final = benchmark.pedantic(scenario, iterations=1, rounds=1)
    report("figure8_noninterference",
           "Figure 8 — concurrent COD vs GREV on one object:\n"
           f"  exactly one copy survived, final count = {final} "
           "(2 invokers x 4 locked increments, none lost)")


def test_fig8_unfair_vs_fair_lock_policy(benchmark, report):
    """The unfairness ablation: under the paper's policy, stays granted
    while a move waits vastly exceed the fair-FIFO baseline."""

    def run_both():
        unfair_stays, unfair_stats = _contention_round(LockManager("alpha"))
        fair_stays, fair_stats = _contention_round(
            LockManager("alpha", fair=True)
        )
        return unfair_stays, fair_stays, unfair_stats, fair_stats

    unfair_stays, fair_stays, unfair_stats, fair_stats = benchmark.pedantic(
        run_both, iterations=1, rounds=1
    )
    # Unfair: the move waits while stays keep jumping the queue.
    # Fair: the queued move blocks later stays, so almost none sneak past.
    assert unfair_stays > fair_stays * 3, (
        f"unfair {unfair_stays} vs fair {fair_stays}"
    )
    rows = [
        ("unfair (paper §4.4)", unfair_stays, unfair_stats.stays_granted,
         unfair_stats.moves_granted),
        ("fair FIFO (ablation)", fair_stays, fair_stats.stays_granted,
         fair_stats.moves_granted),
    ]
    report("figure8_locking", render_table(
        ["Policy", "Stays granted while move waited",
         "Total stays", "Total moves"],
        rows,
        title="Figure 8 — stay-preference unfairness "
              "(paper policy vs FIFO ablation)",
    ))
