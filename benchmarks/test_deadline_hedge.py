"""Hedged lock/locate chases vs sequential chases under one stalled node.

Not a paper figure — the engineering bench for the deadline/cancellation
core.  The GREV move protocol and §4.4 locking make multi-hop chases the
common case; before deadlines and hedging, a chase whose forwarding
knowledge pointed at a hung host serialized behind that host for a full
io-timeout (or, here, the host's stall).  The hedged forms race
speculative requests to the last-known host *and* the origin hint, let
the first useful answer win, and cancel the straggler — so one stalled
node costs one round trip, not its whole stall.

Topology: 8 nodes over real TCP sockets with a 2 ms emulated link delay
(the regime of the paper's 10 Mb/s testbed); one node's dispatcher is
wrapped with an injected 500 ms stall.  The object under test lives on a
healthy node, but every chase starts from *stale* knowledge naming the
stalled node (re-staled between iterations), with the origin as the
hedge.  Two workloads:

* ``lock`` — the §4.4 stay/move chase: sequential find-then-request vs
  ``lock(hedge=True)``;
* ``locate`` — the forwarding-chain walk: sequential ``find`` through
  the stalled chain vs ``locate_any`` over all nodes (losers cancelled).

The measured shape (the acceptance bar): hedged p99 ≥ 2x better than the
sequential chase p99 for both workloads — in practice the gap is the
~500 ms stall vs a few round trips.  The hedged path must also complete
within ~one io-timeout window (io_timeout_s below is 5 s; the stall
guarantees the sequential arm spends its 500 ms, the hedged arm must
come in far under one window).  Results in ``results/deadline_hedge.txt``.
"""

from __future__ import annotations

import statistics
import threading
import time

from repro.cluster import Cluster
from repro.net.deadline import Deadline
from repro.net.tcpnet import TcpNetwork

NODES = 8
LINK_LATENCY_MS = 2.0
STALL_MS = 500.0
SAMPLES = 10
IO_TIMEOUT_S = 5.0

NODE_IDS = [f"n{i}" for i in range(NODES)]
ORIGIN = "n1"      # registers the object; the healthy hedge target
STALLED = "n2"     # every chase's stale last-known location
HOME = "n7"        # where the object actually lives
ISSUER = "n0"


class Resource:
    """The contended mobile object."""

    def __init__(self) -> None:
        self.hits = 0

    def touch(self) -> int:
        self.hits += 1
        return self.hits


def p99(samples_s: list[float]) -> float:
    ordered = sorted(samples_s)
    index = min(len(ordered) - 1, round(0.99 * (len(ordered) + 1)) - 1)
    return ordered[max(index, 0)]


def _build() -> tuple[Cluster, TcpNetwork, threading.Event]:
    net = TcpNetwork(latency_ms=LINK_LATENCY_MS, io_timeout_s=IO_TIMEOUT_S,
                     server_workers=NODES * 2)
    cluster = Cluster(NODE_IDS, transport=net)
    # History: the object originated at ORIGIN, passed through STALLED,
    # and settled at HOME.  A verified find from ORIGIN collapses its
    # forwarding entry straight to HOME, making it the useful hedge.
    cluster[ORIGIN].register("res", Resource(), shared=True)
    cluster[ORIGIN].namespace.move("res", STALLED)
    cluster[STALLED].namespace.move("res", HOME)
    assert cluster[ORIGIN].namespace.find("res") == HOME

    # Inject the stall *after* setup: every request dispatched by the
    # stalled node now sleeps 500 ms first (tc-netem-style brownout).
    release = threading.Event()
    inner = cluster[STALLED].namespace.external.handle

    def stalled_dispatch(message):
        release.wait(STALL_MS / 1000.0)
        return inner(message)

    net.register(STALLED, stalled_dispatch)
    return cluster, net, release


def _restale(cluster: Cluster) -> None:
    """Re-point the issuer's forwarding knowledge at the stalled node."""
    cluster[ISSUER].namespace.registry.note_location("res", STALLED)


def measure_lock() -> tuple[list[float], list[float]]:
    """(sequential_s, hedged_s) samples for the §4.4 lock chase."""
    sequential: list[float] = []
    hedged: list[float] = []
    cluster, net, release = _build()
    try:
        ns = cluster[ISSUER].namespace
        for _ in range(SAMPLES):
            _restale(cluster)
            start = time.perf_counter()
            grant = ns.lock("res", HOME, origin_hint=ORIGIN)
            sequential.append(time.perf_counter() - start)
            ns.unlock(grant)
        for _ in range(SAMPLES):
            _restale(cluster)
            start = time.perf_counter()
            grant = ns.lock("res", HOME, origin_hint=ORIGIN, hedge=True,
                            deadline=Deadline.after_s(IO_TIMEOUT_S))
            hedged.append(time.perf_counter() - start)
            ns.unlock(grant)
    finally:
        release.set()
        cluster.shutdown()
    return sequential, hedged


def measure_locate() -> tuple[list[float], list[float]]:
    """(sequential_s, hedged_s) samples for the forwarding-chain locate."""
    sequential: list[float] = []
    hedged: list[float] = []
    cluster, net, release = _build()
    try:
        server = cluster[ISSUER].namespace.server
        for _ in range(SAMPLES):
            _restale(cluster)
            start = time.perf_counter()
            assert server.find("res", origin_hint=ORIGIN) == HOME
            sequential.append(time.perf_counter() - start)
        for _ in range(SAMPLES):
            _restale(cluster)
            start = time.perf_counter()
            where = server.locate_any(
                "res", NODE_IDS, origin_hint=ORIGIN,
                deadline=Deadline.after_s(IO_TIMEOUT_S),
            )
            hedged.append(time.perf_counter() - start)
            assert where == HOME
    finally:
        release.set()
        cluster.shutdown()
    return sequential, hedged


def test_deadline_hedge(report):
    lock_seq, lock_hedge = measure_lock()
    loc_seq, loc_hedge = measure_locate()

    rows = []
    speedups = {}
    for label, seq, hedge in (("lock chase", lock_seq, lock_hedge),
                              ("locate", loc_seq, loc_hedge)):
        seq_p99, hedge_p99 = p99(seq), p99(hedge)
        speedups[label] = seq_p99 / hedge_p99
        rows += [
            f"  {label}:",
            f"    sequential   median {statistics.median(seq) * 1000:>8.2f} ms"
            f"   p99 {seq_p99 * 1000:>8.2f} ms",
            f"    hedged       median {statistics.median(hedge) * 1000:>8.2f} ms"
            f"   p99 {hedge_p99 * 1000:>8.2f} ms   "
            f"{speedups[label]:>6.1f}x",
            "",
        ]

    lines = [
        f"Deadline-bounded hedged chases -- {NODES} nodes, TCP sockets, "
        f"{LINK_LATENCY_MS:.0f} ms emulated link, {STALL_MS:.0f} ms stall "
        f"injected at {STALLED!r}, {SAMPLES} samples per arm",
        "(chase starts from stale knowledge naming the stalled node;",
        " hedged = speculative parallel requests to last-known + origin,",
        " first useful answer wins, straggler cancelled)",
        "",
        *rows,
    ]
    report("deadline_hedge", "\n".join(lines).rstrip())

    # Acceptance: hedged p99 beats the sequential chase p99 by >= 2x, and
    # the hedged path completes within ~one io-timeout window (it must
    # never wait out the stall, let alone stack windows per hop).
    assert speedups["lock chase"] >= 2.0, lines
    assert speedups["locate"] >= 2.0, lines
    assert p99(lock_hedge) < IO_TIMEOUT_S, lines
    assert p99(loc_hedge) < IO_TIMEOUT_S, lines
    # The sequential arms really did pay the stall (the bench is honest).
    assert p99(lock_seq) >= STALL_MS / 1000.0
    assert p99(loc_seq) >= STALL_MS / 1000.0
