"""Extension sweep: find cost as a function of forwarding-chain length.

§4.1's registry walks chains of forwarding addresses.  This sweep grows
the chain from 1 to 8 hops and measures the first (walking) find and the
steady-state find from a cold observer, with path collapsing on and off —
the curve behind the single-point ablation.
"""

from repro.bench.tables import render_table
from repro.bench.workloads import Counter
from repro.cluster import Cluster

MAX_HOPS = 8


def _find_costs(make_cluster, hops: int, collapsing: bool):
    nodes = [f"n{i}" for i in range(hops + 1)]
    cluster = make_cluster(nodes + ["observer"],
                           path_collapsing=collapsing)
    cluster["n0"].register("obj", Counter())
    location = "n0"
    for target in nodes[1:]:
        location = cluster[location].namespace.move("obj", target)
    observer = cluster["observer"].namespace
    before = cluster.trace.remote_message_count()
    assert observer.find("obj", origin_hint="n0", verify=True) == location
    first = cluster.trace.remote_message_count() - before
    before = cluster.trace.remote_message_count()
    assert observer.find("obj", origin_hint="n0", verify=True) == location
    second = cluster.trace.remote_message_count() - before
    return first, second


def test_sweep_chain_length(benchmark, report, make_cluster):
    rows = []
    for hops in range(1, MAX_HOPS + 1):
        first_on, second_on = _find_costs(make_cluster, hops, True)
        first_off, second_off = _find_costs(make_cluster, hops, False)
        rows.append((hops, first_on, second_on, first_off, second_off))
    benchmark.pedantic(
        lambda: _find_costs(make_cluster, MAX_HOPS, True),
        iterations=1, rounds=1,
    )
    # First find walks the whole chain regardless of policy.
    for hops, first_on, second_on, first_off, second_off in rows:
        assert first_on == first_off == 2 * (hops + 1)
        # Collapsed: the repeat find is one direct round trip.
        assert second_on == 2
        # Uncollapsed: the repeat find re-walks everything.
        assert second_off == first_off
    report("sweep_chains", render_table(
        ["Chain hops", "first find (msgs)", "repeat, collapsing on",
         "first find (off)", "repeat, collapsing off"],
        rows,
        title="Extension sweep — find cost vs forwarding-chain length "
              "(§4.1 path collapsing)",
    ))
