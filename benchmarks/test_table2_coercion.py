"""Table 2: component location × programming model behaviour — run live.

Each cell of the paper's coercion matrix is reproduced by actually placing
a component (local / remote-at-target / remote-not-at-target), binding the
model's attribute, and reporting what happened: the default behaviour, a
coercion to RPC or LPC, an exception, or n/a for placements the model's
own definition makes unconstructible.
"""

import pytest

from repro.bench.tables import render_table
from repro.bench.workloads import Counter
from repro.core.models import CLE, COD, MAgent, REV, RPC
from repro.errors import ImmobileObjectError

HERE, TARGET, ELSEWHERE = "here", "target", "elsewhere"

#: Paper's Table 2, for the shape assertion (columns: Local,
#: Remote-at-target, Remote-not-at-target).
PAPER_TABLE2 = {
    "MA": ("Default Behavior", "RPC", "Default Behavior"),
    "REV": ("Default Behavior", "RPC", "Default Behavior"),
    "COD": ("LPC", "n/a", "Default Behavior"),
    "RPC": ("Exception thrown", "Default Behavior", "Exception thrown"),
    "CLE": ("Default Behavior", "Default Behavior", "Default Behavior"),
}


def _attribute(model, cluster, origin):
    """The model's attribute at HERE, knowing the component's origin server."""
    runtime = cluster[HERE].namespace
    if model == "MA":
        return MAgent("obj", TARGET, runtime=runtime, origin=origin)
    if model == "REV":
        return REV(None, "obj", TARGET, runtime=runtime, origin=origin)
    if model == "COD":
        return COD("obj", runtime=runtime, origin=origin)
    if model == "RPC":
        return RPC("obj", target=TARGET, runtime=runtime, origin=origin)
    if model == "CLE":
        return CLE("obj", runtime=runtime, origin=origin)
    raise ValueError(model)


def _place(cluster, where):
    cluster[where].register("obj", Counter(), shared=True)


def _observe(model, placement, make_cluster):
    """Place the component, bind the attribute, report the outcome."""
    cluster = make_cluster([HERE, TARGET, ELSEWHERE])
    if model == "COD" and placement == "remote_at_target":
        # COD's target *is* the caller's namespace: a component cannot be
        # remote yet at the target.  The paper prints n/a.
        cluster.shutdown()
        return "n/a"
    location = {
        "local": HERE,
        "remote_at_target": TARGET,
        "remote_not_at_target": ELSEWHERE,
    }[placement]
    _place(cluster, location)
    attribute = _attribute(model, cluster, origin=location)
    try:
        stub = attribute.bind()
        stub.increment()  # the invocation the attribute intercepted
    except ImmobileObjectError:
        return "Exception thrown"
    finally:
        cluster.shutdown()
    outcome = attribute.last_outcome
    if outcome is None:
        return "Default Behavior"
    return outcome.action.value


COLUMNS = ("local", "remote_at_target", "remote_not_at_target")


def _observed_matrix(make_cluster):
    return {
        model: tuple(_observe(model, placement, make_cluster)
                     for placement in COLUMNS)
        for model in PAPER_TABLE2
    }


def test_table2_matrix_matches_paper(benchmark, report, make_cluster):
    matrix = benchmark.pedantic(
        _observed_matrix, args=(make_cluster,), iterations=1, rounds=1
    )
    rows = [
        (model, *matrix[model]) for model in PAPER_TABLE2
    ]
    text = render_table(
        ["Model", "Local", "Remote, At Target", "Remote, Not At Target"],
        rows,
        title="Table 2 — Component Location and Programming Model Behavior "
              "(observed from live binds)",
    )
    report("table2_coercion", text)
    for model, expected in PAPER_TABLE2.items():
        assert matrix[model] == expected, f"{model} row deviates from Table 2"


@pytest.mark.parametrize("model", sorted(PAPER_TABLE2))
def test_each_row_individually(model, benchmark, make_cluster):
    """Per-row variant so a single-model regression names itself."""
    observed = benchmark.pedantic(
        lambda: tuple(
            _observe(model, placement, make_cluster) for placement in COLUMNS
        ),
        iterations=1, rounds=1,
    )
    assert observed == PAPER_TABLE2[model]
