"""Ablation: forwarding-chain path collapsing (§4.1).

"As the result returns, each server updates its forwarding address, thus
collapsing the path."

The bench builds a long forwarding chain (an object that hopped across N
nodes), then measures repeated finds from the chain's head with collapsing
on and off: collapsed chains answer follow-up finds in one round trip;
uncollapsed ones re-walk the whole chain every time.
"""

from repro.bench.tables import render_table
from repro.bench.workloads import Counter

CHAIN = ["n0", "n1", "n2", "n3", "n4", "n5"]
REPEAT_FINDS = 5


def _chain_walk_costs(make_cluster, path_collapsing: bool):
    cluster = make_cluster(CHAIN, path_collapsing=path_collapsing)
    cluster["n0"].register("obj", Counter())
    location = "n0"
    for target in CHAIN[1:]:
        # Each hop is initiated by the current host, so only adjacent
        # forwarding addresses are updated: n0 still believes n1.
        location = cluster[location].namespace.move("obj", target)
    costs = []
    for _ in range(REPEAT_FINDS):
        before = cluster.trace.remote_message_count()
        found = cluster["n0"].find("obj", verify=True)
        assert found == CHAIN[-1]
        costs.append(cluster.trace.remote_message_count() - before)
    return costs


def test_ablation_path_collapsing(benchmark, report, make_cluster):
    collapsing = benchmark.pedantic(
        _chain_walk_costs, args=(make_cluster, True), iterations=1, rounds=1
    )
    flat = _chain_walk_costs(make_cluster, False)

    # First find pays the whole chain either way.
    assert collapsing[0] == flat[0]
    assert collapsing[0] > 2
    # Collapsed: every later find is one direct round trip.
    assert all(cost == 2 for cost in collapsing[1:])
    # Uncollapsed: the full chain is re-walked every single time.
    assert all(cost == flat[0] for cost in flat[1:])

    rows = [
        ("collapsing on (paper)", collapsing[0], collapsing[1],
         sum(collapsing)),
        ("collapsing off (ablation)", flat[0], flat[1], sum(flat)),
    ]
    report("ablation_forwarding", render_table(
        ["Configuration", "first find (msgs)", "later finds (msgs)",
         f"total over {REPEAT_FINDS} finds"],
        rows,
        title=f"Ablation — §4.1 path collapsing "
              f"(object {len(CHAIN) - 1} hops away)",
    ))
