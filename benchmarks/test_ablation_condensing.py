"""Ablation: condensing the number of RMI calls (§5).

"MAGE would directly benefit from … condensing the number of RMI calls in
the MAGE implementation.  This condensing can be achieved by better
utilizing the in and out variables of a single Java RMI call."

Traditional REV spends four round trips (class probe, instantiate,
publish, invoke).  The condensed deployment rides the migration engine
instead: instantiate locally, ship object+class in one OBJECT_TRANSFER,
invoke — the "in variables" of one call carrying what three used to.
The bench measures both and quantifies the §5 speedup claim.
"""

from repro.bench.harness import measure_invocations
from repro.bench.tables import render_table
from repro.bench.workloads import Counter
from repro.core.factory import FactoryMode
from repro.core.models import REV
from repro.net.conditions import ConstantLatency
from repro.util.ids import fresh_token

BANDWIDTH = 1250.0


def _chatty_rev(cluster):
    """The paper's 4-RMI-call REV (Table 3's TREV)."""
    cluster["client"].register_class(Counter)
    rev = REV("Counter", f"chatty-{fresh_token('cd')}", "server",
              mode=FactoryMode.TRADITIONAL,
              runtime=cluster["client"].namespace)

    def operation():
        stub = rev.bind()
        return stub.increment()

    return operation


def _condensed_rev(cluster):
    """Condensed: instantiate here, one transfer carries object+class."""
    client = cluster["client"].namespace

    def operation():
        name = f"condensed-{fresh_token('cd')}"
        client.register(name, Counter(), shared=False)
        client.move(name, "server")
        return client.stub(name, location="server").increment()

    return operation


def _measure(make_cluster, builder, label):
    cluster = make_cluster(
        ["client", "server"],
        latency=ConstantLatency(bandwidth_bytes_per_ms=BANDWIDTH),
    )
    return measure_invocations(cluster, label, builder(cluster), 10)


def test_ablation_call_condensing(benchmark, report, make_cluster):
    chatty = benchmark.pedantic(
        _measure, args=(make_cluster, _chatty_rev, "traditional REV"),
        iterations=1, rounds=1,
    )
    condensed = _measure(make_cluster, _condensed_rev, "condensed REV")

    # The §5 claim: fewer RMI calls, directly less time.
    assert condensed.warm_messages < chatty.warm_messages
    assert condensed.amortized_ms < chatty.amortized_ms
    speedup = chatty.amortized_ms / condensed.amortized_ms
    assert speedup > 1.5

    rows = [
        ("traditional REV (4 calls)", f"{chatty.amortized_ms:.1f}",
         chatty.warm_messages, "1.0x"),
        ("condensed REV (migration engine)", f"{condensed.amortized_ms:.1f}",
         condensed.warm_messages, f"{speedup:.1f}x"),
    ]
    report("ablation_condensing", render_table(
        ["Deployment protocol", "amortized (vms)", "warm msgs/invocation",
         "speedup"],
        rows,
        title="Ablation — §5 RMI-call condensing "
              "(remote deployment + one invocation)",
    ))
