"""Figure 2: Generalized Remote Evaluation.

"P requests component C move from its current namespace D to the
computation target B, where the computation occurs.  When the computation
completes, P receives the result."

The bench runs exactly that topology — P, B, D are distinct namespaces —
and asserts (1) the component really crossed D → B without ever visiting
P, (2) P received the result, and (3) GREV handles every start/target
combination REV and COD individually cannot.
"""

from repro.bench.tables import render_arrows, render_table
from repro.bench.workloads import Counter
from repro.core.coercion import Action
from repro.core.models import GREV


def _figure2_scenario(make_cluster):
    cluster = make_cluster(["P", "B", "D"])
    cluster["D"].register("C", Counter(41))
    grev = GREV("C", "B", runtime=cluster["P"].namespace, origin="D")
    skip = cluster.trace.remote_message_count()
    stub = grev.bind()
    result = stub.increment()
    return cluster, grev, result, skip


def test_fig2_grev_moves_d_to_b(benchmark, report, make_cluster):
    cluster, grev, result, skip = benchmark.pedantic(
        _figure2_scenario, args=(make_cluster,), iterations=1, rounds=1
    )
    assert result == 42                        # P received the result
    assert grev.cloc == "B"                    # computation happened at B
    assert cluster["B"].namespace.store.contains("C")
    assert not cluster["D"].namespace.store.contains("C")
    assert not cluster["P"].namespace.store.contains("C")  # never via P
    report("figure2_grev", render_arrows(
        "Figure 2 — Generalized Remote Evaluation (P asks D to send C to B)",
        [e.arrow() for e in cluster.trace.filtered(remote_only=True)],
    ))


def _coverage_matrix(make_cluster):
    """GREV across all four concrete (location, target) combinations."""
    rows = []
    cases = [
        ("local → local", "P", "P"),
        ("local → remote", "P", "B"),
        ("remote → local", "D", "P"),
        ("remote → remote", "D", "B"),
    ]
    for label, start, target in cases:
        cluster = make_cluster(["P", "B", "D"])
        cluster[start].register("C", Counter())
        grev = GREV("C", target, runtime=cluster["P"].namespace, origin=start)
        stub = grev.bind()
        stub.increment()
        moved = "moved" if grev.last_outcome.action is Action.DEFAULT \
            else grev.last_outcome.action.value
        rows.append((label, grev.cloc, moved))
        cluster.shutdown()
    return rows


def test_fig2_grev_covers_the_whole_space(benchmark, report, make_cluster):
    """'GREV applies to a wider array of component distributions than
    either REV or COD alone.'"""
    rows = benchmark.pedantic(
        _coverage_matrix, args=(make_cluster,), iterations=1, rounds=1
    )
    for label, final, _outcome in rows:
        expected = label.split(" → ")[1]
        expected_node = {"local": "P", "remote": "B"}[expected]
        assert final == expected_node, f"{label}: ended at {final}"
    report("figure2_grev_coverage", render_table(
        ["Start → Target", "Final location", "Behaviour"],
        rows,
        title="GREV coverage: any start, any target (§3.3)",
    ))
