"""Figure 6: the MAGE system — per-namespace services and global naming.

The figure shows each JVM overlaid with a Mage registry and the
MageServer/MageExternalServer pair, with named objects (and the attributes
bound to them) spread across namespaces.  This bench builds that topology,
dumps it from live introspection, and asserts the structural claims:
every node runs the full overlay, and the registries together implement
"a global, system-wide namespace for both mobile objects and classes".
"""

from repro.bench.tables import render_table
from repro.bench.workloads import Counter, PrintServer
from repro.rmi.protocol import RegistrySnapshot


def _build_system(make_cluster):
    cluster = make_cluster(["jvm1", "jvm2", "jvm3"])
    cluster["jvm1"].register("a", Counter())
    cluster["jvm1"].register("b", Counter())
    cluster["jvm2"].register("c", PrintServer())
    cluster["jvm1"].namespace.move("b", "jvm3")
    cluster["jvm2"].namespace.move("c", "jvm1")
    return cluster


def _topology_rows(cluster):
    rows = []
    for node in cluster:
        ns = node.namespace
        rows.append((
            node.node_id,
            ", ".join(ns.store.names()) or "—",
            ", ".join(ns.rmi_registry.list_bindings()) or "—",
            ", ".join(
                f"{k}->{v}" for k, v in sorted(ns.registry.forwarding_table().items())
            ) or "—",
            ", ".join(ns.classcache.class_names()) or "—",
        ))
    return rows


def test_fig6_every_node_runs_the_full_overlay(benchmark, report,
                                               make_cluster):
    cluster = benchmark.pedantic(
        _build_system, args=(make_cluster,), iterations=1, rounds=1
    )
    for node in cluster:
        ns = node.namespace
        # The Figure 6 overlay: registry, home server, external server,
        # store, class cache, lock manager — all present and wired.
        assert ns.registry is not None
        assert ns.server is not None
        assert ns.external is not None
        assert ns.locks is not None
        assert ns.running
    rows = _topology_rows(cluster)
    report("figure6_system", render_table(
        ["Namespace", "Hosted objects", "RMI bindings (origin)",
         "Forwarding table", "Cached classes"],
        rows,
        title="Figure 6 — The MAGE System (live topology dump)",
    ))


def test_fig6_global_namespace(benchmark, make_cluster):
    """Any node resolves any object by name + origin, wherever it moved."""
    cluster = benchmark.pedantic(
        _build_system, args=(make_cluster,), iterations=1, rounds=1
    )
    # b originated on jvm1 but lives on jvm3; c originated on jvm2 but
    # lives on jvm1.  Every node agrees.
    for observer in ("jvm1", "jvm2", "jvm3"):
        assert cluster[observer].find("b", origin_hint="jvm1") == "jvm3"
        assert cluster[observer].find("c", origin_hint="jvm2") == "jvm1"


def test_fig6_registry_snapshot_payload(benchmark, make_cluster):
    """The diagnostic snapshot payload round-trips the registry state."""
    cluster = benchmark.pedantic(
        _build_system, args=(make_cluster,), iterations=1, rounds=1
    )
    ns = cluster["jvm1"].namespace
    snapshot = RegistrySnapshot(
        bindings=ns.rmi_registry.snapshot(),
        forwarding=ns.registry.forwarding_table(),
        class_names=tuple(ns.classcache.class_names()),
    )
    assert "a" in snapshot.bindings
    assert snapshot.forwarding.get("b") == "jvm3"
