"""Wire-codec serialization bench: compiled binary envelope vs pickle.

Not a paper figure — the engineering bench behind the wire-codec fast
path.  For every registered control-plane payload class it times the
full envelope cycle both ways:

* binary — ``wirecodec.encode_envelope`` / ``wirecodec.decode_envelope``
  (schema-compiled per-class codecs, negotiated via HELLO), and
* pickle — ``message.to_wire`` / ``message.from_wire`` (the flattened
  pickled-tuple envelope that legacy peers still speak).

The shape that must hold: the binary codec wins **encode and decode for
every payload class** — a single regressed class is a compile-time
schema problem (a field fell off its specialized layout), not noise.
Timings are interleaved best-of-N so box jitter hits both codecs alike;
a class that still loses gets one deeper re-measure before the bench
fails.  Results land in ``results/serialization.txt`` and a
machine-readable ``results/BENCH_serialization.json``.
"""

from __future__ import annotations

import pickle
import timeit

from repro.net import wirecodec
from repro.net.message import Message, MessageKind, ReplyPayload, from_wire, to_wire
from repro.rmi import protocol
from repro.rmi.stub import RemoteRef

#: Per-iteration loop count and interleaved rounds (best-of).
ITERATIONS = 2_000
ROUNDS = 5
#: Deeper re-measure for a class that lost a direction on the first pass.
RETRY_ITERATIONS = 4_000
RETRY_ROUNDS = 9

#: One representative instance per registered payload class — realistic
#: field shapes (node ids, tokens, small blobs, address books), not
#: empty defaults.  The coverage assert below forces an entry for every
#: class added to the registry.
SAMPLES: dict[type, object] = {
    protocol.InvokeRequest: protocol.InvokeRequest(
        name="acct", method="debit", args_blob=b"\x80\x05args"),
    protocol.LookupRequest: protocol.LookupRequest(name="printer"),
    protocol.BindRequest: protocol.BindRequest(
        name="printer",
        ref=RemoteRef(node_id="n1", name="printer",
                      methods=("print_it", "status"))),
    protocol.UnbindRequest: protocol.UnbindRequest(name="printer"),
    protocol.ListRequest: protocol.ListRequest(),
    protocol.FindRequest: protocol.FindRequest(
        name="agent", hops=("n1", "n2"), origin_hint="n3"),
    protocol.MoveRequest: protocol.MoveRequest(
        name="acct", target="n2", lock_token="tok",
        alternates=("n3", "n4")),
    protocol.ObjectTransfer: protocol.ObjectTransfer(
        name="acct", class_name="Account", state_blob=b"state" * 8,
        class_desc=None, class_hash="h1", origin="n1", transfer_id="t-1"),
    protocol.TransferPrepare: protocol.TransferPrepare(
        name="acct", class_name="Account", class_desc=None,
        class_hash="h1", origin="n1", transfer_id="t-1",
        total_bytes=1024, chunk_count=4, shared=False, ttl_ms=5_000.0),
    protocol.TransferChunk: protocol.TransferChunk(
        transfer_id="t-1", index=3, data=b"chunk-bytes"),
    protocol.TransferCommit: protocol.TransferCommit(
        transfer_id="t-1", name="acct"),
    protocol.TransferAbort: protocol.TransferAbort(
        transfer_id="t-1", reason="receiver died"),
    protocol.MoveComplete: protocol.MoveComplete(name="acct", location="n2"),
    protocol.ClassRequest: protocol.ClassRequest(
        class_name="Account", if_hash="h1"),
    protocol.ClassPush: protocol.ClassPush(
        class_name="Account", source_hash="h1"),
    protocol.InstantiateRequest: protocol.InstantiateRequest(
        class_name="Account", name="acct", args_blob=b"\x80\x05args",
        shared=False),
    protocol.LockRequestPayload: protocol.LockRequestPayload(
        name="acct", target="n2", requester="n1", wait_ms=250.0),
    protocol.UnlockPayload: protocol.UnlockPayload(name="acct", token="t"),
    protocol.LockConfirm: protocol.LockConfirm(name="acct", token="t"),
    protocol.AgentHopPayload: protocol.AgentHopPayload(
        name="agent", class_name="Crawler", state_blob=b"state" * 4,
        class_desc=None, class_hash="h2", origin="n1", tour_id="tour-1",
        itinerary=("n2", "n3"), shared=True),
    protocol.AgentLaunch: protocol.AgentLaunch(
        name="agent", itinerary=("n1", "n2"), lock_token="tok"),
    protocol.LoadQuery: protocol.LoadQuery(),
    protocol.JoinRequest: protocol.JoinRequest(
        node_id="n9", endpoint=("10.0.0.9", 9000)),
    protocol.AnnouncePayload: protocol.AnnouncePayload(
        members={"n1": ("10.0.0.1", 9000), "n2": ("10.0.0.2", 9001),
                 "n3": None}),
    protocol.RegistrySnapshot: protocol.RegistrySnapshot(
        bindings={"printer": RemoteRef(node_id="n1", name="printer")},
        forwarding={"acct": "n2"},
        class_names=("Account", "Crawler")),
    ReplyPayload: ReplyPayload(value="pong"),
    RemoteRef: RemoteRef(node_id="n1", name="printer",
                         methods=("print_it",)),
}


def _best_of(fns: dict[str, object], iterations: int,
             rounds: int) -> dict[str, float]:
    """Interleaved best-of timing (ns/op): each round times every fn
    once, so a noisy slice of wall-clock penalizes all codecs equally
    instead of whichever one it happened to land on."""
    best = {name: float("inf") for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            t = timeit.timeit(fn, number=iterations) / iterations * 1e9
            if t < best[name]:
                best[name] = t
    return best


def _bench_class(cls: type, iterations: int = ITERATIONS,
                 rounds: int = ROUNDS) -> dict:
    payload = SAMPLES[cls]
    message = Message(kind=MessageKind.INVOKE, src="n1", dst="n2",
                      payload=payload)
    body = b"".join(bytes(p) for p in wirecodec.encode_envelope(message))
    blob = to_wire(message)
    best = _best_of(
        {
            "encode_ns": lambda: wirecodec.encode_envelope(message),
            "decode_ns": lambda: wirecodec.decode_envelope(body),
            "pickle_encode_ns": lambda: to_wire(message),
            "pickle_decode_ns": lambda: from_wire(blob),
        },
        iterations, rounds,
    )
    return {
        **{name: round(value, 1) for name, value in best.items()},
        "wire_bytes": len(body),
        "pickle_bytes": len(blob),
        "encode_speedup": round(best["pickle_encode_ns"] / best["encode_ns"], 2),
        "decode_speedup": round(best["pickle_decode_ns"] / best["decode_ns"], 2),
    }


def test_serialization(report):
    assert set(SAMPLES) == set(wirecodec.REGISTERED_PAYLOADS), (
        "every registered payload class needs a bench sample")
    rows: dict[str, dict] = {}
    for cls in wirecodec.REGISTERED_PAYLOADS:
        row = _bench_class(cls)
        if row["encode_speedup"] <= 1.0 or row["decode_speedup"] <= 1.0:
            # One deeper re-measure before declaring a regression: the
            # expected margins are 1.2x+, so a first-pass loss is far
            # more likely scheduler noise than a real slowdown.
            row = _bench_class(cls, RETRY_ITERATIONS, RETRY_ROUNDS)
        rows[cls.__name__] = row

    lines = [
        "Serialization -- compiled binary envelope vs pickled-tuple envelope",
        "(per payload class; ns per envelope encode/decode, best-of-"
        f"{ROUNDS} interleaved)",
        "",
        f"  {'payload':<22s} {'enc ns':>8s} {'dec ns':>8s}"
        f" {'enc x':>6s} {'dec x':>6s} {'bytes':>6s} {'pickle':>7s}",
    ]
    for name, row in rows.items():
        lines.append(
            f"  {name:<22s} {row['encode_ns']:>8.0f} {row['decode_ns']:>8.0f}"
            f" {row['encode_speedup']:>5.2f}x {row['decode_speedup']:>5.2f}x"
            f" {row['wire_bytes']:>6d} {row['pickle_bytes']:>7d}"
        )
    worst_enc = min(rows.values(), key=lambda r: r["encode_speedup"])
    worst_dec = min(rows.values(), key=lambda r: r["decode_speedup"])
    lines += [
        "",
        f"worst encode speedup {worst_enc['encode_speedup']:.2f}x, "
        f"worst decode speedup {worst_dec['decode_speedup']:.2f}x",
    ]
    report("serialization", "\n".join(lines), data={
        "wire_format": wirecodec.WIRE_FORMAT,
        "iterations": ITERATIONS,
        "rounds": ROUNDS,
        "payloads": rows,
    })

    # The acceptance shape: every payload class wins both directions.
    losers = {
        name: row for name, row in rows.items()
        if row["encode_speedup"] <= 1.0 or row["decode_speedup"] <= 1.0
    }
    assert not losers, losers
    # And the compact layout must never be *larger* than the pickle.
    oversized = {
        name: row for name, row in rows.items()
        if row["wire_bytes"] > row["pickle_bytes"]
    }
    assert not oversized, oversized


def test_serialization_smoke():
    """Cheap CI guard: the hot-path envelopes must keep beating pickle.

    Two classes bracket the codec: InvokeRequest (the request fast
    path) and ReplyPayload (every response).  Round-trip comparison
    with a noise allowance — the full per-class matrix (with artifacts)
    already runs under tier-1.
    """
    for cls in (protocol.InvokeRequest, ReplyPayload):
        row = _bench_class(cls, iterations=1_000, rounds=3)
        binary = row["encode_ns"] + row["decode_ns"]
        pickled = row["pickle_encode_ns"] + row["pickle_decode_ns"]
        assert binary < 0.9 * pickled, (cls.__name__, row)


def test_oob_blobs_dodge_the_copy():
    """A payload blob >= OOB_THRESHOLD rides out as its own buffer.

    Covered functionally in tests/net/test_wirecodec.py; asserted here
    too so the bench file documents the zero-copy contract next to the
    numbers it produces.
    """
    blob = b"\xcd" * (wirecodec.OOB_THRESHOLD * 2)
    payload = protocol.TransferChunk(transfer_id="t-1", index=0, data=blob)
    message = Message(kind=MessageKind.TRANSFER_CHUNK, src="n1", dst="n2",
                      payload=payload)
    parts = wirecodec.encode_envelope(message)
    assert any(
        isinstance(part, memoryview) and part.nbytes == len(blob)
        for part in parts
    )
    body = b"".join(bytes(p) for p in parts)
    decoded = wirecodec.decode_envelope(body)
    assert bytes(decoded.payload.data) == blob
