"""Scatter-gather fan-out: sequential loops vs futures at 8 nodes.

Not a paper figure — the engineering bench for this repo's async
invocation core.  The home interface's multi-node operations (class
distribution, load sweeps) used to issue one blocking round trip per
target; built on ``Transport.call_async`` they put every round trip in
flight at once, so an 8-node fan-out costs ~1 round-trip latency (plus
straggler time) instead of ~8.

Loopback's ~0.1 ms round trip hides latency effects entirely (a ping
sweep gains nothing from parallelism when the wire is free), so the
bench runs over ``TcpNetwork(latency_ms=2.0)`` — the transport's
tc-netem-style emulated LAN link — which is the regime the paper's
10 Mb/s testbed and any cross-host deployment actually live in.

Two workloads, both at 8 nodes over real TCP sockets (pipelined mode):

* ``push_class`` fan-out — distribute a class definition to 7 targets:
  the sequential probe+body loop vs ``push_class_many`` (one batched
  frame per target, all round trips overlapped).
* ``query_all_loads`` — sweep every node's load metric: the sequential
  ``query_load`` loop vs the parallel sweep.

The simulated network runs the same code deterministically (futures
complete eagerly), so the bench also asserts the async sweep produces
*identical results and message counts* to the sequential loop there.

The measured shape (the acceptance bar): parallel ≥ 2x sequential for
both workloads; results recorded in ``results/async_fanout.txt``.
"""

from __future__ import annotations

import time

from repro.cluster import Cluster
from repro.net.tcpnet import TcpNetwork

NODES = 8
#: Emulated one-hop link delay (per request, at the destination).
LINK_LATENCY_MS = 2.0
#: Best-of-N sampling to damp scheduler jitter on shared CI hardware.
SAMPLES = 3
#: Load sweeps per timing sample.
SWEEPS = 3

NODE_IDS = [f"n{i}" for i in range(NODES)]


class SeqPayload:
    """Fan-out cargo for the sequential arm (kept cold per sample)."""

    def __init__(self) -> None:
        self.items: list[int] = []

    def push(self, value: int) -> int:
        self.items.append(value)
        return len(self.items)

    def total(self) -> int:
        return sum(self.items)


class ParPayload:
    """Fan-out cargo for the parallel arm (same shape as SeqPayload)."""

    def __init__(self) -> None:
        self.items: list[int] = []

    def push(self, value: int) -> int:
        self.items.append(value)
        return len(self.items)

    def total(self) -> int:
        return sum(self.items)


def _lan_cluster() -> Cluster:
    return Cluster(
        NODE_IDS,
        transport=TcpNetwork(latency_ms=LINK_LATENCY_MS, server_workers=NODES * 2),
    )


def measure_push_fanout() -> tuple[float, float]:
    """(sequential_s, parallel_s) for distributing a class to 7 targets."""
    with _lan_cluster() as cluster:
        source = cluster[NODE_IDS[0]]
        source.register_class(SeqPayload)
        source.register_class(ParPayload)
        server = source.namespace.server
        targets = NODE_IDS[1:]
        # Warm the pooled connections so both arms measure round trips,
        # not connect handshakes.
        server.ping_many(targets)

        start = time.perf_counter()
        for target in targets:
            server.push_class("SeqPayload", target)
        sequential = time.perf_counter() - start

        start = time.perf_counter()
        server.push_class_many("ParPayload", targets)
        parallel = time.perf_counter() - start

        for target in targets:  # both arms actually delivered the class
            assert cluster[target].namespace.classcache.has_class("SeqPayload")
            assert cluster[target].namespace.classcache.has_class("ParPayload")
    return sequential, parallel


def measure_load_sweep() -> tuple[float, float]:
    """(sequential_s, parallel_s) for sweeping 8 nodes' load metrics."""
    with _lan_cluster() as cluster:
        for i, node_id in enumerate(NODE_IDS):
            cluster[node_id].set_load(10.0 * i)
        issuer = cluster[NODE_IDS[0]]
        server = issuer.namespace.server
        server.ping_many(NODE_IDS)  # warm the pooled connections

        start = time.perf_counter()
        for _ in range(SWEEPS):
            loads = {n: server.query_load(n) for n in NODE_IDS}
        sequential = (time.perf_counter() - start) / SWEEPS

        start = time.perf_counter()
        for _ in range(SWEEPS):
            parallel_loads = cluster.query_all_loads()
        parallel = (time.perf_counter() - start) / SWEEPS

        assert parallel_loads == loads  # same sweep, same answers
    return sequential, parallel


def test_async_fanout(report):
    push_pairs = [measure_push_fanout() for _ in range(SAMPLES)]
    sweep_pairs = [measure_load_sweep() for _ in range(SAMPLES)]
    push_seq = min(seq for seq, _ in push_pairs)
    push_par = min(par for _, par in push_pairs)
    sweep_seq = min(seq for seq, _ in sweep_pairs)
    sweep_par = min(par for _, par in sweep_pairs)

    push_speedup = push_seq / push_par
    sweep_speedup = sweep_seq / sweep_par

    lines = [
        f"Async fan-out -- {NODES} nodes, TCP sockets with "
        f"{LINK_LATENCY_MS:.0f} ms emulated link delay, best of {SAMPLES}",
        "(sequential blocking loop vs scatter-gather over CallFutures)",
        "",
        f"  push_class to {NODES - 1} targets:",
        f"    sequential loop      {push_seq * 1000:>8.2f} ms",
        f"    push_class_many      {push_par * 1000:>8.2f} ms   "
        f"{push_speedup:>5.2f}x",
        "",
        f"  load sweep over {NODES} hosts:",
        f"    sequential loop      {sweep_seq * 1000:>8.2f} ms",
        f"    query_all_loads      {sweep_par * 1000:>8.2f} ms   "
        f"{sweep_speedup:>5.2f}x",
    ]
    report("async_fanout", "\n".join(lines))

    # The acceptance shape: parallel fan-out >= 2x the sequential loop.
    assert push_speedup >= 2.0, lines
    assert sweep_speedup >= 2.0, lines


def test_async_sweep_is_deterministic_on_sim(make_cluster):
    """Same code over the simulated network: identical results and
    message counts to the sequential loop (futures complete eagerly)."""
    sequential = make_cluster(NODE_IDS)
    parallel = make_cluster(NODE_IDS)
    for i, node_id in enumerate(NODE_IDS):
        sequential[node_id].set_load(5.0 * i)
        parallel[node_id].set_load(5.0 * i)

    issuer = sequential[NODE_IDS[0]].namespace.server
    loads_seq = {n: issuer.query_load(n) for n in NODE_IDS}
    loads_par = parallel.query_all_loads()
    assert loads_par == loads_seq
    assert (
        sequential.trace.remote_message_count()
        == parallel.trace.remote_message_count()
    )
    assert sequential.trace.kinds(remote_only=True) == parallel.trace.kinds(
        remote_only=True
    )
