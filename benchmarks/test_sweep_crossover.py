"""Extension sweep: where moving computation beats moving data.

The paper's raison d'être (§1, §7): "computation and resources must be
dynamically collocated … usually for performance and efficiency reasons."
Table 3 measures the *overhead* of mobility; this sweep measures its
*payoff*: at what data size does shipping the filter to the sensor (REV)
become cheaper than shipping every reading to the lab (static RPC)?

For each raw-data size the bench runs both strategies on a 10 Mb/s
bandwidth model and reports virtual time and bytes; the crossover is
asserted to exist and to sit below the paper's "enormous amount of data"
regime.
"""

from repro.bench.tables import render_table
from repro.bench.workloads import GeoDataFilterImpl
from repro.core.factory import FactoryMode
from repro.core.models import REV
from repro.net.conditions import ConstantLatency

BANDWIDTH = 1250.0  # 10 Mb/s
SIZES = (10, 100, 1_000, 10_000, 50_000)


def _mage_strategy(make_cluster, n_readings):
    """Move the filter to the data; only the summary crosses back."""
    cluster = make_cluster(
        ["lab", "sensor"],
        latency=ConstantLatency(bandwidth_bytes_per_ms=BANDWIDTH),
    )
    cluster["lab"].register_class(GeoDataFilterImpl)
    lab = cluster["lab"].namespace
    start = cluster.clock.now_ms()
    rev = REV("GeoDataFilterImpl", "geo", "sensor",
              mode=FactoryMode.SINGLE_USE, ctor_args=(0.99,), runtime=lab)
    geo = rev.bind()
    # The sensor's feed is local to the filter: no wire crossing.
    cluster["sensor"].namespace.store.get("geo").ingest([0.5] * n_readings)
    geo.filter_data()
    summary = geo.process_data()
    assert summary["samples"] == 0
    return cluster.clock.now_ms() - start, cluster.trace.remote_bytes()


def _static_strategy(make_cluster, n_readings):
    """Classic RPC: every reading crosses to the stationary filter."""
    cluster = make_cluster(
        ["lab", "sensor"],
        latency=ConstantLatency(bandwidth_bytes_per_ms=BANDWIDTH),
    )
    cluster["lab"].register("geo", GeoDataFilterImpl(0.99))
    stub = cluster["sensor"].namespace.stub("geo", location="lab")
    start = cluster.clock.now_ms()
    batch = 1_000
    for offset in range(0, n_readings, batch):
        count = min(batch, n_readings - offset)
        stub.ingest([0.5] * count)
    stub.filter_data()
    stub.process_data()
    return cluster.clock.now_ms() - start, cluster.trace.remote_bytes()


def test_sweep_computation_vs_data_crossover(benchmark, report, make_cluster):
    rows = []
    winners = []
    for size in SIZES:
        mage_ms, mage_bytes = _mage_strategy(make_cluster, size)
        static_ms, static_bytes = _static_strategy(make_cluster, size)
        winner = "REV (move code)" if mage_ms < static_ms else "RPC (move data)"
        winners.append(winner)
        rows.append((
            size,
            f"{mage_ms:.1f}", f"{static_ms:.1f}",
            mage_bytes, static_bytes, winner,
        ))
    benchmark.pedantic(
        lambda: _mage_strategy(make_cluster, SIZES[-1]),
        iterations=1, rounds=1,
    )
    # Small data: mobility overhead loses.  Big data: mobility wins.  A
    # crossover must exist, and the big-data end must favour mobility.
    assert winners[0] == "RPC (move data)"
    assert winners[-1] == "REV (move code)"
    assert "REV (move code)" in winners  # crossover happened inside the sweep
    report("sweep_crossover", render_table(
        ["Raw readings", "REV strategy (vms)", "RPC strategy (vms)",
         "REV bytes", "RPC bytes", "winner"],
        rows,
        title="Extension sweep — colocation payoff: move the computation "
              "or move the data? (10 Mb/s)",
    ))
