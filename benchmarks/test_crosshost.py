"""Cross-host endpoint layer: what does the HELLO handshake cost?

Not a paper figure — the engineering bench for the endpoint layer.  The
HELLO exchange adds one synchronous round trip to every new
pooled/pipelined connection (client HELLO out, server HELLO back) before
the first request frame is written.  That price is paid **once per
connection**, and persistent connections carry thousands of exchanges,
so the acceptance bar is *amortization*: averaged over a conversation,
handshake overhead must stay at or below one round-trip time.

Method: two transports in one process (separate registries — the
handshake genuinely crosses the wire), ``latency_ms=2.0`` emulating a
LAN hop so the round trip is measurable above scheduler noise.  For
each arm (handshaked vs ``handshake=False`` legacy wiring) we time, on
a fresh connection, the first call plus ``CALLS - 1`` further calls.
The per-call RTT baseline comes from the legacy arm's steady state.

Measured shape asserted:

* amortized handshake overhead per call ≤ 1 RTT (it is ~RTT/CALLS);
* the handshaked channel's steady-state per-call latency is within
  noise of the legacy channel's (the handshake leaves no per-frame
  residue).

Results recorded in ``results/crosshost.txt``.
"""

from __future__ import annotations

import time

from repro.net.message import MessageKind
from repro.net.tcpnet import TcpNetwork

#: Emulated one-hop link delay (per request, at the destination).
LINK_LATENCY_MS = 2.0
#: Calls per conversation sample (the amortization denominator).
CALLS = 50
#: Best-of-N sampling to damp scheduler jitter on shared CI hardware.
SAMPLES = 3


def _conversation_s(handshake: bool) -> tuple[float, float]:
    """One fresh-connection conversation; returns (total_s, steady_per_call_s).

    ``steady_per_call_s`` excludes the first call (which pays connect +
    any handshake), so it reflects the channel's per-frame cost alone.
    """
    a = TcpNetwork(latency_ms=LINK_LATENCY_MS, handshake=handshake,
                   hello_timeout_s=5.0)
    b = TcpNetwork(latency_ms=LINK_LATENCY_MS, handshake=handshake)
    try:
        a.register("caller", lambda m: "ok")
        b.register("server", lambda m: "pong")
        a.connect("server", b.endpoint_of("server"))
        started = time.perf_counter()
        a.call("caller", "server", MessageKind.PING)  # opens + handshakes
        first_s = time.perf_counter() - started
        steady_started = time.perf_counter()
        for _ in range(CALLS - 1):
            a.call("caller", "server", MessageKind.PING)
        steady_s = time.perf_counter() - steady_started
        return first_s + steady_s, steady_s / (CALLS - 1)
    finally:
        a.shutdown()
        b.shutdown()


def test_handshake_overhead_amortizes_below_one_rtt(report):
    legacy_total = hello_total = float("inf")
    legacy_steady = hello_steady = float("inf")
    for _ in range(SAMPLES):
        total, steady = _conversation_s(handshake=False)
        legacy_total, legacy_steady = (min(legacy_total, total),
                                       min(legacy_steady, steady))
        total, steady = _conversation_s(handshake=True)
        hello_total, hello_steady = (min(hello_total, total),
                                     min(hello_steady, steady))

    rtt_s = legacy_steady  # a steady-state call is exactly one round trip
    overhead_total_s = max(0.0, hello_total - legacy_total)
    amortized_s = overhead_total_s / CALLS

    lines = [
        "Cross-host HELLO handshake overhead "
        f"({CALLS} calls/conversation, {LINK_LATENCY_MS} ms emulated link, "
        f"best of {SAMPLES})",
        f"  round-trip time (steady-state call) : {rtt_s * 1e3:8.3f} ms",
        f"  legacy conversation (no HELLO)      : {legacy_total * 1e3:8.3f} ms",
        f"  handshaked conversation             : {hello_total * 1e3:8.3f} ms",
        f"  handshake overhead, whole conn      : {overhead_total_s * 1e3:8.3f} ms",
        f"  handshake overhead, amortized/call  : {amortized_s * 1e3:8.3f} ms"
        f"  ({amortized_s / rtt_s:.2f} RTT)",
        f"  steady-state per call, handshaked   : {hello_steady * 1e3:8.3f} ms",
    ]
    report("crosshost", "\n".join(lines))

    # The acceptance bar: ≤ 1 RTT amortized.  (The true cost is ~1 RTT
    # per *connection*, i.e. ~RTT/CALLS per call — assert with margin.)
    assert amortized_s <= rtt_s, (
        f"handshake overhead {amortized_s * 1e3:.3f} ms/call exceeds one "
        f"RTT ({rtt_s * 1e3:.3f} ms)"
    )
    # And the handshake must leave no per-frame residue: steady-state
    # calls on a handshaked channel cost what legacy calls cost (3x
    # guards CI jitter, not a real margin).
    assert hello_steady <= legacy_steady * 3
