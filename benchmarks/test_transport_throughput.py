"""Transport throughput: connection-per-call vs pooled vs pipelined TCP.

Not a paper figure — an engineering bench for the ROADMAP's "fast as the
hardware allows" north star.  The seed transport mirrored early RMI's
connection-per-call behaviour (a fresh socket and a fresh server thread
per request); the pooled transport keeps one persistent connection per
(src, dst) pair, and the pipelined mode additionally carries many
concurrent exchanges on that one connection, matching replies to callers
by message id.

The bench runs 8 concurrent callers against one node in each mode and
writes the measured rates to ``results/transport_throughput.txt`` so
future transport changes can diff against a recorded baseline.  The shape
that must hold: pooling reuses the connect handshake, so the pooled and
pipelined modes beat connection-per-call by at least 2x.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.net.message import MessageKind
from repro.net.tcpnet import MODES, TcpNetwork

#: The acceptance shape: pooled/pipelined vs per-call at 8 callers.
WORKERS = 8
CALLS_PER_WORKER = 50
WARMUP_CALLS = 5
#: Best-of-N sampling to damp scheduler jitter on shared CI hardware.
SAMPLES = 3


def measure_throughput(mode: str, workers: int = WORKERS,
                       calls: int = CALLS_PER_WORKER) -> float:
    """Calls/second achieved by ``workers`` concurrent callers."""
    net = TcpNetwork(mode=mode)
    try:
        net.register("client", lambda m: None)
        net.register("server", lambda m: m.payload)
        for _ in range(WARMUP_CALLS):  # establish pooled connections
            net.call("client", "server", MessageKind.PING, 0)
        barrier = threading.Barrier(workers + 1)

        def worker() -> None:
            barrier.wait()
            for i in range(calls):
                net.call("client", "server", MessageKind.PING, i)

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for t in threads:
            t.start()
        barrier.wait()
        start = time.perf_counter()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        return workers * calls / elapsed
    finally:
        net.shutdown()


def measure_batch_round_trips(batch_size: int) -> tuple[int, int]:
    """Remote messages for N calls vs one call_many batch of N."""
    net = TcpNetwork()
    try:
        net.register("client", lambda m: None)
        net.register("server", lambda m: m.payload)
        before = len(net.trace)
        for i in range(batch_size):
            net.call("client", "server", MessageKind.PING, i)
        sequential_msgs = len(net.trace) - before
        before = len(net.trace)
        net.call_many(
            "client", "server",
            [(MessageKind.PING, i) for i in range(batch_size)],
        )
        batched_msgs = len(net.trace) - before
        return sequential_msgs, batched_msgs
    finally:
        net.shutdown()


def test_transport_throughput(report):
    rates = {
        mode: max(measure_throughput(mode) for _ in range(SAMPLES))
        for mode in MODES
    }
    sequential_msgs, batched_msgs = measure_batch_round_trips(8)
    speedups = {mode: rates[mode] / rates["per-call"] for mode in MODES}
    lines = [
        "Transport throughput -- 8 concurrent callers, loopback TCP",
        "(connection strategy vs calls/second; speedup over per-call)",
        "",
    ]
    for mode in MODES:
        lines.append(
            f"  {mode:<10s} {rates[mode]:>10.0f} calls/s   {speedups[mode]:>5.2f}x"
        )
    lines += [
        "",
        f"call_many: {sequential_msgs} frames for 8 sequential calls vs "
        f"{batched_msgs} frames for one batch of 8",
    ]
    report("transport_throughput", "\n".join(lines))

    # The tentpole's acceptance shape: persistent connections beat
    # connection-per-call by >= 2x at 8 concurrent callers.
    assert rates["pipelined"] >= 2.0 * rates["per-call"], speedups
    assert rates["pooled"] >= 2.0 * rates["per-call"], speedups
    # Batching collapses 8 round trips (16 frames) into one (2 frames).
    assert sequential_msgs == 16
    assert batched_msgs == 2


@pytest.mark.slow
def test_transport_throughput_sustained():
    """Stress variant: heavier per-worker volume, pipelined only.

    Excluded from tier-1 (``-m "not slow"``); run explicitly with
    ``pytest -m slow benchmarks/test_transport_throughput.py``.
    """
    rate = measure_throughput("pipelined", workers=8, calls=500)
    baseline = measure_throughput("per-call", workers=8, calls=500)
    assert rate >= 2.0 * baseline
