"""Transport throughput: connection-per-call vs pooled vs pipelined TCP.

Not a paper figure — an engineering bench for the ROADMAP's "fast as the
hardware allows" north star.  The seed transport mirrored early RMI's
connection-per-call behaviour (a fresh socket and a fresh server thread
per request); the pooled transport keeps one persistent connection per
(src, dst) pair, and the pipelined mode additionally carries many
concurrent exchanges on that one connection, matching replies to callers
by message id — since the reactor rewrite, over an event-loop data plane
with adaptive frame coalescing.

The bench runs 8 concurrent callers against one node in each mode, adds
a 64-caller pipelined point (where per-wake costs amortize), and — since
the call path learned transparent aggregation — measures both pipelined
points with auto-batching disabled too, so the coalescing win is its own
recorded number rather than folded into the mode comparison.  The server
handler is declared ``inline_safe``: PING is on the inline allowlist, so
the bench exercises the full fast path (client-side AUTO_BATCH frames,
loop-thread dispatch, aggregated replies).  Results go to
``results/transport_throughput.txt`` and a machine-readable
``results/BENCH_transport_throughput.json`` (including the reactor's
data-plane counters — batch-size histogram, inline-dispatch tallies) so
future transport changes can diff against a recorded baseline.  The
shape that must hold: pipelining beats connection-per-call by at least
2x, and pooling stays measurably ahead of it.  (The reactor accelerated
per-call mode too — a fresh connection now costs a loop registration
instead of a spawned reader thread — so the pooled gap is narrower than
in the thread-per-connection era.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import pytest

from repro.net.message import MessageKind, inline_safe
from repro.net.tcpnet import MODES, TcpNetwork
from repro.runtime.metrics import collect_data_plane

#: The acceptance shape: pooled/pipelined vs per-call at 8 callers.
WORKERS = 8
CALLS_PER_WORKER = 50
#: The amortization point: many callers sharing one pipelined connection.
WIDE_WORKERS = 64
WIDE_CALLS_PER_WORKER = 8
WARMUP_CALLS = 5
#: Best-of-N sampling to damp scheduler jitter on shared CI hardware.
SAMPLES = 3


@dataclass(frozen=True)
class ThroughputSample:
    """One measured run: aggregate rate plus per-call latency spread."""

    calls_per_s: float
    p50_ms: float
    p99_ms: float
    data_plane: dict | None

    def as_dict(self) -> dict:
        row: dict = {
            "calls_per_s": round(self.calls_per_s, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }
        if self.data_plane is not None:
            row["data_plane"] = self.data_plane
        return row


def _percentile(sorted_values: list[float], q: float) -> float:
    """The ``q``-quantile of an already-sorted non-empty sample."""
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def measure_throughput(mode: str, workers: int = WORKERS,
                       calls: int = CALLS_PER_WORKER,
                       **net_kwargs) -> ThroughputSample:
    """Rate and latency spread for ``workers`` concurrent callers.

    ``net_kwargs`` reach the :class:`TcpNetwork` constructor — the
    auto-batch comparison points pass ``auto_batch=False`` here.
    """
    net = TcpNetwork(mode=mode, **net_kwargs)
    try:
        net.register("client", lambda m: None)
        # inline_safe: PING is allowlisted, so declaring the echo handler
        # non-blocking lets the server answer on the reactor loop thread.
        net.register("server", inline_safe(lambda m: m.payload))
        for _ in range(WARMUP_CALLS):  # establish pooled connections
            net.call("client", "server", MessageKind.PING, 0)
        barrier = threading.Barrier(workers + 1)
        lanes: list[list[float]] = [[] for _ in range(workers)]

        def worker(lane: list[float]) -> None:
            barrier.wait()
            for i in range(calls):
                t0 = time.perf_counter()
                net.call("client", "server", MessageKind.PING, i)
                lane.append(time.perf_counter() - t0)

        threads = [
            threading.Thread(target=worker, args=(lane,)) for lane in lanes
        ]
        for t in threads:
            t.start()
        barrier.wait()
        start = time.perf_counter()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        latencies = sorted(sample for lane in lanes for sample in lane)
        stats = collect_data_plane(net)
        return ThroughputSample(
            calls_per_s=workers * calls / elapsed,
            p50_ms=_percentile(latencies, 0.50) * 1000.0,
            p99_ms=_percentile(latencies, 0.99) * 1000.0,
            data_plane=stats.as_dict() if stats is not None else None,
        )
    finally:
        net.shutdown()


def best_of(samples: int, mode: str, workers: int = WORKERS,
            calls: int = CALLS_PER_WORKER, **net_kwargs) -> ThroughputSample:
    """Best-rate sample of ``samples`` runs (damps box noise)."""
    return max(
        (measure_throughput(mode, workers, calls, **net_kwargs)
         for _ in range(samples)),
        key=lambda sample: sample.calls_per_s,
    )


def measure_batch_round_trips(batch_size: int) -> tuple[int, int]:
    """Remote messages for N calls vs one call_many batch of N."""
    net = TcpNetwork()
    try:
        net.register("client", lambda m: None)
        net.register("server", lambda m: m.payload)
        before = len(net.trace)
        for i in range(batch_size):
            net.call("client", "server", MessageKind.PING, i)
        sequential_msgs = len(net.trace) - before
        before = len(net.trace)
        net.call_many(
            "client", "server",
            [(MessageKind.PING, i) for i in range(batch_size)],
        )
        batched_msgs = len(net.trace) - before
        return sequential_msgs, batched_msgs
    finally:
        net.shutdown()


def test_transport_throughput(report):
    results = {mode: best_of(SAMPLES, mode) for mode in MODES}
    wide = best_of(SAMPLES, "pipelined", WIDE_WORKERS, WIDE_CALLS_PER_WORKER)
    # The same two pipelined points with auto-batching off isolate the
    # coalescing win from everything else the pipelined mode does.
    nobatch = best_of(SAMPLES, "pipelined", auto_batch=False)
    wide_nobatch = best_of(SAMPLES, "pipelined", WIDE_WORKERS,
                           WIDE_CALLS_PER_WORKER, auto_batch=False)
    sequential_msgs, batched_msgs = measure_batch_round_trips(8)
    rates = {mode: sample.calls_per_s for mode, sample in results.items()}
    speedups = {mode: rates[mode] / rates["per-call"] for mode in MODES}
    lines = [
        "Transport throughput -- 8 concurrent callers, loopback TCP",
        "(connection strategy vs calls/second; speedup over per-call)",
        "",
    ]
    for mode in MODES:
        sample = results[mode]
        lines.append(
            f"  {mode:<10s} {sample.calls_per_s:>10.0f} calls/s   "
            f"{speedups[mode]:>5.2f}x   "
            f"p50 {sample.p50_ms:>6.2f} ms   p99 {sample.p99_ms:>7.2f} ms"
        )
    wide_plane = wide.data_plane or {}
    lines += [
        "",
        f"  pipelined x{WIDE_WORKERS} callers "
        f"{wide.calls_per_s:>10.0f} calls/s           "
        f"p50 {wide.p50_ms:>6.2f} ms   p99 {wide.p99_ms:>7.2f} ms",
        "",
        "auto-batching (pipelined, on vs off):",
        f"  x{WORKERS:<3d} callers  on {results['pipelined'].calls_per_s:>9.0f}"
        f" calls/s   off {nobatch.calls_per_s:>9.0f} calls/s   "
        f"{results['pipelined'].calls_per_s / nobatch.calls_per_s:>5.2f}x",
        f"  x{WIDE_WORKERS:<3d} callers  on {wide.calls_per_s:>9.0f}"
        f" calls/s   off {wide_nobatch.calls_per_s:>9.0f} calls/s   "
        f"{wide.calls_per_s / wide_nobatch.calls_per_s:>5.2f}x",
        f"  x{WIDE_WORKERS} batch frames: {wide_plane.get('auto_batches', 0)} "
        f"carrying {wide_plane.get('auto_batched_msgs', 0)} calls; "
        f"sizes {wide_plane.get('auto_batch_per_frame', {})}",
        f"  x{WIDE_WORKERS} inline dispatches: "
        f"{wide_plane.get('inline_dispatches', 0)} "
        f"(overruns {wide_plane.get('inline_overruns', 0)}, "
        f"demotions {wide_plane.get('inline_demotions', 0)})",
        "",
        f"call_many: {sequential_msgs} frames for 8 sequential calls vs "
        f"{batched_msgs} frames for one batch of 8",
    ]
    data = {
        "workers": WORKERS,
        "calls_per_worker": CALLS_PER_WORKER,
        "samples": SAMPLES,
        "modes": {
            mode: {**sample.as_dict(), "speedup": round(speedups[mode], 2)}
            for mode, sample in results.items()
        },
        "pipelined_wide": {
            "workers": WIDE_WORKERS,
            "calls_per_worker": WIDE_CALLS_PER_WORKER,
            **wide.as_dict(),
        },
        "pipelined_nobatch": {
            "workers": WORKERS,
            "calls_per_worker": CALLS_PER_WORKER,
            **nobatch.as_dict(),
        },
        "pipelined_wide_nobatch": {
            "workers": WIDE_WORKERS,
            "calls_per_worker": WIDE_CALLS_PER_WORKER,
            **wide_nobatch.as_dict(),
        },
        "call_many": {
            "sequential_msgs": sequential_msgs,
            "batched_msgs": batched_msgs,
        },
    }
    report("transport_throughput", "\n".join(lines), data)

    # The acceptance shape: pipelining beats connection-per-call by
    # >= 2x at 8 concurrent callers, and pooling alone still wins
    # measurably (the reactor narrowed the per-call gap — connecting no
    # longer spawns a thread — so 2x is pipelining's bar, not pooling's).
    assert rates["pipelined"] >= 2.0 * rates["per-call"], speedups
    assert rates["pooled"] >= 1.2 * rates["per-call"], speedups
    # Batching collapses 8 round trips (16 frames) into one (2 frames).
    assert sequential_msgs == 16
    assert batched_msgs == 2
    # Coverage, not speed: 64 callers on one connection must actually
    # form AUTO_BATCH frames, and the off-point must form none — if
    # either fails, the comparison above measured the wrong thing.
    assert wide_plane.get("auto_batches", 0) > 0, wide_plane
    assert (wide_nobatch.data_plane or {}).get("auto_batches", 0) == 0, \
        wide_nobatch.data_plane


def test_pipelined_beats_pooled_smoke():
    """Cheap tier-1 guard: pipelining must not regress below pooling.

    Low iteration counts keep this a smoke check, and best-of-N damps
    scheduler noise; the margin allows a sliver of residual jitter
    without letting a real regression (pipelining slower than one
    serialized exchange at a time) slip through.
    """
    pipelined = best_of(2, "pipelined", workers=4, calls=25).calls_per_s
    pooled = best_of(2, "pooled", workers=4, calls=25).calls_per_s
    assert pipelined >= 0.9 * pooled, (pipelined, pooled)


@pytest.mark.slow
def test_transport_throughput_sustained():
    """Stress variant: heavier per-worker volume, pipelined only.

    Excluded from tier-1 (``-m "not slow"``); run explicitly with
    ``pytest -m slow benchmarks/test_transport_throughput.py``.
    """
    rate = measure_throughput("pipelined", workers=8, calls=500).calls_per_s
    baseline = measure_throughput("per-call", workers=8, calls=500).calls_per_s
    assert rate >= 2.0 * baseline
