"""Suppression machinery: inline disables and the committed baseline.

Two ways to accept a finding, both requiring a written reason:

* **Inline** — append ``# magelint: disable=MAGE003(why this is fine)``
  to the offending line (or the ``with``/``except``/``def`` header line
  the finding anchors to).  Use for sites that are *intentionally* shaped
  the way the rule forbids.
* **Baseline** — a committed file of ``RULE|path|symbol|reason`` lines
  (see :func:`load_baseline`).  Use for pre-existing debt that should be
  burned down, not blessed.  Baselines are keyed on symbols, not line
  numbers, so unrelated edits don't churn them; entries that no longer
  match any finding are reported as stale so the file shrinks as debt is
  paid.
"""

from __future__ import annotations

import re
from pathlib import Path

from magelint.findings import Finding

#: ``# magelint: disable=MAGE001(reason),MAGE002(other reason)``
_DISABLE_RE = re.compile(r"#\s*magelint:\s*disable=(?P<body>.+)")
_RULE_RE = re.compile(r"(?P<rule>MAGE\d{3})(?:\((?P<reason>[^)]*)\))?")


def inline_disables(source_lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line number -> set of rule ids disabled on that line."""
    disables: dict[int, set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _DISABLE_RE.search(text)
        if not match:
            continue
        rules = {m.group("rule") for m in _RULE_RE.finditer(match.group("body"))}
        if rules:
            disables[lineno] = rules
    return disables


class BaselineError(ValueError):
    """The baseline file is malformed (bad field count, missing reason)."""


def load_baseline(path: Path) -> dict[str, str]:
    """Parse a baseline file into ``finding-key -> reason``.

    Every entry must carry a non-empty reason: a suppression nobody can
    justify is a suppression nobody should have.
    """
    entries: dict[str, str] = {}
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|", 3)
        if len(parts) != 4:
            raise BaselineError(
                f"{path}:{lineno}: expected 'RULE|path|symbol|reason', got {raw!r}"
            )
        rule, rel_path, symbol, reason = (p.strip() for p in parts)
        if not re.fullmatch(r"MAGE\d{3}", rule):
            raise BaselineError(f"{path}:{lineno}: bad rule id {rule!r}")
        if not reason:
            raise BaselineError(
                f"{path}:{lineno}: baseline entry for {rule} on {rel_path} "
                f"has no reason — every suppression must be justified"
            )
        entries[f"{rule}|{rel_path}|{symbol}"] = reason
    return entries


def format_baseline(findings: list[Finding],
                    reasons: dict[str, str] | None = None) -> str:
    """Render findings as a baseline file body (``--write-baseline``).

    ``reasons`` maps finding keys to justifications; unexplained entries
    get a TODO marker that a human must replace before review.
    """
    reasons = reasons or {}
    lines = [
        "# magelint suppression baseline.",
        "# One entry per accepted finding: RULE|path|symbol|reason",
        "# Keyed on symbols (not line numbers) so edits elsewhere in the",
        "# file don't churn entries.  Delete entries as the debt is paid;",
        "# stale entries are reported on every run.",
    ]
    for finding in sorted(findings, key=lambda f: f.key()):
        rule, path, symbol = finding.key().split("|", 2)
        reason = reasons.get(finding.key(), "TODO: justify or fix")
        lines.append(f"{rule}|{path}|{symbol}|{reason}")
    return "\n".join(lines) + "\n"
