"""magelint — a protocol-aware static analyzer for the MAGE codebase.

magelint enforces the concurrency, deadline, and wire invariants this
repository's own bug history taught the hard way (see README.md for the
rule-by-rule archaeology).  It is stdlib-only (``ast``), runs as
``python -m magelint src/``, and CI gates on it with a committed
suppression baseline.

Architecture
------------

* :mod:`magelint.engine` — collects files, parses each once, runs two
  passes: a per-module pass (each rule visits the AST of one file) and a
  whole-program pass (rules that need cross-module facts, e.g. protocol
  exhaustiveness, run over the facts the module pass collected).
* :mod:`magelint.rules` — one module per rule, registered in
  :data:`magelint.rules.ALL_RULES`.  Deleting a rule module breaks its
  fixture test in ``tests/lint/`` — rules are provably live.
* :mod:`magelint.suppress` — inline ``# magelint: disable=MAGExxx(reason)``
  comments and the committed baseline file.
"""

from magelint.findings import Finding
from magelint.engine import LintRun, lint_paths

__all__ = ["Finding", "LintRun", "lint_paths"]

__version__ = "0.1.0"
