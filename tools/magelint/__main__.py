"""``python -m magelint`` entry point."""

import sys

from magelint.cli import main

if __name__ == "__main__":
    sys.exit(main())
