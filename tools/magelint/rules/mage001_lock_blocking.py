"""MAGE001 — blocking call while holding a lock."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from magelint.findings import Finding
from magelint.rules.base import (
    ModuleContext, Rule, attr_chain, is_lock_name, iter_functions,
    terminal_name,
)

#: Method names that block the calling thread until remote/IO progress.
#: ``call``/``call_many`` are the transport's synchronous RPC forms,
#: ``result``/``exception`` block on a CallFuture, ``stream`` drives a
#: windowed transfer to completion, and the socket verbs speak for
#: themselves.  ``call_async``/``cast`` are deliberately absent: they
#: return immediately and are the *correct* thing to do under a lock.
BLOCKING_METHODS = frozenset({
    "call", "call_many", "call_many_async_wait", "result", "exception",
    "stream", "recv", "recv_into", "accept", "sendall", "connect",
})

#: ``module.function`` chains that block (checked against the full chain).
BLOCKING_CHAINS = frozenset({"time.sleep"})


class LockBlockingRule(Rule):
    id = "MAGE001"
    title = "blocking call inside a `with <lock>` body"
    rationale = """
A thread that blocks on remote progress (an RPC, a future's result, a
socket read, a sleep) while holding a local lock is the distributed-
deadlock shape: the remote side may need that very lock to make the
progress being waited for.  PR 4's LockManager "departing state" race was
exactly this — the mover held the per-name lock across the streamed
OBJECT_TRANSFER call, and lock requests arriving for the departing object
wedged behind it.  The fix (begin_departure/abort_departure bracketing
the call *outside* the mutex) is the rewrite this rule demands.

``cond.wait()`` on the *held* condition is exempt — waiting releases the
lock; that is what condition variables are for.  Waiting on anything
else (an Event, a different condition, a future) still flags.
"""
    example_bad = """
with self._lock:
    ack = self._transport.call(src, dst, kind, payload)  # holds lock across RPC
"""
    example_good = """
with self._lock:
    self._begin_departure(name)        # state flip only
ack = self._transport.call(src, dst, kind, payload)
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        cond_over_lock = _condition_bindings(module.tree)
        for func, qualname in iter_functions(module.tree):
            for with_node, ctx_expr in _lock_withs(func):
                held = attr_chain(ctx_expr)
                for call in _calls_in_body(with_node):
                    reason = _blocking_reason(call, held, cond_over_lock)
                    if reason is None:
                        continue
                    findings.append(Finding(
                        rule=self.id,
                        path=module.path,
                        line=call.lineno,
                        symbol=f"{qualname}:{reason}",
                        message=(
                            f"`{reason}` blocks while `{held or 'a lock'}` is "
                            f"held (acquired on line {with_node.lineno}); move "
                            f"the blocking call outside the critical section "
                            f"or flip state under the lock and wait outside it"
                        ),
                    ))
        return findings


def _lock_withs(func: ast.AST) -> Iterator[tuple[ast.With, ast.expr]]:
    for node in ast.walk(func):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            ctx = item.context_expr
            # `with self._lock:` / `with lock:` — compare the terminal
            # identifier; `with self._cond:` is excluded by is_lock_name.
            name = terminal_name(ctx)
            if name and is_lock_name(name):
                yield node, ctx


def _calls_in_body(with_node: ast.With) -> Iterator[ast.Call]:
    for stmt in with_node.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node


def _condition_bindings(tree: ast.Module) -> dict[str, str]:
    """``self.X = threading.Condition(self.Y)`` -> ``{"self.X": "self.Y"}``.

    A condition's ``wait()`` *releases* the lock it wraps, so waiting on
    ``self.X`` while holding ``self.Y`` is the intended pattern, not a
    deadlock — the worker-pool idle wait in tcpnet is the canonical case.
    """
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)
                and terminal_name(node.value.func) == "Condition"
                and node.value.args):
            continue
        wrapped = attr_chain(node.value.args[0])
        if not wrapped:
            continue
        for target in node.targets:
            cond = attr_chain(target)
            if cond:
                bindings[cond] = wrapped
    return bindings


def _blocking_reason(call: ast.Call, held_lock: str,
                     cond_over_lock: dict[str, str]) -> str | None:
    """The dotted spelling of a blocking call, or None when benign."""
    chain = attr_chain(call.func)
    if chain in BLOCKING_CHAINS:
        return chain
    name = terminal_name(call.func)
    if name in BLOCKING_METHODS:
        return chain or name
    if name == "wait":
        # cond.wait() on the held condition (or on a Condition constructed
        # *over* the held lock) releases it — fine.  event.wait() /
        # other.wait() under a mutex blocks while holding.
        receiver = attr_chain(getattr(call.func, "value", ast.Name(id="")))
        if receiver and receiver == held_lock:
            return None
        if receiver and cond_over_lock.get(receiver) == held_lock:
            return None
        return chain or name
    return None
