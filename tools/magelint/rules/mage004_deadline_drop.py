"""MAGE004 — fan-outs must carry the ambient deadline."""

from __future__ import annotations

import ast
from typing import Iterable

from magelint.findings import Finding
from magelint.rules.base import (
    ModuleContext, QualnameIndex, Rule, attr_chain, ordinal_symbols,
    terminal_name,
)

#: The scatter/gather primitives every multi-node operation is built from.
#: A fan-out that omits ``deadline=`` silently re-introduces the pre-PR 3
#: unbounded-walk behaviour for every caller above it.
FANOUT_METHODS = frozenset({
    "scatter", "gather", "call_many", "call_many_async",
    "ping_many", "push_class_many", "query_all_loads",
})

#: Only the layers that *compose* calls are held to this; leaf modules
#: (the transports themselves) legitimately implement the primitives.
SCOPED_PREFIXES = ("src/repro/cluster/", "src/repro/runtime/")


class DeadlineDropRule(Rule):
    id = "MAGE004"
    title = "fan-out call site drops the ambient `deadline=`"
    rationale = """
PR 3 made the end-to-end deadline ambient: a server's nested calls
inherit the caller's shrinking budget via ``effective_deadline`` —
*provided every fan-out site threads it*.  One ``scatter`` or ``gather``
without ``deadline=`` and the whole subtree below it runs unbounded: an
8-hop chase can again spend a full io timeout per hop, which is the
exact pathology deadlines were introduced to kill.  Sites in ``cluster/``
and ``runtime/`` (the composing layers) must pass ``deadline=`` —
explicitly ``None`` where unbounded is the *considered* choice.
"""
    example_bad = """
futures = self.scatter(node_ids, MessageKind.LOAD_QUERY, LoadQuery())
"""
    example_good = """
deadline = effective_deadline(deadline)
futures = self.scatter(node_ids, MessageKind.LOAD_QUERY, LoadQuery(),
                       deadline=deadline)
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.path.startswith(SCOPED_PREFIXES):
            return ()
        offenders = [
            node for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
            and terminal_name(node.func) in FANOUT_METHODS
            and not _has_deadline(node)
        ]
        offenders.sort(key=lambda n: n.lineno)
        symbols = ordinal_symbols(QualnameIndex(module.tree), "deadline-drop",
                                  [n.lineno for n in offenders])
        findings: list[Finding] = []
        for node, symbol in zip(offenders, symbols):
            spelled = attr_chain(node.func) or terminal_name(node.func)
            findings.append(Finding(
                rule=self.id,
                path=module.path,
                line=node.lineno,
                symbol=symbol,
                message=(
                    f"fan-out `{spelled}(...)` carries no `deadline=`; the "
                    f"subtree below it runs unbounded — thread the ambient "
                    f"budget (`deadline=deadline` or "
                    f"`deadline=effective_deadline(None)`), or pass "
                    f"`deadline=None` to record that unbounded is deliberate"
                ),
            ))
        return findings


def _has_deadline(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "deadline" or kw.arg is None:  # **kwargs may carry it
            return True
    return False
