"""MAGE003 — swallowing BaseException swallows shutdown."""

from __future__ import annotations

import ast
from typing import Iterable

from magelint.findings import Finding
from magelint.rules.base import (
    ModuleContext, QualnameIndex, Rule, ordinal_symbols, terminal_name,
)


class BroadExceptRule(Rule):
    id = "MAGE003"
    title = "`except BaseException` / bare `except` without re-raise"
    rationale = """
``except BaseException`` (and bare ``except``) catches
``KeyboardInterrupt`` and ``SystemExit``.  PR 1's serve loops did exactly
this around dispatch, and the symptom was a process that could not be
Ctrl-C'd: the interrupt landed inside the handler guard, was logged as a
"dispatch failure", and the loop went back to ``accept()``.  Catching
BaseException is legitimate only as *cleanup-then-reraise* — undo partial
state, then propagate — so a handler whose body re-raises (a bare
``raise``) passes.  Everything else should catch ``Exception``.
"""
    example_bad = """
try:
    fn(*args)
except BaseException:
    pass  # dispatch failures are the connection's problem
"""
    example_good = """
try:
    ack = transport.call(...)
except BaseException:
    locks.abort_departure(name)   # cleanup...
    raise                         # ...then propagate, interrupts included
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        offenders = [
            node for node in ast.walk(module.tree)
            if isinstance(node, ast.ExceptHandler)
            and _is_broad(node) and not _reraises(node)
        ]
        offenders.sort(key=lambda n: n.lineno)
        symbols = ordinal_symbols(QualnameIndex(module.tree), "broad-except",
                                  [n.lineno for n in offenders])
        findings: list[Finding] = []
        for node, symbol in zip(offenders, symbols):
            spelled = "bare `except:`" if node.type is None \
                else "`except BaseException`"
            original = module.line(node.lineno).rstrip("\n")
            fixed = original.replace("BaseException", "Exception") \
                if node.type is not None \
                else original.replace("except:", "except Exception:")
            findings.append(Finding(
                rule=self.id,
                path=module.path,
                line=node.lineno,
                symbol=symbol,
                message=(
                    f"{spelled} without re-raise swallows KeyboardInterrupt/"
                    f"SystemExit; catch Exception, or re-raise after cleanup"
                ),
                suggestion=_unified(module.path, node.lineno, original, fixed),
            ))
        return findings


def _is_broad(node: ast.ExceptHandler) -> bool:
    if node.type is None:
        return True
    return terminal_name(node.type) == "BaseException"


def _reraises(node: ast.ExceptHandler) -> bool:
    """Does any path through the handler body re-raise the caught error?

    A bare ``raise`` anywhere in the handler (outside nested defs) counts;
    so does ``raise <name>`` of the bound exception variable.
    """
    bound = node.name
    stack: list[ast.AST] = list(node.body)
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue  # a nested def's raise does not exit this handler
        stack.extend(ast.iter_child_nodes(child))
        if isinstance(child, ast.Raise):
            if child.exc is None:
                return True
            if bound and isinstance(child.exc, ast.Name) \
                    and child.exc.id == bound:
                return True
    return False


def _unified(path: str, lineno: int, old: str, new: str) -> str:
    if old == new:
        return ""
    return (f"--- a/{path}\n+++ b/{path}\n"
            f"@@ -{lineno},1 +{lineno},1 @@\n-{old}\n+{new}")
