"""Rule plumbing: the per-module context, the program-wide fact store,
and the :class:`Rule` base class.

A rule participates in one or both passes:

* ``check_module(module)`` — runs once per parsed file; returns findings
  local to that file.  Most rules live entirely here.
* ``collect(module, facts)`` then ``check_program(facts)`` — rules whose
  verdict needs the *whole* program (protocol exhaustiveness, cross-class
  lock discipline) record facts during the module sweep and judge them
  once every file has been seen.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterable

from magelint.findings import Finding


@dataclass
class ModuleContext:
    """Everything a rule may want to know about one parsed file."""

    path: str                # repo-relative posix path
    tree: ast.Module
    source_lines: list[str]

    def line(self, lineno: int) -> str:
        """The 1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""


@dataclass
class ProgramFacts:
    """The whole-program fact store rules fill during the module pass.

    Keys are coarse on purpose — each program rule owns its namespace
    (e.g. ``kinds:*`` for MAGE006, ``classes:*`` for MAGE007) so rules
    never trample each other.
    """

    data: dict[str, Any] = field(default_factory=dict)

    def setdefault(self, key: str, default: Any) -> Any:
        return self.data.setdefault(key, default)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


class Rule:
    """Base class every MAGE rule subclasses.

    Class attributes double as the ``--explain`` documentation, so a rule
    cannot ship without its rationale and examples.
    """

    id: str = ""               # "MAGE001"
    title: str = ""            # one-line summary
    rationale: str = ""        # the historical bug that motivated the rule
    example_bad: str = ""      # minimal offending snippet
    example_good: str = ""     # the compliant rewrite

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    def collect(self, module: ModuleContext, facts: ProgramFacts) -> None:
        return None

    def check_program(self, facts: ProgramFacts) -> Iterable[Finding]:
        return ()

    def explain(self) -> str:
        parts = [f"{self.id}: {self.title}", "", self.rationale.strip()]
        if self.example_bad:
            parts += ["", "Flags:", _indent(self.example_bad.strip())]
        if self.example_good:
            parts += ["", "Clean:", _indent(self.example_good.strip())]
        return "\n".join(parts) + "\n"


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def attr_chain(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains as a dotted string.

    Returns ``""`` for expressions that are not pure attribute chains
    (calls, subscripts, ...), which callers treat as "not comparable".
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def terminal_name(node: ast.AST) -> str:
    """The final identifier of a call target: ``x.y.call`` -> ``call``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def is_lock_name(name: str) -> bool:
    """Heuristic: does this identifier name a mutual-exclusion lock?

    Condition variables are deliberately excluded — ``cond.wait()``
    *releases* the lock it wraps, so holding one across a wait is the
    intended use, not the deadlock shape MAGE001 hunts.
    """
    lowered = name.lower()
    if "cond" in lowered:
        return False
    return "lock" in lowered or "mutex" in lowered


LOCK_FACTORY_NAMES = frozenset({"Lock", "RLock", "Condition"})


def lock_factory_called(node: ast.AST) -> bool:
    """True for ``threading.Lock()`` / ``Lock()`` / ``threading.RLock()``."""
    return (isinstance(node, ast.Call)
            and terminal_name(node.func) in LOCK_FACTORY_NAMES)


def iter_functions(tree: ast.Module) -> Iterable[tuple[ast.AST, str]]:
    """Every function/method paired with its dotted qualname."""
    def visit(node: ast.AST, prefix: str) -> Iterable[tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield child, qual
                yield from visit(child, qual + ".")
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.")
            else:
                yield from visit(child, prefix)
    yield from visit(tree, "")


class QualnameIndex:
    """Map a line number to the innermost enclosing function's qualname.

    Used to anchor baseline symbols on *functions* instead of line
    numbers, so unrelated edits above a finding don't churn the baseline.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._spans: list[tuple[int, int, str]] = []
        for func, qual in iter_functions(tree):
            end = getattr(func, "end_lineno", func.lineno) or func.lineno
            self._spans.append((func.lineno, end, qual))

    def qualname_at(self, lineno: int) -> str:
        best = "<module>"
        best_width = None
        for start, end, qual in self._spans:
            if start <= lineno <= end:
                width = end - start
                if best_width is None or width < best_width:
                    best, best_width = qual, width
        return best


def ordinal_symbols(index: QualnameIndex, tag: str,
                    linenos: list[int]) -> list[str]:
    """Stable symbols ``qualname:tag[n]`` for findings sharing a function."""
    counts: dict[str, int] = {}
    symbols = []
    for lineno in linenos:
        qual = index.qualname_at(lineno)
        counts[qual] = counts.get(qual, 0) + 1
        symbols.append(f"{qual}:{tag}[{counts[qual]}]")
    return symbols


