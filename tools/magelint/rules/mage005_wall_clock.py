"""MAGE005 — deadline/lease/EWMA arithmetic must use the monotonic clock."""

from __future__ import annotations

import ast
from typing import Iterable

from magelint.findings import Finding
from magelint.rules.base import (
    ModuleContext, QualnameIndex, Rule, attr_chain, ordinal_symbols,
)

#: The layers whose time arithmetic feeds deadlines, lock leases,
#: heartbeat verdicts, and link EWMAs.  Wall-clock readings there are
#: corrupted by NTP steps and manual clock changes; ``time.monotonic()``
#: is the only clock those computations may difference.
SCOPED_PREFIXES = ("src/repro/net/", "src/repro/runtime/", "src/repro/cluster/")


class WallClockRule(Rule):
    id = "MAGE005"
    title = "`time.time()` in deadline/lease/timing code"
    rationale = """
Every duration in the stack — Deadline expiry, lock lease TTLs,
heartbeat timeouts, per-link latency EWMAs — is a *difference of two
clock readings*.  ``time.time()`` differences jump when NTP steps the
wall clock: a one-second backward step makes every outstanding deadline
one second longer and can mark a healthy peer dead.  PR 3 anchored
``Deadline`` on ``time.monotonic()`` for exactly this reason; this rule
keeps the rest of the net/runtime/cluster layers on the same clock.
Wall-clock readings are fine for *display* (log timestamps) — those
belong in bench/CLI code, outside this rule's scope.
"""
    example_bad = """
granted_at = time.time()
if time.time() - granted_at > ttl_s: ...
"""
    example_good = """
granted_at = time.monotonic()
if time.monotonic() - granted_at > ttl_s: ...
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.path.startswith(SCOPED_PREFIXES):
            return ()
        offenders = [
            node for node in ast.walk(module.tree)
            if isinstance(node, ast.Call)
            and attr_chain(node.func) == "time.time"
        ]
        offenders.sort(key=lambda n: n.lineno)
        symbols = ordinal_symbols(QualnameIndex(module.tree), "wall-clock",
                                  [n.lineno for n in offenders])
        findings: list[Finding] = []
        for node, symbol in zip(offenders, symbols):
            original = module.line(node.lineno).rstrip("\n")
            findings.append(Finding(
                rule=self.id,
                path=module.path,
                line=node.lineno,
                symbol=symbol,
                message=(
                    "`time.time()` in deadline/lease/timing code: wall-clock "
                    "differences jump under NTP steps — use `time.monotonic()` "
                    "(or the module's Clock abstraction)"
                ),
                suggestion=_unified(
                    module.path, node.lineno, original,
                    original.replace("time.time()", "time.monotonic()"),
                ),
            ))
        return findings


def _unified(path: str, lineno: int, old: str, new: str) -> str:
    if old == new:
        return ""
    return (f"--- a/{path}\n+++ b/{path}\n"
            f"@@ -{lineno},1 +{lineno},1 @@\n-{old}\n+{new}")
