"""MAGE009 — blocking call in an inline-declared handler."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from magelint.findings import Finding
from magelint.rules.base import (
    ModuleContext, Rule, attr_chain, iter_functions, terminal_name,
)
from magelint.rules.mage001_lock_blocking import (
    BLOCKING_CHAINS, BLOCKING_METHODS,
)

#: MessageKind members the TCP server may dispatch on its reactor loop
#: thread.  Mirrors ``repro.net.message.INLINE_KINDS`` — kept in lockstep
#: by the fixture suite (magelint never imports the code it lints).
INLINE_MEMBERS = frozenset({"PING", "LOAD_QUERY"})


class InlineBlockingRule(Rule):
    id = "MAGE009"
    title = "blocking call in an inline-declared handler"
    rationale = """
Declaring a handler ``@inline_safe`` is a registration contract: the TCP
server may then run the INLINE_KINDS portion of that handler directly on
its reactor *loop thread*, skipping the worker-pool handoff.  The loop
thread services every connection of the node — a handler that blocks
there (an RPC, a future's result, a sleep, an event wait) stalls all
peers at once, which is strictly worse than the handoff the declaration
was meant to avoid.  The server's per-call time budget demotes
persistent offenders at runtime, but only after they have already
stalled the loop; this rule catches the same mistake at lint time,
reusing MAGE001's blocking-call inference.  Checked are the declared
handler itself and, in the same module, the methods its dispatch table
maps INLINE_KINDS members to (the code the declaration actually puts on
the loop).
"""
    example_bad = """
@inline_safe
def handle(self, message):
    self._ready.wait()                 # stalls every connection
    return self._handlers[message.kind](message.payload)
"""
    example_good = """
@inline_safe
def handle(self, message):
    return self._handlers[message.kind](message.payload)

self._handlers = {MessageKind.PING: self._on_ping}  # returns a constant
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        functions = list(iter_functions(module.tree))
        declared = [
            (func, qualname) for func, qualname in functions
            if _is_inline_declared(func)
        ]
        if not declared:
            return []
        # The declaration covers the handler *and* what its dispatch
        # table routes INLINE_MEMBERS to within this module.
        target_names = set(_inline_dispatch_targets(module.tree))
        checked = declared + [
            (func, qualname) for func, qualname in functions
            if func.name in target_names and not _is_inline_declared(func)
        ]
        findings: list[Finding] = []
        for func, qualname in checked:
            for call, reason in _blocking_calls(func):
                findings.append(Finding(
                    rule=self.id,
                    path=module.path,
                    line=call.lineno,
                    symbol=f"{qualname}:{reason}",
                    message=(
                        f"`{reason}` blocks inside inline-declared handler "
                        f"`{qualname}` — INLINE_KINDS handlers run on the "
                        f"reactor loop thread and stall every connection; "
                        f"move the blocking work behind a pool-dispatched "
                        f"kind or drop the inline_safe declaration"
                    ),
                ))
        return findings


def _is_inline_declared(func: ast.AST) -> bool:
    for decorator in getattr(func, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if terminal_name(target) == "inline_safe":
            return True
    return False


def _inline_dispatch_targets(tree: ast.Module) -> Iterator[str]:
    """Method names a dispatch dict maps INLINE_MEMBERS kinds to."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            chain = attr_chain(key) if key is not None else ""
            if (chain.startswith("MessageKind.")
                    and chain.split(".", 1)[1] in INLINE_MEMBERS):
                name = terminal_name(value)
                if name:
                    yield name


def _blocking_calls(func: ast.AST) -> Iterator[tuple[ast.Call, str]]:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        chain = attr_chain(node.func)
        name = terminal_name(node.func)
        if chain in BLOCKING_CHAINS:
            yield node, chain
        elif name in BLOCKING_METHODS:
            yield node, chain or name
        elif name == "wait":
            # Unlike MAGE001 there is no held-lock context that could
            # make a wait benign: the loop thread must never park.
            yield node, chain or name
