"""Rule registry.

Rules register by being listed here; the fixture suite in ``tests/lint/``
asserts each rule's id is present *and* that it flags its fixture, so
deleting a rule module (or dropping it from this list) fails tests —
the "rules are provably live" acceptance criterion.
"""

from __future__ import annotations

from magelint.rules.base import ModuleContext, ProgramFacts, Rule
from magelint.rules.mage001_lock_blocking import LockBlockingRule
from magelint.rules.mage002_error_reduce import ErrorReduceRule
from magelint.rules.mage003_broad_except import BroadExceptRule
from magelint.rules.mage004_deadline_drop import DeadlineDropRule
from magelint.rules.mage005_wall_clock import WallClockRule
from magelint.rules.mage006_kind_exhaustive import KindExhaustiveRule
from magelint.rules.mage007_shared_mutation import SharedMutationRule
from magelint.rules.mage008_wire_coverage import WireCoverageRule
from magelint.rules.mage009_inline_blocking import InlineBlockingRule
from magelint.rules.mage010_servant_call import ServantCallRule

ALL_RULES: tuple[Rule, ...] = (
    LockBlockingRule(),
    ErrorReduceRule(),
    BroadExceptRule(),
    DeadlineDropRule(),
    WallClockRule(),
    KindExhaustiveRule(),
    SharedMutationRule(),
    WireCoverageRule(),
    InlineBlockingRule(),
    ServantCallRule(),
)

RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID", "Rule", "ModuleContext", "ProgramFacts"]
