"""MAGE010 — direct servant-method calls outside the sanctioned bypass."""

from __future__ import annotations

import ast
from typing import Iterable

from magelint.findings import Finding
from magelint.rules.base import ModuleContext, ProgramFacts, Rule, attr_chain

#: The modules allowed to call servant methods directly: the invoker (the
#: wire path's dispatcher — its inputs already crossed the pickle
#: boundary) and the local-bypass module (which performs the equivalent
#: isolation itself and documents the contract).
SANCTIONED = ("rmi/invoker.py", "rmi/bypass.py")

#: Store accessors whose result is a live servant (``get``) or a servant
#: record whose ``.obj`` is one (``lookup``/``record``).
_SERVANT_ACCESSORS = frozenset({"get"})
_RECORD_ACCESSORS = frozenset({"lookup", "record"})

#: Lookup helpers that hand back a live servant directly.
_SERVANT_HELPERS = frozenset({"_lookup_servant", "_servant_lookup"})


class ServantCallRule(Rule):
    id = "MAGE010"
    title = "servant method called directly, skipping marshal isolation"
    rationale = """
Arguments and results of a remote invocation cross the RMI boundary *by
value*: the marshal layer's copy semantics are what let a servant mutate
its arguments (or retain them) without entangling itself with a caller's
live objects.  Code that pulls a servant out of the ``ObjectStore`` and
calls a method on it directly shares references across that boundary —
a mutation on either side silently leaks to the other, the class of bug
the whole marshal layer exists to prevent, and one that only surfaces
when a caller happens to reuse the mutated object.  The in-process
bypass (``rmi/bypass.py``) is the sanctioned way to make a colocated
call cheap: it isolates arguments and results exactly as the wire
would.  Everything else must go through the invoker or a stub.
"""
    example_bad = """
servant = self._store.get(name)
servant.update(self._pending)   # live reference crosses the boundary
"""
    example_good = """
stub = self.client.stub_for(RemoteRef(self.node_id, name))
stub.update(self._pending)      # by-value, bypass makes it cheap
"""

    # -- pass 1: collect ----------------------------------------------------

    def collect(self, module: ModuleContext, facts: ProgramFacts) -> None:
        sites: list[tuple[str, int, str]] = facts.setdefault(
            "servants:call_sites", [])
        if module.path.endswith(SANCTIONED):
            return
        servant_vars: set[str] = set()
        record_vars: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                if self._is_servant_expr(node.value, record_vars):
                    servant_vars.add(target)
                elif _store_accessor(node.value) in _RECORD_ACCESSORS:
                    record_vars.add(target)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr.startswith("__"):
                continue  # dunder protocol hooks, not remote methods
            base = func.value
            direct = self._is_servant_expr(base, record_vars)
            via_var = isinstance(base, ast.Name) and base.id in servant_vars
            if not (direct or via_var):
                continue
            anchor = base.id if isinstance(base, ast.Name) else "<servant>"
            sites.append((
                module.path, node.lineno, f"{anchor}.{func.attr}"
            ))

    @staticmethod
    def _is_servant_expr(node: ast.AST, record_vars: set[str]) -> bool:
        """Whether ``node`` evaluates to a live servant object."""
        if isinstance(node, ast.Call):
            accessor = _store_accessor(node)
            if accessor in _SERVANT_ACCESSORS:
                return True
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "")
            if name in _SERVANT_HELPERS:
                return True
        if isinstance(node, ast.Attribute) and node.attr == "obj":
            base = node.value
            if isinstance(base, ast.Name) and base.id in record_vars:
                return True
            if _store_accessor(base) in _RECORD_ACCESSORS:
                return True
        return False

    # -- pass 2: judge ------------------------------------------------------

    def check_program(self, facts: ProgramFacts) -> Iterable[Finding]:
        findings: list[Finding] = []
        for path, lineno, symbol in facts.get("servants:call_sites", []):
            findings.append(Finding(
                rule=self.id,
                path=path,
                line=lineno,
                symbol=symbol,
                message=(
                    f"`{symbol}(...)` calls a servant pulled from the "
                    f"object store directly — arguments and results skip "
                    f"the marshal layer's copy semantics, so mutations "
                    f"leak across the RMI boundary; route the call "
                    f"through a stub (the in-process bypass keeps it "
                    f"cheap) or the invoker"
                ),
            ))
        return findings


def _store_accessor(node: ast.AST) -> str | None:
    """``"get"``/``"lookup"``/``"record"`` for a call on an object store."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    chain = attr_chain(func.value)
    if not chain:
        return None
    last = chain.rsplit(".", 1)[-1]
    if last in ("store", "_store") or last.endswith("_store"):
        return func.attr
    return None
