"""MAGE006 — MessageKind exhaustiveness across the whole program."""

from __future__ import annotations

import ast
from typing import Iterable

from magelint.findings import Finding
from magelint.rules.base import ModuleContext, ProgramFacts, Rule, attr_chain

#: Kinds the node dispatcher never sees: REPLY is the response envelope
#: (matched to waiters by msg id at the transport) and BATCH/AUTO_BATCH
#: are unpacked into their sub-requests by ``Transport.execute_handler``
#: itself (AUTO_BATCH is transport-coalesced and never user-built).
DISPATCH_EXEMPT = frozenset({"REPLY", "BATCH", "AUTO_BATCH"})

#: Kinds that legitimately travel with no protocol payload dataclass.
PAYLOAD_EXEMPT = frozenset({"PING", "REPLY", "BATCH", "AUTO_BATCH"})

#: Where the payload vocabulary must live.
PROTOCOL_MODULES = ("rmi/protocol.py", "net/message.py")

#: Constructors at send sites that are envelopes, not payloads.
_NOT_PAYLOADS = frozenset({"Message", "Deadline", "dict", "list", "tuple"})


class KindExhaustiveRule(Rule):
    id = "MAGE006"
    title = "MessageKind member without dispatch handler / protocol payload"
    rationale = """
The protocol's single source of truth is the ``MessageKind`` enum; the
things that must stay in lockstep with it are scattered: the node
dispatcher's handler table (``runtime/external.py``) and the payload
vocabulary (``rmi/protocol.py``).  Adding a kind without a handler gives
peers a frame the receiver answers with "unhandled kind" at runtime —
found only when the first message arrives; pairing a kind with an ad-hoc
payload class outside ``rmi/protocol.py`` hides it from the payload
round-trip tests that keep the wire picklable.  This rule closes the
loop program-wide: every member needs a dispatch entry, and every
payload constructed at a send site must be declared in the protocol
module.
"""
    example_bad = """
class MessageKind(enum.Enum):
    GOSSIP = "GOSSIP"     # added ...
# ... but no MessageKind.GOSSIP key in any dispatch table
"""
    example_good = """
self._handlers = {
    ...,
    MessageKind.GOSSIP: self._on_gossip,
}
"""

    # -- pass 1: collect ----------------------------------------------------

    def collect(self, module: ModuleContext, facts: ProgramFacts) -> None:
        members: dict[str, tuple[str, int]] = facts.setdefault("kinds:members", {})
        handled: set[str] = facts.setdefault("kinds:handled", set())
        payload_classes: set[str] = facts.setdefault("kinds:payload_classes", set())
        send_payloads: list[tuple[str, str, str, int]] = facts.setdefault(
            "kinds:send_payloads", [])

        for node in ast.walk(module.tree):
            # The enum itself.
            if isinstance(node, ast.ClassDef) and node.name == "MessageKind":
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                            and isinstance(stmt.targets[0], ast.Name):
                        members[stmt.targets[0].id] = (module.path, stmt.lineno)
            # Dispatch tables: any dict literal keyed by MessageKind.X.
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    kind = _kind_member(key)
                    if kind is not None:
                        handled.add(kind)
            # Payload vocabulary.
            if isinstance(node, ast.ClassDef) \
                    and module.path.endswith(PROTOCOL_MODULES):
                payload_classes.add(node.name)
            # Send sites: call(..., MessageKind.X, SomePayload(...), ...).
            if isinstance(node, ast.Call):
                kind = None
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    kind = kind or _kind_member(arg)
                if kind is None:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    ctor = _payload_ctor(arg)
                    if ctor is not None:
                        send_payloads.append(
                            (kind, ctor, module.path, node.lineno))

    # -- pass 2: judge ------------------------------------------------------

    def check_program(self, facts: ProgramFacts) -> Iterable[Finding]:
        findings: list[Finding] = []
        members: dict[str, tuple[str, int]] = facts.get("kinds:members", {})
        handled: set[str] = facts.get("kinds:handled", set())
        payload_classes: set[str] = facts.get("kinds:payload_classes", set())

        for member, (path, lineno) in sorted(members.items()):
            if member in DISPATCH_EXEMPT or member in handled:
                continue
            findings.append(Finding(
                rule=self.id,
                path=path,
                line=lineno,
                symbol=member,
                message=(
                    f"MessageKind.{member} has no dispatch handler anywhere "
                    f"(no `MessageKind.{member}: handler` entry in any "
                    f"dispatch table) — a peer sending it gets a runtime "
                    f"'unhandled kind' error; wire it into the node "
                    f"dispatcher or retire the member"
                ),
            ))

        seen: set[tuple[str, str]] = set()
        for kind, ctor, path, lineno in facts.get("kinds:send_payloads", []):
            if kind in PAYLOAD_EXEMPT or ctor in payload_classes:
                continue
            if (kind, ctor) in seen:
                continue
            seen.add((kind, ctor))
            findings.append(Finding(
                rule=self.id,
                path=path,
                line=lineno,
                symbol=f"{kind}:{ctor}",
                message=(
                    f"MessageKind.{kind} is sent with payload `{ctor}(...)`, "
                    f"which is not declared in the protocol module "
                    f"(rmi/protocol.py) — ad-hoc payloads escape the wire "
                    f"round-trip tests; move the dataclass there"
                ),
            ))
        return findings


def _kind_member(node: ast.AST | None) -> str | None:
    if node is None:
        return None
    chain = attr_chain(node)
    if chain.startswith("MessageKind.") and chain.count(".") == 1:
        return chain.split(".", 1)[1]
    return None


def _payload_ctor(node: ast.AST) -> str | None:
    """CamelCase constructor call used as a payload argument."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    if name in _NOT_PAYLOADS:
        return None
    return name if name[:1].isupper() else None
