"""MAGE007 — shared-container mutations must stay under their owning lock."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from magelint.findings import Finding
from magelint.rules.base import (
    ModuleContext, ProgramFacts, Rule, attr_chain, lock_factory_called,
    terminal_name,
)

#: Method calls that mutate a container in place.
MUTATOR_METHODS = frozenset({
    "setdefault", "pop", "popitem", "update", "clear", "append",
    "appendleft", "extend", "remove", "add", "discard", "move_to_end",
    "insert",
})

#: Methods assumed to run with the owning lock already held, by the
#: codebase's own naming convention (``ReplyCache._put_locked`` et al.).
LOCKED_SUFFIX = "_locked"

#: Methods that run before the object is shared: no other thread can
#: hold a reference yet, so unguarded writes there are constructor fill.
SETUP_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class _MutationSite:
    attr: str
    method: str
    path: str
    line: int
    lock: str | None   # lock attr held at the site, None when unguarded


@dataclass
class _ClassFacts:
    qualname: str              # "path::ClassName"
    lock_attrs: set[str] = field(default_factory=set)
    mutations: list[_MutationSite] = field(default_factory=list)


class SharedMutationRule(Rule):
    id = "MAGE007"
    title = "shared registry/address-book/cache mutated outside its owning lock"
    rationale = """
The stack's hot shared state — the registry's forwarding table, the
transport's address book, the reply cache — is a plain dict guarded by
convention: every class pairs the container with a ``threading.Lock``
and (almost) always mutates under it.  "Almost" is the bug class: one
forgotten ``with self._lock`` and a concurrent reader sees a dict
mid-rehash, or a check-then-act interleaves and a re-joined peer's
fresh endpoint is overwritten by a stale one.  The rule learns each
class's discipline from its own code — an attribute mutated at least
once inside ``with self.<lock>`` is *owned* by that lock — then flags
every mutation of the same attribute outside it.  Methods named
``*_locked`` are trusted to be called with the lock held (the
codebase's existing convention), and constructor fill in ``__init__``
is exempt because the object is not yet shared.
"""
    example_bad = """
class AddressBook:
    def connect(self, node_id, endpoint):
        with self._lock:
            self._endpoints[node_id] = endpoint
    def forget(self, node_id):
        self._endpoints.pop(node_id, None)   # same dict, no lock
"""
    example_good = """
    def forget(self, node_id):
        with self._lock:
            self._endpoints.pop(node_id, None)
"""

    # -- pass 1: collect per-class facts ------------------------------------

    def collect(self, module: ModuleContext, facts: ProgramFacts) -> None:
        classes: list[_ClassFacts] = facts.setdefault("shared:classes", [])
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                classes.append(_collect_class(module, node))

    # -- pass 2: judge ------------------------------------------------------

    def check_program(self, facts: ProgramFacts) -> Iterable[Finding]:
        findings: list[Finding] = []
        for cls in facts.get("shared:classes", []):
            owner: dict[str, str] = {}
            for site in cls.mutations:
                if site.lock is not None and site.attr not in owner:
                    owner[site.attr] = site.lock
            for site in cls.mutations:
                lock = owner.get(site.attr)
                if lock is None:          # attribute never lock-guarded
                    continue
                if site.lock is not None:
                    continue              # guarded (any of the class's locks)
                if site.method in SETUP_METHODS \
                        or site.method.endswith(LOCKED_SUFFIX):
                    continue
                path, class_name = cls.qualname.split("::", 1)
                findings.append(Finding(
                    rule=self.id,
                    path=path,
                    line=site.line,
                    symbol=f"{class_name}.{site.method}:{site.attr}",
                    message=(
                        f"`self.{site.attr}` is mutated under "
                        f"`self.{lock}` elsewhere in {class_name}, but "
                        f"this site mutates it with no lock held — wrap it "
                        f"in `with self.{lock}:`, or rename the method "
                        f"`*{LOCKED_SUFFIX}` if callers already hold it"
                    ),
                ))
        return findings


def _collect_class(module: ModuleContext, node: ast.ClassDef) -> _ClassFacts:
    cls = _ClassFacts(qualname=f"{module.path}::{node.name}")
    methods = [stmt for stmt in node.body
               if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))]
    # Lock attributes: self.X = threading.Lock()/RLock()/Condition().
    for method in methods:
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Assign) and lock_factory_called(stmt.value):
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr:
                        cls.lock_attrs.add(attr)
    for method in methods:
        _collect_mutations(module, cls, method)
    return cls


def _collect_mutations(module: ModuleContext, cls: _ClassFacts,
                       method: ast.AST) -> None:
    def visit(node: ast.AST, held: str | None) -> None:
        now_held = held
        if isinstance(node, ast.With):
            for item in node.items:
                ctx = attr_chain(item.context_expr)
                if ctx.startswith("self."):
                    attr = ctx[len("self."):]
                    if attr in cls.lock_attrs:
                        now_held = attr
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not method:
            return  # nested defs execute later, on unknown threads
        attr = _mutated_attr(node)
        if attr is not None:
            cls.mutations.append(_MutationSite(
                attr=attr,
                method=getattr(method, "name", "<module>"),
                path=module.path,
                line=node.lineno,
                lock=now_held,
            ))
        for child in ast.iter_child_nodes(node):
            visit(child, now_held)

    visit(method, None)


def _mutated_attr(node: ast.AST) -> str | None:
    """The ``self.X`` container this statement mutates, if any."""
    # self.X[k] = v  /  self.X[k] += v
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr:
                    return attr
    # del self.X[k]
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr:
                    return attr
    # self.X.pop(...) / .update(...) / .append(...) ...
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and terminal_name(node.func) in MUTATOR_METHODS:
        attr = _self_attr(node.func.value)
        if attr:
            return attr
    return None


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"`` (one level only; ``self.a.b`` returns None)."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None
