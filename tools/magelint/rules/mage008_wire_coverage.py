"""MAGE008 — every protocol payload must be placed in the wire codec."""

from __future__ import annotations

import ast
from typing import Iterable

from magelint.findings import Finding
from magelint.rules.base import ModuleContext, ProgramFacts, Rule, terminal_name

#: Where the payload vocabulary lives.
PROTOCOL_MODULE = "rmi/protocol.py"
#: Payload classes declared outside the protocol module (the reply body).
MESSAGE_MODULE = "net/message.py"
EXTRA_PAYLOADS = frozenset({"ReplyPayload"})
#: Where every payload must be accounted for.
CODEC_MODULE = "net/wirecodec.py"
REGISTRY_NAMES = frozenset({"REGISTERED_PAYLOADS", "PICKLE_FALLBACK"})


class WireCoverageRule(Rule):
    id = "MAGE008"
    title = "Protocol payload class missing from the wire-codec registry"
    rationale = """
The binary wire codec compiles a per-class encoder/decoder for every
entry in ``net/wirecodec.py``'s ``REGISTERED_PAYLOADS`` tuple; anything
else rides the generic pickle fallback.  That fallback is *silent*: a
new payload dataclass added to ``rmi/protocol.py`` but not registered
still round-trips, so nothing fails — it just quietly pays the pickle
tax on every hop and skips the cross-version schema digest that keeps
mixed clusters honest.  This rule closes the loop program-wide: every
payload dataclass in the protocol module (plus ``ReplyPayload``) must
appear in ``REGISTERED_PAYLOADS`` or be *deliberately* parked in
``PICKLE_FALLBACK``, where the choice is visible and reviewable.
"""
    example_bad = """
# rmi/protocol.py
@dataclass(frozen=True)
class GossipDigest:          # new payload ...
    entries: "tuple[str, ...]"
# ... but net/wirecodec.py's REGISTERED_PAYLOADS never mentions it
"""
    example_good = """
# net/wirecodec.py
REGISTERED_PAYLOADS = (
    ...,
    protocol.GossipDigest,   # appended (codes are append-only)
)
"""

    # -- pass 1: collect ----------------------------------------------------

    def collect(self, module: ModuleContext, facts: ProgramFacts) -> None:
        payloads: dict[str, tuple[str, int]] = facts.setdefault(
            "wire:payloads", {})
        covered: set[str] = facts.setdefault("wire:covered", set())

        if module.path.endswith(PROTOCOL_MODULE):
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                    payloads[node.name] = (module.path, node.lineno)
        elif module.path.endswith(MESSAGE_MODULE):
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) \
                        and node.name in EXTRA_PAYLOADS:
                    payloads[node.name] = (module.path, node.lineno)
        elif module.path.endswith(CODEC_MODULE):
            facts.data["wire:codec_seen"] = True
            for node in ast.walk(module.tree):
                covered.update(_registry_entries(node))

    # -- pass 2: judge ------------------------------------------------------

    def check_program(self, facts: ProgramFacts) -> Iterable[Finding]:
        if not facts.get("wire:codec_seen"):
            # No wire codec in the linted set (e.g. the magelint
            # self-check): coverage is someone else's program.
            return ()
        covered: set[str] = facts.get("wire:covered", set())
        payloads: dict[str, tuple[str, int]] = facts.get("wire:payloads", {})
        findings: list[Finding] = []
        for name, (path, lineno) in sorted(payloads.items()):
            if name in covered:
                continue
            findings.append(Finding(
                rule=self.id,
                path=path,
                line=lineno,
                symbol=name,
                message=(
                    f"payload class `{name}` is not in the wire codec's "
                    f"REGISTERED_PAYLOADS (or PICKLE_FALLBACK) in "
                    f"{CODEC_MODULE} — it silently rides the pickle "
                    f"fallback on every hop; append it to "
                    f"REGISTERED_PAYLOADS (codes are append-only) or park "
                    f"it in PICKLE_FALLBACK with a written reason"
                ),
            ))
        return findings


def _is_dataclass(node: ast.ClassDef) -> bool:
    return any(
        terminal_name(dec.func if isinstance(dec, ast.Call) else dec)
        == "dataclass"
        for dec in node.decorator_list
    )


def _registry_entries(node: ast.AST) -> Iterable[str]:
    """Class names inside ``REGISTERED_PAYLOADS = (...)`` style tuples."""
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target, value = node.targets[0], node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        target, value = node.target, node.value
    else:
        return
    if not (isinstance(target, ast.Name) and target.id in REGISTRY_NAMES):
        return
    if not isinstance(value, (ast.Tuple, ast.List)):
        return
    for elt in value.elts:
        name = terminal_name(elt)
        if name:
            yield name
