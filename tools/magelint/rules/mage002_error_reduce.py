"""MAGE002 — wire-crossing error classes must pickle round-trip."""

from __future__ import annotations

import ast
from typing import Iterable

from magelint.findings import Finding
from magelint.rules.base import ModuleContext, Rule, terminal_name

#: Base-name suffixes that mark a class as part of an exception hierarchy.
_ERRORISH = ("Error", "Exception")


class ErrorReduceRule(Rule):
    id = "MAGE002"
    title = "multi-arg exception class without a `__reduce__` override"
    rationale = """
Handler exceptions are marshalled into the reply and re-raised at the
caller, so every error class must survive a pickle round trip.  The
default ``Exception`` reduction replays ``self.args`` — the *formatted
message* — into ``__init__``, which explodes the moment ``__init__``
demands a second positional argument.  In PR 3 that explosion happened
inside the TCP reader thread while unpickling a reply frame, and took
the shared pipelined connection down with it: one bad error class, every
in-flight call on the channel dead.  A class whose ``__init__`` takes
anything beyond a single message must override ``__reduce__`` to replay
its actual constructor arguments.
"""
    example_bad = """
class LockMovedError(LockError):
    def __init__(self, name, new_location):
        super().__init__(f"{name!r} moved to {new_location!r}")
"""
    example_good = """
class LockMovedError(LockError):
    def __init__(self, name, new_location):
        super().__init__(f"{name!r} moved to {new_location!r}")
        self.name, self.new_location = name, new_location

    def __reduce__(self):
        return (type(self), (self.name, self.new_location))
"""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_exception_class(node):
                continue
            init = _method(node, "__init__")
            if init is None or _method(node, "__reduce__") is not None:
                continue
            problem = _init_breaks_default_reduce(init)
            if problem:
                findings.append(Finding(
                    rule=self.id,
                    path=module.path,
                    line=node.lineno,
                    symbol=node.name,
                    message=(
                        f"exception class {node.name!r} {problem} but defines "
                        f"no __reduce__; the default reduction replays the "
                        f"formatted message into __init__ and dies while "
                        f"unpickling the reply — add "
                        f"`def __reduce__(self): return (type(self), (...))`"
                    ),
                ))
        return findings


def _is_exception_class(node: ast.ClassDef) -> bool:
    if node.name.endswith(_ERRORISH):
        return True
    return any(terminal_name(base).endswith(_ERRORISH) for base in node.bases)


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _init_breaks_default_reduce(init: ast.FunctionDef) -> str | None:
    """Why this __init__ is incompatible with the default reduction.

    Returns None when safe.  Safe means: at most one parameter beyond
    ``self``, and that parameter (if any) is forwarded verbatim to
    ``super().__init__`` — so ``self.args`` round-trips by construction.
    """
    params = [a.arg for a in init.args.args[1:]]  # drop self
    params += [a.arg for a in init.args.kwonlyargs]
    if init.args.vararg is not None or init.args.kwarg is not None:
        # *args/**kwargs initializers forward to super untouched in
        # practice; the default reduction handles them.
        return None
    if len(params) >= 2:
        return f"takes {len(params)} constructor arguments"
    if not params:
        return None
    # Single parameter: safe iff super().__init__ receives it unmodified.
    sole = params[0]
    for node in ast.walk(init):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "__init__"
                and isinstance(func.value, ast.Call)
                and terminal_name(func.value.func) == "super"):
            args = node.args
            if len(args) == 1 and isinstance(args[0], ast.Name) \
                    and args[0].id == sole and not node.keywords:
                return None
            return (f"formats its sole argument {sole!r} before passing it "
                    f"to super().__init__")
    # No super().__init__ call at all: Exception.__init__ never ran with
    # the raw argument, so self.args will not rebuild this instance.
    return f"never forwards {sole!r} to super().__init__"
