"""The two-pass lint engine.

Pass 1 parses every file once and runs each rule's per-module check,
while whole-program rules record facts.  Pass 2 runs the program rules
over the accumulated facts.  Suppression (inline disables, then the
baseline) filters the merged findings; what survives is the run's
verdict.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from magelint.findings import Finding, LintStats
from magelint.rules import ALL_RULES, ModuleContext, ProgramFacts, Rule
from magelint.suppress import inline_disables, load_baseline


@dataclass
class LintRun:
    """The outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    stats: LintStats = field(default_factory=LintStats)
    parse_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into the sorted list of .py files to lint."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def lint_paths(paths: list[Path], root: Path | None = None,
               baseline: Path | None = None,
               rules: tuple[Rule, ...] = ALL_RULES) -> LintRun:
    """Lint ``paths`` (files or directories), returning the filtered run.

    ``root`` anchors the repo-relative paths findings and baselines use;
    it defaults to the current working directory.
    """
    root = (root or Path.cwd()).resolve()
    run = LintRun()
    facts = ProgramFacts()
    raw: list[Finding] = []
    disables_by_path: dict[str, dict[int, set[str]]] = {}

    for file_path in collect_files(paths):
        rel = _relpath(file_path, root)
        try:
            source = file_path.read_text()
            tree = ast.parse(source, filename=str(file_path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            run.parse_errors.append(f"{rel}: {exc}")
            continue
        module = ModuleContext(path=rel, tree=tree,
                               source_lines=source.splitlines())
        disables_by_path[rel] = inline_disables(module.source_lines)
        run.stats.files += 1
        for rule in rules:
            raw.extend(rule.check_module(module))
            rule.collect(module, facts)

    for rule in rules:
        raw.extend(rule.check_program(facts))

    baseline_entries = load_baseline(baseline) if baseline else {}
    matched_keys: set[str] = set()

    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
        disabled = disables_by_path.get(finding.path, {})
        if finding.rule in disabled.get(finding.line, set()):
            run.stats.suppressed_inline += 1
            continue
        if finding.key() in baseline_entries:
            matched_keys.add(finding.key())
            run.stats.suppressed_baseline += 1
            continue
        run.findings.append(finding)

    run.stats.findings = len(run.findings)
    run.stats.stale_baseline = sorted(
        set(baseline_entries) - matched_keys)
    return run


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()
