"""Command-line front end: ``python -m magelint``.

Exit codes: 0 clean, 1 findings (or parse errors), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from magelint.engine import lint_paths
from magelint.rules import RULES_BY_ID
from magelint.suppress import BaselineError, format_baseline


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="magelint",
        description=("Protocol-aware static analyzer for the MAGE codebase: "
                     "concurrency, deadline, and wire invariants distilled "
                     "from the repo's own bug history."),
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (e.g. src/)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed suppression baseline to honour")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        metavar="PATH",
                        help="write surviving findings to PATH as a baseline "
                             "(reasons stubbed as TODO) and exit 0")
    parser.add_argument("--explain", metavar="MAGExxx", default=None,
                        help="print a rule's documentation and examples")
    parser.add_argument("--fix-suggestions", action="store_true",
                        help="append a unified-diff rewrite under each "
                             "finding that has a mechanical fix")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        rule = RULES_BY_ID.get(args.explain.upper())
        if rule is None:
            known = ", ".join(sorted(RULES_BY_ID))
            print(f"unknown rule {args.explain!r}; known rules: {known}",
                  file=sys.stderr)
            return 2
        print(rule.explain(), end="")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("magelint: error: no paths given (try: python -m magelint src/)",
              file=sys.stderr)
        return 2

    try:
        run = lint_paths(args.paths, baseline=args.baseline)
    except BaselineError as exc:
        print(f"magelint: bad baseline: {exc}", file=sys.stderr)
        return 2

    for error in run.parse_errors:
        print(f"PARSE ERROR {error}")

    if args.write_baseline is not None:
        args.write_baseline.write_text(format_baseline(run.findings))
        print(f"wrote {len(run.findings)} baseline entries to "
              f"{args.write_baseline} (fill in the TODO reasons)")
        return 0

    for finding in run.findings:
        print(finding.render())
        if args.fix_suggestions and finding.suggestion:
            for line in finding.suggestion.splitlines():
                print(f"    | {line}")

    if not args.quiet:
        stats = run.stats
        summary = (f"magelint: {stats.files} files, {stats.findings} "
                   f"finding(s), {stats.suppressed_inline} inline-disabled, "
                   f"{stats.suppressed_baseline} baselined")
        print(summary, file=sys.stderr)
        for key in stats.stale_baseline:
            print(f"magelint: stale baseline entry (no longer fires): {key}",
                  file=sys.stderr)

    return 0 if run.ok else 1
