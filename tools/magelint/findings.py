"""The unit of lint output: a :class:`Finding`.

A finding is anchored two ways: by ``(path, line)`` for human output, and
by ``(rule, path, symbol)`` for the suppression baseline.  Baselining on a
*symbol* (the enum member, class, or function the finding is about) instead
of a line number keeps the baseline stable across unrelated edits to the
same file — the property that lets a baseline entry survive until someone
actually fixes the thing it names.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str          # "MAGE003"
    path: str          # repo-relative posix path, e.g. "src/repro/net/tcpnet.py"
    line: int          # 1-based line of the offending node
    message: str       # human-readable description of the violation
    symbol: str = ""   # stable anchor: "Class.method", enum member, ...
    suggestion: str = ""  # optional concrete rewrite (unified diff or prose)

    def key(self) -> str:
        """The baseline identity of this finding (line-independent)."""
        return f"{self.rule}|{self.path}|{self.symbol or self.line}"

    def render(self) -> str:
        anchor = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.rule}{anchor} {self.message}"


@dataclass
class LintStats:
    """Counters the CLI summary line reports."""

    files: int = 0
    findings: int = 0
    suppressed_inline: int = 0
    suppressed_baseline: int = 0
    stale_baseline: list[str] = field(default_factory=list)
