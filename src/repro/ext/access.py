"""Access control (§7 future work).

"Currently, MAGE trusts its constituent servers.  We are exploring a
version of MAGE that runs on and scales to WANs … fragmented into
competing and disjoint administrative domains, each with different
services, resources and security needs … We also are working on adding
access control and resource allocation models to MAGE."

This module implements that sketched model: namespaces belong to
**administrative domains**; a :class:`AccessPolicy` decides, per domain
and principal, which of the mobility verbs are allowed:

* ``invoke`` — run methods on components hosted here,
* ``move_in`` — accept migrating objects,
* ``move_out`` — let hosted objects leave,
* ``load_class`` — accept foreign class definitions.

A :class:`GuardedNamespace` wraps a namespace's dispatcher with the
policy.  Denials surface as :class:`~repro.errors.AccessDeniedError` at
the caller, exactly like any other remote protocol error.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import AccessDeniedError
from repro.net.message import Message, MessageKind
from repro.runtime.namespace import Namespace

#: The mobility verbs a policy can grant or deny.
VERBS = ("invoke", "move_in", "move_out", "load_class")

#: Wildcard principal/domain.
ANY = "*"


@dataclass
class AccessRule:
    """Grant of some verbs to a principal (a node id or domain name)."""

    principal: str
    verbs: frozenset[str]

    def __post_init__(self) -> None:
        unknown = set(self.verbs) - set(VERBS)
        if unknown:
            raise ValueError(f"unknown verbs: {sorted(unknown)} (know {VERBS})")


@dataclass
class AccessPolicy:
    """Per-namespace rule set with domain membership.

    Default posture is **trusting** (the paper's current MAGE): every verb
    allowed for everyone until :meth:`restrict` flips the default to deny,
    after which only explicit rules (and same-domain peers, if
    ``trust_domain``) pass.
    """

    domain: str = "default"
    trust_domain: bool = True
    _default_allow: bool = True
    _rules: list[AccessRule] = field(default_factory=list)
    _domains: dict[str, str] = field(default_factory=dict)  # node -> domain

    def restrict(self) -> "AccessPolicy":
        """Switch to deny-by-default (returns self for chaining)."""
        self._default_allow = False
        return self

    def allow(self, principal: str, *verbs: str) -> "AccessPolicy":
        """Grant ``verbs`` (or all verbs, when none given) to ``principal``."""
        grant = frozenset(verbs) if verbs else frozenset(VERBS)
        self._rules.append(AccessRule(principal=principal, verbs=grant))
        return self

    def join_domain(self, node_id: str, domain: str) -> "AccessPolicy":
        """Record that ``node_id`` belongs to ``domain``."""
        self._domains[node_id] = domain
        return self

    def domain_of(self, node_id: str) -> str:
        """The administrative domain ``node_id`` belongs to."""
        return self._domains.get(node_id, "default")

    def permits(self, principal: str, verb: str) -> bool:
        """Does ``principal`` (a node id) get ``verb`` here?"""
        if verb not in VERBS:
            raise ValueError(f"unknown verb {verb!r}")
        if self._default_allow:
            return True
        if self.trust_domain and self.domain_of(principal) == self.domain:
            return True
        for rule in self._rules:
            if rule.principal in (ANY, principal) and verb in rule.verbs:
                return True
            # Domain-name rules match every node of that domain.
            if rule.principal == self.domain_of(principal) and verb in rule.verbs:
                return True
        return False


#: Message kinds gated by each verb.
_VERB_FOR_KIND = {
    MessageKind.INVOKE: "invoke",
    MessageKind.OBJECT_TRANSFER: "move_in",
    MessageKind.AGENT_HOP: "move_in",
    MessageKind.INSTANTIATE: "move_in",
    MessageKind.MOVE_REQUEST: "move_out",
    MessageKind.AGENT_LAUNCH: "move_out",
    MessageKind.CLASS_TRANSFER: "load_class",
}


class GuardedNamespace:
    """Wraps a namespace's inbound dispatcher with an access policy.

    Local traffic (``src == dst``) is never gated — a namespace trusts
    itself; everything else consults the policy before the real handler
    runs.
    """

    def __init__(self, namespace: Namespace, policy: AccessPolicy) -> None:
        self.ns = namespace
        self.policy = policy
        self._denials = 0
        self._lock = threading.Lock()
        self._inner_handle = namespace.external.handle
        namespace.transport.register(namespace.node_id, self.handle)

    @property
    def denials(self) -> int:
        with self._lock:
            return self._denials

    def handle(self, message: Message) -> Any:
        """Gate one inbound message, then delegate to the real dispatcher."""
        verb = _VERB_FOR_KIND.get(message.kind)
        if verb is not None and not message.is_local:
            if not self.policy.permits(message.src, verb):
                with self._lock:
                    self._denials += 1
                raise AccessDeniedError(
                    principal=message.src, action=verb,
                    resource=f"{self.ns.node_id}:{message.kind.value}",
                )
        return self._inner_handle(message)


def guard(namespace: Namespace, policy: AccessPolicy) -> GuardedNamespace:
    """Install ``policy`` on ``namespace``'s inbound path."""
    return GuardedNamespace(namespace, policy)
