"""Resource allocation (§7 future work).

The second model the conclusion promises: namespaces advertise capacity,
migrations request admission, and over-budget moves are refused — the
mechanism a WAN-scale MAGE needs so "resources appear and disappear"
without hosts being overrun.

A :class:`ResourceBudget` tracks named capacities (slots, memory units,
whatever the deployment measures).  A :class:`MeteredNamespace` wraps a
namespace's dispatcher: inbound object transfers, instantiations, and
agent hops must fit the budget or fail with
:class:`~repro.errors.ResourceExhaustedError`; departures and
unregistrations release their share.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import ResourceExhaustedError
from repro.net.message import Message, MessageKind
from repro.runtime.namespace import Namespace

#: Default resource dimension: how many mobile objects a node will host.
OBJECT_SLOTS = "object_slots"


class ResourceBudget:
    """Named capacities with admission control."""

    def __init__(self, node_id: str, capacities: dict[str, float] | None = None) -> None:
        self.node_id = node_id
        self._capacity: dict[str, float] = dict(capacities or {})
        self._used: dict[str, float] = {name: 0.0 for name in self._capacity}
        self._lock = threading.Lock()

    def set_capacity(self, resource: str, capacity: float) -> None:
        """Declare (or change) the capacity of ``resource``."""
        if capacity < 0:
            raise ValueError(f"capacity cannot be negative: {capacity}")
        with self._lock:
            self._capacity[resource] = float(capacity)
            self._used.setdefault(resource, 0.0)

    def capacity(self, resource: str) -> float:
        """Declared capacity (unbounded when never declared)."""
        with self._lock:
            return self._capacity.get(resource, float("inf"))

    def used(self, resource: str) -> float:
        """Currently admitted amount."""
        with self._lock:
            return self._used.get(resource, 0.0)

    def available(self, resource: str) -> float:
        """Remaining headroom."""
        with self._lock:
            cap = self._capacity.get(resource, float("inf"))
            return cap - self._used.get(resource, 0.0)

    def admit(self, resource: str, amount: float = 1.0) -> None:
        """Take ``amount`` of ``resource`` or raise (atomic)."""
        with self._lock:
            cap = self._capacity.get(resource, float("inf"))
            used = self._used.get(resource, 0.0)
            if used + amount > cap:
                raise ResourceExhaustedError(
                    node_id=self.node_id, resource=resource,
                    requested=amount, available=cap - used,
                )
            self._used[resource] = used + amount

    def release(self, resource: str, amount: float = 1.0) -> None:
        """Give back ``amount`` (floored at zero; releases never fail)."""
        with self._lock:
            used = self._used.get(resource, 0.0)
            self._used[resource] = max(0.0, used - amount)


#: Inbound kinds that consume an object slot on success.
_ADMITTING_KINDS = frozenset({
    MessageKind.OBJECT_TRANSFER,
    MessageKind.INSTANTIATE,
    MessageKind.AGENT_HOP,
})

#: Kinds whose success means an object left this namespace.
_RELEASING_KINDS = frozenset({MessageKind.MOVE_REQUEST})


class MeteredNamespace:
    """Wraps a namespace's inbound dispatcher with admission control.

    Occupancy accounting: an arrival (transfer / instantiate / agent hop)
    that the inner handler accepts consumes one ``object_slots`` unit; a
    completed MOVE_REQUEST (the object left) releases one.  Agent hops
    that immediately depart again release their slot through the same
    accounting because the hop-out path raises MOVE_REQUEST-free — so the
    wrapper also re-syncs to the store's true census after every gated
    message.
    """

    def __init__(self, namespace: Namespace, budget: ResourceBudget) -> None:
        self.ns = namespace
        self.budget = budget
        self.rejections = 0
        self._lock = threading.Lock()
        self._inner_handle = namespace.external.handle
        namespace.transport.register(namespace.node_id, self.handle)

    def handle(self, message: Message) -> Any:
        """Meter one inbound message, then delegate to the real dispatcher."""
        if message.kind in _ADMITTING_KINDS and not message.is_local:
            try:
                self.budget.admit(OBJECT_SLOTS, 1.0)
            except ResourceExhaustedError:
                with self._lock:
                    self.rejections += 1
                raise
            try:
                result = self._inner_handle(message)
            except BaseException:
                self.budget.release(OBJECT_SLOTS, 1.0)
                raise
            self._resync()
            return result
        result = self._inner_handle(message)
        if message.kind in _RELEASING_KINDS:
            self.budget.release(OBJECT_SLOTS, 1.0)
        return result

    def _resync(self) -> None:
        """Clamp usage to the store's actual census (agents may hop away
        inside the handler, freeing their slot immediately)."""
        actual = float(len(self.ns.store))
        used = self.budget.used(OBJECT_SLOTS)
        if used > actual:
            self.budget.release(OBJECT_SLOTS, used - actual)


def meter(namespace: Namespace, capacities: dict[str, float]) -> MeteredNamespace:
    """Install admission control on ``namespace`` with ``capacities``."""
    budget = ResourceBudget(namespace.node_id, capacities)
    return MeteredNamespace(namespace, budget)
