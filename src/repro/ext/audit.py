"""Audit trail: a record of every mobility decision a runtime makes.

The §7 WAN vision needs accountability across "competing and disjoint
administrative domains": which attribute moved what, where, and why.  The
core already decides (the coercion engine) and records the last outcome on
each attribute; the auditor turns that into a durable, queryable trail by
observing binds.

Usage::

    auditor = Auditor()
    rev = auditor.watch(REV("GeoDataFilterImpl", "geoData", "sensor1",
                            runtime=lab))
    rev.bind()
    auditor.entries()   # → [AuditEntry(model="REV", action=..., ...)]
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.attribute import MobilityAttribute


@dataclass(frozen=True)
class AuditEntry:
    """One audited bind."""

    seq: int
    issuer: str            # namespace the bind was issued from
    attribute: str         # attribute class name
    model: str             # canonical model
    name: str              # component name
    placement: str         # where the component was (coercion column)
    action: str            # what Table 2 said to do
    effective_model: str   # whose semantics actually ran
    cloc: str | None       # component location after the bind
    target: str | None
    error: str | None      # exception type when the bind failed

    def line(self) -> str:
        """One-line rendering for :meth:`Auditor.report`."""
        status = self.error if self.error else self.action
        return (
            f"[{self.seq}] {self.issuer}: {self.attribute}({self.name!r}) "
            f"{self.model} @ {self.placement} -> {status}; "
            f"component at {self.cloc!r}"
        )


class _WatchedAttribute:
    """Transparent proxy recording every bind of the wrapped attribute."""

    def __init__(self, inner: MobilityAttribute, auditor: "Auditor") -> None:
        self._inner = inner
        self._auditor = auditor

    def bind(self, name: str | None = None):
        inner = self._inner
        error: str | None = None
        try:
            return inner.bind(name)
        except Exception as exc:
            error = type(exc).__name__
            raise
        finally:
            self._auditor._record(inner, error)

    def locked(self, timeout_ms: float | None = None):
        return self._inner.locked(timeout_ms)

    def __getattr__(self, attribute_name: str):
        return getattr(self._inner, attribute_name)


class Auditor:
    """Collects :class:`AuditEntry` records from watched attributes."""

    def __init__(self) -> None:
        self._entries: list[AuditEntry] = []
        self._lock = threading.Lock()
        self._seq = 0

    def watch(self, attribute: MobilityAttribute) -> _WatchedAttribute:
        """Wrap ``attribute`` so its binds land in this trail."""
        return _WatchedAttribute(attribute, self)

    def _record(self, attribute: MobilityAttribute, error: str | None) -> None:
        outcome = attribute.last_outcome
        with self._lock:
            self._seq += 1
            self._entries.append(AuditEntry(
                seq=self._seq,
                issuer=attribute.runtime.node_id,
                attribute=type(attribute).__name__,
                model=attribute.MODEL,
                name=attribute.name,
                placement=outcome.placement.value if outcome else "?",
                action=outcome.action.value if outcome else "?",
                effective_model=outcome.effective_model if outcome
                else attribute.MODEL,
                cloc=attribute.cloc,
                target=attribute.target,
                error=error,
            ))

    def entries(self) -> list[AuditEntry]:
        """Snapshot of the trail, in bind order."""
        with self._lock:
            return list(self._entries)

    def failures(self) -> list[AuditEntry]:
        """Binds that raised."""
        return [e for e in self.entries() if e.error is not None]

    def coercions(self) -> list[AuditEntry]:
        """Binds whose effective model differed from the declared one."""
        return [
            e for e in self.entries()
            if e.error is None and e.effective_model != e.model
        ]

    def report(self) -> str:
        """The trail rendered as one line per bind."""
        return "\n".join(entry.line() for entry in self.entries())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
