"""§7 future-work extensions: access control and resource allocation.

"We also are working on adding access control and resource allocation
models to MAGE" — these are those models, implemented as wrappers around a
namespace's inbound dispatcher so the core runtime stays exactly the
paper's trusting design.
"""

from repro.ext.access import ANY, AccessPolicy, AccessRule, GuardedNamespace, VERBS, guard
from repro.ext.audit import AuditEntry, Auditor
from repro.ext.jini import JiniClient, JiniLookupService, JiniProvider, relocate
from repro.ext.resources import (
    OBJECT_SLOTS,
    MeteredNamespace,
    ResourceBudget,
    meter,
)

__all__ = [
    "ANY",
    "AccessPolicy",
    "AccessRule",
    "AuditEntry",
    "Auditor",
    "GuardedNamespace",
    "JiniClient",
    "JiniLookupService",
    "JiniProvider",
    "MeteredNamespace",
    "OBJECT_SLOTS",
    "ResourceBudget",
    "VERBS",
    "guard",
    "meter",
    "relocate",
]
