"""A Jini-style baseline: interface-level service lookup (§3.3's contrast).

"MAGE migrates computations, while Java's Jini migrates code.  Thus, CLE
differs from Jini in that it can refer to the same component across
invocations and namespaces.  Jini refers to the same functionality or
interface, but must destroy and create new objects when moving that
functionality from one namespace to another."

To make that comparison executable, this module implements the minimum of
the Jini model the paper invokes:

* a **lookup service** where providers register *service types* (interface
  names), not named objects;
* clients that **discover by type** and download a stub to whichever
  provider currently advertises it;
* "moving" a service = the old provider **retires** its instance and a new
  provider **instantiates a fresh one** from the class — the state of the
  old instance is gone.

The CLE-versus-Jini tests then show the same relocation sequence keeping
state under MAGE and losing it under Jini.
"""

from __future__ import annotations

import threading

from repro.errors import NotBoundError
from repro.runtime.namespace import Namespace
from repro.util.ids import fresh_token


class JiniLookupService:
    """Type-indexed service directory (one per federation)."""

    def __init__(self) -> None:
        self._services: dict[str, tuple[str, str]] = {}  # type -> (node, name)
        self._lock = threading.Lock()

    def advertise(self, service_type: str, node_id: str, name: str) -> None:
        """Register the instance currently providing ``service_type``."""
        with self._lock:
            self._services[service_type] = (node_id, name)

    def withdraw(self, service_type: str) -> None:
        with self._lock:
            self._services.pop(service_type, None)

    def discover(self, service_type: str) -> tuple[str, str]:
        """Where ``service_type`` is currently provided; raises if nowhere."""
        with self._lock:
            entry = self._services.get(service_type)
        if entry is None:
            raise NotBoundError(service_type)
        return entry


class JiniProvider:
    """A namespace that can host instances of a registered service class."""

    def __init__(self, namespace: Namespace, lookup: JiniLookupService) -> None:
        self.ns = namespace
        self.lookup = lookup

    def offer(self, service_type: str, cls: type, *ctor_args) -> str:
        """Instantiate the service here and advertise it.

        Jini's relocation model: whoever offers next *creates a new
        object* — no state carries over from a previous provider.
        """
        self.ns.register_class(cls)
        instance_name = f"jini-{service_type}-{fresh_token('svc')}"
        self.ns.register(instance_name, cls(*ctor_args))
        self.lookup.advertise(service_type, self.ns.node_id, instance_name)
        return instance_name

    def retire(self, service_type: str, instance_name: str) -> None:
        """Withdraw and destroy the local instance (its state dies here)."""
        self.lookup.withdraw(service_type)
        if self.ns.store.contains(instance_name):
            self.ns.unregister(instance_name)


class JiniClient:
    """Discover-by-type client: downloads a stub per invocation epoch."""

    def __init__(self, namespace: Namespace, lookup: JiniLookupService) -> None:
        self.ns = namespace
        self.lookup = lookup

    def service(self, service_type: str):
        """A stub for whichever instance currently provides the type."""
        node_id, name = self.lookup.discover(service_type)
        return self.ns.stub(name, location=node_id)


def relocate(service_type: str, cls: type,
             old_provider: JiniProvider, old_instance: str,
             new_provider: JiniProvider, *ctor_args) -> str:
    """Move a Jini service between providers: destroy, then re-create.

    Returns the fresh instance's name.  This is the operation the paper
    contrasts with CLE — the interface survives, the object does not.
    """
    old_provider.retire(service_type, old_instance)
    return new_provider.offer(service_type, cls, *ctor_args)
