"""Factory semantics for REV and COD (§4.2).

"In Java, objects cannot exist without classes … MAGE maps its notion of
component to this pair" — and because attributes bind to classes *and*
objects, REV and COD each admit three semantics:

* ``TRADITIONAL`` — the model as classically defined: move the **class**
  to the target and instantiate a fresh object there on every bind
  (an object factory).
* ``OBJECT`` — move an **existing object** to the target (the §4.2
  extension MAGE adds because objects are mobile).
* ``SINGLE_USE`` — a traditional first bind that then *binds to the object
  it created*: subsequent binds move that object instead of instantiating
  new ones.
"""

from __future__ import annotations

import enum


class FactoryMode(enum.Enum):
    """Which of the §4.2 REV/COD semantics an attribute uses."""

    TRADITIONAL = "traditional"
    OBJECT = "object"
    SINGLE_USE = "single-use"
