"""``MobilityAttribute`` — the paper's core abstraction (§3, Figure 4).

"Mobility attributes are first class objects that bind to program
components.  A mobility attribute intercepts invocation requests on the
components to which it has been bound.  For a given network configuration,
mobility attributes describe where their component should execute.  If
necessary, the component moves before executing."

The Java abstract class of Figure 4 maps onto Python as follows:

===========================  ===============================================
Figure 4 (Java)              here
===========================  ===============================================
``target`` field             :attr:`MobilityAttribute.target`
``cloc`` field               :attr:`MobilityAttribute.cloc` (found in the
                             constructor, re-found on bind when shared)
``name`` field               :attr:`MobilityAttribute.name`
``find(String)``             :meth:`find`
``isShared(String)``         :meth:`is_shared`
``bind(String n)``           :meth:`bind` with the ``name=`` argument
``abstract Remote bind()``   :meth:`_bind` (subclass hook)
===========================  ===============================================

No casts are needed on the returned stub — "We must always cast bind
invocations because Java does not currently support genericity" does not
apply to Python.

Locking (§4.4) stays explicit, as in the paper's bracket, but
:meth:`locked` packages it::

    with attr.locked() as stub:
        stub.filter_data()
"""

from __future__ import annotations

import contextlib
import threading
from abc import ABC, abstractmethod
from typing import Iterator

from repro.core.context import current_runtime
from repro.core.coercion import Action, CoercionOutcome, Placement, classify, coerce, effective_model
from repro.core.triple import CANONICAL_TRIPLES, MobilityTriple
from repro.errors import ComponentNotFoundError, NoSuchObjectError
from repro.rmi.stub import Stub
from repro.runtime.namespace import Namespace


class MobilityAttribute(ABC):
    """Base class for every distribution policy (Figure 4's abstract class).

    Subclasses implement :meth:`_bind`, which realizes the model: decide
    whether/where the component moves, move it, and return a stub for the
    computation target.  The concrete models in
    :mod:`repro.core.models` consult the coercion engine (§3.4) and record
    each decision in :attr:`last_outcome`.
    """

    #: Canonical model name ("REV", "COD", …) — keys the coercion table.
    MODEL: str = "ABSTRACT"

    def __init__(
        self,
        name: str,
        target: str | None = None,
        runtime: Namespace | None = None,
        origin: str | None = None,
    ) -> None:
        """Mirror of Figure 4's constructor (target, name → find cloc).

        ``origin`` is the §7 shared-knowledge hint: the node whose registry
        first bound the component.  ``runtime`` defaults to the ambient
        namespace (see :mod:`repro.core.context`).
        """
        self.runtime = runtime if runtime is not None else current_runtime()
        self.name = name
        self.target = target
        self.origin = origin
        self.cloc: str | None = self._try_find()
        self.last_outcome: CoercionOutcome | None = None
        self._grants = threading.local()  # per-thread active lock grant

    # -- Figure 4 methods -----------------------------------------------------

    def find(self, verify: bool = True) -> str:
        """Current location of the bound component (walks the registry)."""
        return self.runtime.find(self.name, self.origin, verify=verify)

    def is_shared(self) -> bool:
        """Whether other threads may move the component between binds."""
        try:
            return self.runtime.is_shared(self.name)
        except NoSuchObjectError:
            return True

    def bind(self, name: str | None = None) -> Stub:
        """Apply the model: relocate the component if needed, return a stub.

        With ``name`` given, the attribute re-binds to that component first
        (Figure 4's ``bind(String n)``).  For shared objects ``cloc`` is
        re-found — "it may have been moved by another thread in between
        invocations by the current thread" (§3.5).
        """
        if name is not None:
            self.name = name
            self.cloc = self._try_find()
        self.refresh()
        return self._bind()

    @abstractmethod
    def _bind(self) -> Stub:
        """Model-specific binding (Figure 4's ``abstract Remote bind()``)."""

    def get_target(self) -> str | None:
        """The computation target, as the §4.4 locking bracket needs it."""
        return self.target

    # -- shared helpers for subclasses -------------------------------------------

    @property
    def triple(self) -> MobilityTriple:
        """This model's point in the §3.2 design space."""
        return CANONICAL_TRIPLES[self.MODEL]

    def refresh(self) -> None:
        """Re-find ``cloc`` when the component is shared (or never found).

        Private objects move only through this attribute, so their cached
        ``cloc`` "always accurately represents the bound object's current
        location" (§3.5) and no lookup is spent.
        """
        if self.cloc is None or self.is_shared():
            self.cloc = self._try_find()

    def _try_find(self) -> str | None:
        """Like find(), but absence is data (class-mode binds have no object)."""
        try:
            return self.runtime.find(self.name, self.origin, verify=False)
        except (ComponentNotFoundError, NoSuchObjectError):
            return None

    def placement(self) -> Placement | None:
        """Classify ``cloc`` against this namespace and the target (§3.4)."""
        if self.cloc is None:
            return None
        return classify(self.cloc, self.runtime.node_id, self.target)

    def decide(self, placement: Placement) -> Action:
        """Consult the coercion engine and record the outcome."""
        action = coerce(self.MODEL, placement)
        self.last_outcome = CoercionOutcome(
            model=self.MODEL,
            placement=placement,
            action=action,
            effective_model=effective_model(self.MODEL, action),
        )
        return action

    def stub_at(self, location: str) -> Stub:
        """A live stub for the component at ``location``."""
        return self.runtime.stub(self.name, location=location)

    def lock_token(self) -> str:
        """The move-lock token this thread holds via :meth:`locked`, if any.

        Model binds pass it to move operations so a locked bind is allowed
        to relocate a contended object.
        """
        grant = getattr(self._grants, "grant", None)
        return grant.token if grant is not None else ""

    def move_component(self, target: str) -> str:
        """Move the bound component, presenting any held lock token.

        The just-refreshed ``cloc`` is handed to the runtime so the move
        spends no redundant lookup; staleness is healed by the runtime's
        retry.
        """
        location = self.runtime.move(
            self.name, target, origin_hint=self.origin,
            lock_token=self.lock_token(), location=self.cloc,
        )
        self.cloc = location
        return location

    # -- locking bracket (§4.4) ------------------------------------------------------

    @contextlib.contextmanager
    def locked(self, timeout_ms: float | None = None) -> Iterator[Stub]:
        """The §4.4 lock/bind/invoke/unlock bracket as a context manager.

        Acquires the stay or move lock for the component at its current
        host (kind decided there from :meth:`get_target`), binds — move
        binds present the grant's token, so they are permitted to relocate
        the contended object — and releases on exit.  Object-mode
        attributes only: a class-mode bind has no object to lock yet.
        """
        target = self.target if self.target is not None else self.runtime.node_id
        grant = self.runtime.lock(
            self.name, target, origin_hint=self.origin, timeout_ms=timeout_ms
        )
        self._grants.grant = grant
        try:
            yield self.bind()
        finally:
            self._grants.grant = None
            self.runtime.unlock(grant)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, target={self.target!r}, "
            f"cloc={self.cloc!r}, at={self.runtime.node_id!r})"
        )
