"""The design space: ``<Location, Target, Moves>`` triples (§3.2, Table 1).

"All distributed programming models specify a network configuration and a
target … The triple <Location, Target, Moves>, where Location, Target ∈
{remote, local, not specified} and Moves ∈ {yes, no}, uniquely specifies
all distributed programming models discussed in this paper."

This module is Table 1 as executable data: the canonical triples for LPC,
RPC, COD, REV, MA, CLE — and GREV, the §3.3 generalization whose location
and target are unconstrained.  The Table 1 bench regenerates the paper's
table from these definitions and checks uniqueness; property tests verify
the enumeration covers the full 3 × 3 × 2 space.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass


class Locus(enum.Enum):
    """Where a component (or target) sits relative to the invoking namespace."""

    LOCAL = "local"
    REMOTE = "remote"
    UNSPECIFIED = "not specified"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class MobilityTriple:
    """One point in the paper's design space."""

    location: Locus
    target: Locus
    moves: bool

    def row(self) -> tuple[str, str, str]:
        """The Table 1 rendering: (Current Location, Target, Moves Component)."""
        return (str(self.location), str(self.target), "yes" if self.moves else "no")

    def __str__(self) -> str:
        return f"<{self.location}, {self.target}, {'yes' if self.moves else 'no'}>"


#: Table 1, row for row.  GREV is §3.3's generalization: it "moves its
#: component to its target, regardless of whether the component was
#: initially local or remote and whether the target is local or remote".
CANONICAL_TRIPLES: dict[str, MobilityTriple] = {
    "MA": MobilityTriple(Locus.REMOTE, Locus.REMOTE, True),
    "REV": MobilityTriple(Locus.LOCAL, Locus.REMOTE, True),
    "RPC": MobilityTriple(Locus.REMOTE, Locus.REMOTE, False),
    "CLE": MobilityTriple(Locus.UNSPECIFIED, Locus.UNSPECIFIED, False),
    "COD": MobilityTriple(Locus.REMOTE, Locus.LOCAL, True),
    "LPC": MobilityTriple(Locus.LOCAL, Locus.LOCAL, False),
    "GREV": MobilityTriple(Locus.UNSPECIFIED, Locus.UNSPECIFIED, True),
}

#: The rows Table 1 prints, in the paper's order (GREV is introduced in
#: §3.3, after the table).
TABLE1_ORDER: tuple[str, ...] = ("MA", "REV", "RPC", "CLE", "COD", "LPC")


def design_space() -> list[MobilityTriple]:
    """Every triple in the 3 × 3 × 2 space (18 points)."""
    return [
        MobilityTriple(location, target, moves)
        for location, target, moves in itertools.product(
            Locus, Locus, (True, False)
        )
    ]


def model_for(triple: MobilityTriple) -> str | None:
    """The canonical model matching ``triple`` exactly, if any.

    ``None`` means the point has no named classical model — §3.3 notes that
    mobility attributes "are capable of expressing all models in the design
    space", named or not.
    """
    for name, canonical in CANONICAL_TRIPLES.items():
        if canonical == triple:
            return name
    return None


def models_covering(triple: MobilityTriple) -> list[str]:
    """Models whose triple *subsumes* ``triple``.

    UNSPECIFIED acts as a wildcard: CLE (no location, no target, no move)
    applies wherever nothing moves, GREV wherever something does.
    """
    names = []
    for name, canonical in CANONICAL_TRIPLES.items():
        if canonical.moves != triple.moves:
            continue
        if canonical.location not in (Locus.UNSPECIFIED, triple.location):
            continue
        if canonical.target not in (Locus.UNSPECIFIED, triple.target):
            continue
        names.append(name)
    return sorted(names)
