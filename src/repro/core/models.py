"""The canonical mobility attributes (§3.3, §3.5, Figure 5).

The class hierarchy of Figure 5, rooted at
:class:`~repro.core.attribute.MobilityAttribute`:

* :class:`LPC` — local procedure call (component must be here).
* :class:`RPC` — invoke at a fixed remote host; "a programmer could use it
  to denote an immobile object.  MAGE RPC throws an exception if it does
  not find its object on its target."
* :class:`COD` — code on demand: bring the component (class or object) to
  the caller's namespace and run it here.
* :class:`REV` — remote evaluation: send the local component to the target
  and run it there (single hop, synchronous).
* :class:`GREV` — §3.3's generalization: move the component to the target
  "regardless of whether the component was initially local or remote and
  whether the target is local or remote".
* :class:`CLE` — §3.3's current-location evaluation: no target; evaluate
  the component in whatever namespace it currently occupies.
* :class:`MAgent` — mobile agent: weak migration (§3.5), multi-hop and
  asynchronous via an itinerary, with fire-and-forget invocation so the
  result can stay at the remote host.

Every ``bind`` consults the §3.4 coercion engine and records the outcome
in ``last_outcome``; the Table 2 bench replays all placements and prints
what actually happened.
"""

from __future__ import annotations

from typing import Any

from repro.core.attribute import MobilityAttribute
from repro.core.coercion import Action, Placement
from repro.core.factory import FactoryMode
from repro.errors import (
    CoercionError,
    ComponentNotFoundError,
    ImmobileObjectError,
    NoSuchObjectError,
)
from repro.rmi.stub import RemoteRef, Stub
from repro.runtime.namespace import Namespace
from repro.util.ids import fresh_token


class LPC(MobilityAttribute):
    """Local procedure call: the component must already live here."""

    MODEL = "LPC"

    def __init__(self, name: str, runtime: Namespace | None = None,
                 origin: str | None = None) -> None:
        super().__init__(name, target=None, runtime=runtime, origin=origin)
        self.target = self.runtime.node_id  # LPC's target is always "here"

    def _bind(self) -> Stub:
        if self.cloc is None:
            raise ComponentNotFoundError(self.name, "LPC found no component")
        action = self.decide(self.placement())
        if action is Action.RAISE:
            raise CoercionError(
                f"LPC bound to {self.name!r} but it lives on {self.cloc!r}, "
                f"not {self.runtime.node_id!r}"
            )
        return self.stub_at(self.runtime.node_id)


class RPC(MobilityAttribute):
    """Remote procedure call at a statically known host (Table 2 row RPC).

    The target defaults to wherever the component was found at
    construction — RPC "requires static knowledge of its remote
    component's location" (§2) and then pins it.
    """

    MODEL = "RPC"

    def __init__(self, name: str, target: str | None = None,
                 runtime: Namespace | None = None,
                 origin: str | None = None) -> None:
        super().__init__(name, target=target, runtime=runtime, origin=origin)
        if self.target is None:
            self.target = self.cloc if self.cloc is not None else origin

    def _bind(self) -> Stub:
        if self.target is None:
            raise ImmobileObjectError(self.name, "<unknown>", str(self.cloc))
        if self.cloc is None:
            raise ImmobileObjectError(self.name, self.target, "<not found>")
        action = self.decide(self.placement())
        if action is Action.RAISE:
            raise ImmobileObjectError(self.name, self.target, self.cloc)
        return self._guarded_stub()

    def _guarded_stub(self) -> Stub:
        """A stub that turns a missing servant into Table 2's exception.

        RPC stays "a very thin wrapper of a standard RMI call" — bind does
        no verified registry walk — so a concurrent move is discovered at
        the intercepted invocation.  The guard re-finds (verified) purely
        for the diagnostic, then raises :class:`ImmobileObjectError`.
        """
        client = self.runtime.client
        attribute = self

        def checked_invoke(ref: RemoteRef, method: str, args: tuple,
                           kwargs: dict):
            try:
                return client.invoke(ref, method, args, kwargs)
            except NoSuchObjectError:
                try:
                    actual = attribute.find(verify=True)
                except ComponentNotFoundError:
                    actual = "<not found>"
                attribute.cloc = None if actual == "<not found>" else actual
                raise ImmobileObjectError(
                    attribute.name, attribute.target, actual
                ) from None

        return Stub(RemoteRef(node_id=self.target, name=self.name), checked_invoke)


class CLE(MobilityAttribute):
    """Current-location evaluation (§3.3, Figure 3).

    "CLE does not specify a computation target; rather, CLE evaluates its
    component in the namespace in which the component currently resides."
    Its target is conceptually the set of all namespaces, so every bind
    performs a verified find — the component is expected to be moved
    around by others (the printer-fleet scenario).
    """

    MODEL = "CLE"

    def __init__(self, name: str, runtime: Namespace | None = None,
                 origin: str | None = None) -> None:
        super().__init__(name, target=None, runtime=runtime, origin=origin)

    def refresh(self) -> None:
        """No-op: ``_bind`` performs its own authoritative find."""

    def _bind(self) -> Stub:
        self.cloc = self.find(verify=True)
        self.decide(self.placement())
        return self.stub_at(self.cloc)


class COD(MobilityAttribute):
    """Code on demand: bring the component to the caller's namespace.

    Object mode (the paper's ``new COD("geoData")``) moves an existing
    object here; with a ``class_name`` the attribute is a factory in one of
    the §4.2 modes: ``TRADITIONAL`` fetches the class (conditionally, once
    cached) and instantiates a fresh local object per bind; ``SINGLE_USE``
    does that once, then binds to the object it created.
    """

    MODEL = "COD"

    def __init__(
        self,
        name: str,
        class_name: str | None = None,
        source: str | None = None,
        mode: FactoryMode | None = None,
        ctor_args: tuple = (),
        ctor_kwargs: dict | None = None,
        shared: bool = True,
        runtime: Namespace | None = None,
        origin: str | None = None,
    ) -> None:
        super().__init__(name, target=None, runtime=runtime, origin=origin)
        self.target = self.runtime.node_id  # COD's target is always "here"
        self.class_name = class_name
        self.source = source if source is not None else origin
        if mode is None:
            mode = FactoryMode.OBJECT if class_name is None else FactoryMode.TRADITIONAL
        self.mode = mode
        self.ctor_args = tuple(ctor_args)
        self.ctor_kwargs = dict(ctor_kwargs) if ctor_kwargs is not None else {}
        self.shared = shared
        self._instantiated = False
        self._validate_mode()

    def _validate_mode(self) -> None:
        if self.mode is not FactoryMode.OBJECT and self.class_name is None:
            raise CoercionError(f"{self.mode.value} COD requires a class_name")
        if self.mode is not FactoryMode.OBJECT and self.source is None:
            raise CoercionError(
                "factory COD needs a source node to fetch the class from"
            )

    def _bind(self) -> Stub:
        if self.mode is FactoryMode.TRADITIONAL or (
            self.mode is FactoryMode.SINGLE_USE and not self._instantiated
        ):
            return self._bind_factory()
        return self._bind_object()

    def _bind_factory(self) -> Stub:
        here = self.runtime.node_id
        self.runtime.server.fetch_class(self.class_name, self.source)
        instance = (
            self.name
            if self.mode is FactoryMode.SINGLE_USE
            else f"{self.name}-{fresh_token('cod')}"
        )
        ref = self.runtime.server.instantiate(
            self.class_name, instance, here,
            args=self.ctor_args, kwargs=self.ctor_kwargs, shared=self.shared,
        )
        # The class was remote and the target is local: COD's defining move.
        self.decide(Placement.REMOTE_NOT_AT_TARGET)
        if self.mode is FactoryMode.SINGLE_USE:
            self._instantiated = True
            self.name = instance
            self.cloc = here
        return self.runtime.client.stub_for(ref)

    def _bind_object(self) -> Stub:
        here = self.runtime.node_id
        if self.cloc is None:
            raise ComponentNotFoundError(self.name, "COD found no component")
        action = self.decide(self.placement())
        if action is Action.NOT_APPLICABLE:
            raise CoercionError(
                f"COD on {self.name!r}: placement {self.last_outcome.placement} "
                "cannot arise for a local-target model"
            )
        if action is Action.DEFAULT:
            self.move_component(here)
        # COERCE_LPC: already local — invoke in place.
        return self.stub_at(here)


class REV(MobilityAttribute):
    """Remote evaluation: run the local component at the target (Figure 1c).

    The paper's constructor order is kept —
    ``REV("GeoDataFilterImpl", "geoData", "sensor1")`` — with
    ``class_name=None`` selecting object mode (move an existing object to
    the target, the §4.2 extension).  REV is single-hop and synchronous;
    contrast :class:`MAgent`.
    """

    MODEL = "REV"

    def __init__(
        self,
        class_name: str | None,
        name: str,
        target: str,
        mode: FactoryMode | None = None,
        ctor_args: tuple = (),
        ctor_kwargs: dict | None = None,
        shared: bool = True,
        runtime: Namespace | None = None,
        origin: str | None = None,
    ) -> None:
        super().__init__(name, target=target, runtime=runtime, origin=origin)
        self.class_name = class_name
        if mode is None:
            mode = FactoryMode.OBJECT if class_name is None else FactoryMode.TRADITIONAL
        self.mode = mode
        self.ctor_args = tuple(ctor_args)
        self.ctor_kwargs = dict(ctor_kwargs) if ctor_kwargs is not None else {}
        self.shared = shared
        self._instantiated = False
        if self.mode is not FactoryMode.OBJECT and self.class_name is None:
            raise CoercionError(f"{self.mode.value} REV requires a class_name")

    def _bind(self) -> Stub:
        if self.mode is FactoryMode.TRADITIONAL or (
            self.mode is FactoryMode.SINGLE_USE and not self._instantiated
        ):
            return self._bind_factory()
        return self._bind_object()

    def _bind_factory(self) -> Stub:
        self.runtime.server.push_class(self.class_name, self.target)
        instance = (
            self.name
            if self.mode is FactoryMode.SINGLE_USE
            else f"{self.name}-{fresh_token('rev')}"
        )
        ref = self.runtime.server.instantiate(
            self.class_name, instance, self.target,
            args=self.ctor_args, kwargs=self.ctor_kwargs, shared=self.shared,
        )
        # The class was local and the target remote: REV's defining move.
        self.decide(Placement.LOCAL_NOT_AT_TARGET)
        if self.mode is FactoryMode.SINGLE_USE:
            self._instantiated = True
            self.name = instance
            self.cloc = self.target
        return self.runtime.client.stub_for(ref)

    def _bind_object(self) -> Stub:
        if self.cloc is None:
            raise ComponentNotFoundError(self.name, "REV found no component")
        action = self.decide(self.placement())
        if action is Action.DEFAULT:
            self.move_component(self.target)
        # COERCE_RPC: already at the target — plain remote invocation.
        return self.stub_at(self.target)


class GREV(MobilityAttribute):
    """Generalized remote evaluation (§3.3, Figure 2).

    "GREV moves its component to its target, regardless of whether the
    component was initially local or remote and whether the target is
    local or remote.  While more expensive than either REV or COD, GREV
    applies to a wider array of component distributions … well suited to
    distributed systems in which components are constantly moving."
    """

    MODEL = "GREV"

    def __init__(self, name: str, target: str,
                 runtime: Namespace | None = None,
                 origin: str | None = None) -> None:
        super().__init__(name, target=target, runtime=runtime, origin=origin)

    def refresh(self) -> None:
        """No-op: ``_bind`` performs its own authoritative find."""

    def _bind(self) -> Stub:
        # Components are "constantly moving": always re-verify location.
        self.cloc = self.find(verify=True)
        action = self.decide(self.placement())
        if action is Action.DEFAULT:
            self.move_component(self.target)
        return self.stub_at(self.target)


class MAgent(MobilityAttribute):
    """Mobile agent (MA): multi-hop, asynchronous, weak migration (§3.5).

    Object mode (``MAgent("geoData", "sensor2")``) moves an existing
    component toward the target, hopping through ``itinerary`` namespaces
    asynchronously when one is given.  Deploy mode (``class_name=``) ships
    the class and instantiates at the target, like REV — MA's Table 3
    measurement — but offers :meth:`send` so results stay remote.
    """

    MODEL = "MA"

    def __init__(
        self,
        name: str,
        target: str,
        itinerary: tuple[str, ...] = (),
        class_name: str | None = None,
        ctor_args: tuple = (),
        ctor_kwargs: dict | None = None,
        shared: bool = True,
        runtime: Namespace | None = None,
        origin: str | None = None,
    ) -> None:
        super().__init__(name, target=target, runtime=runtime, origin=origin)
        self.itinerary = tuple(itinerary)
        self.class_name = class_name
        self.ctor_args = tuple(ctor_args)
        self.ctor_kwargs = dict(ctor_kwargs) if ctor_kwargs is not None else {}
        self.shared = shared

    def _bind(self) -> Stub:
        if self.class_name is not None and self.cloc is None:
            return self._bind_deploy()
        return self._bind_object()

    def _bind_deploy(self) -> Stub:
        self.runtime.server.push_class(self.class_name, self.target)
        ref = self.runtime.server.instantiate(
            self.class_name, self.name, self.target,
            args=self.ctor_args, kwargs=self.ctor_kwargs, shared=self.shared,
        )
        self.decide(Placement.LOCAL_NOT_AT_TARGET)
        self.cloc = self.target
        return self.runtime.client.stub_for(ref)

    def _bind_object(self) -> Stub:
        if self.cloc is None:
            raise ComponentNotFoundError(self.name, "MA found no component")
        action = self.decide(self.placement())
        if action is Action.DEFAULT:
            if self.itinerary:
                self._hop_through_itinerary()
            else:
                self.move_component(self.target)
        return self.stub_at(self.target)

    def _hop_through_itinerary(self) -> None:
        """Asynchronous multi-hop travel via the agent manager."""
        from repro.core.agents import agent_manager_for

        manager = agent_manager_for(self.runtime)
        manager.send_through(
            self.name, self.itinerary + (self.target,),
            origin_hint=self.origin, lock_token=self.lock_token(),
        )
        self.cloc = self.target

    def send(self, method: str, *args: Any, **kwargs: Any) -> None:
        """Fire-and-forget invocation — "the result stays at the remote host".

        The asynchronous half of MA's contrast with REV (§3.5).
        """
        where = self.cloc if self.cloc is not None else self.target
        self.runtime.server.send_oneway(
            RemoteRef(node_id=where, name=self.name), method, args, kwargs
        )


#: Figure 5's hierarchy, for the Table 1 bench and docs.
CANONICAL_MODELS: dict[str, type[MobilityAttribute]] = {
    "LPC": LPC,
    "RPC": RPC,
    "COD": COD,
    "REV": REV,
    "GREV": GREV,
    "CLE": CLE,
    "MA": MAgent,
}
