"""Ambient runtime context.

The paper's Java code constructs mobility attributes without naming the
local JVM — the runtime is ambient.  Python prefers explicitness, so every
attribute accepts ``runtime=``; this module provides the ambient fallback
for paper-faithful code::

    with use_runtime(lab):
        rev = REV("GeoDataFilterImpl", "geoData", "sensor1")
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator

from repro.errors import ConfigurationError
from repro.runtime.namespace import Namespace

_CURRENT: ContextVar[Namespace | None] = ContextVar("mage_runtime", default=None)


def current_runtime() -> Namespace:
    """The ambient namespace, or raise if none is active."""
    runtime = _CURRENT.get()
    if runtime is None:
        raise ConfigurationError(
            "no ambient MAGE runtime: pass runtime=<Namespace> or enter "
            "a `with use_runtime(ns):` block"
        )
    return runtime


def maybe_current_runtime() -> Namespace | None:
    """The ambient namespace, or None."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_runtime(runtime: Namespace) -> Iterator[Namespace]:
    """Make ``runtime`` the ambient namespace within the block."""
    token = _CURRENT.set(runtime)
    try:
        yield runtime
    finally:
        _CURRENT.reset(token)
