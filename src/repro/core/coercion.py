"""Mobility coercion (§3.4, Table 2).

"A mobility attribute can specify component migration that does not make
sense, as when applying COD to a component that is already local …
Whenever a mismatch occurs, MAGE attempts to coerce the computation into a
distributed programming paradigm that matches the actual distribution of
code and data."

This module encodes Table 2 as data and a pure classification function.
Every concrete attribute's ``bind`` consults it, records the outcome, and
acts on it — so the Table 2 bench regenerates the matrix from live binds,
not from this table echoing itself (the engine decides *what to do*; the
bench observes *what happened*).

The paper's table has three columns: Local, Remote-at-target, and
Remote-not-at-target.  "Local" there means the component sits in the
caller's namespace while the model's target is elsewhere; the fourth
combination — local *and* at the target (target == caller's namespace) —
is listed separately here since, e.g., COD's whole Local column is that
case and REV's is not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CoercionError


class Placement(enum.Enum):
    """Where the component actually is, relative to caller and target."""

    LOCAL_AT_TARGET = "local, at target"            # cloc == here == target
    LOCAL_NOT_AT_TARGET = "local"                   # cloc == here != target
    REMOTE_AT_TARGET = "remote, at target"          # cloc == target != here
    REMOTE_NOT_AT_TARGET = "remote, not at target"  # cloc ∉ {here, target}


class Action(enum.Enum):
    """What Table 2 says a model does for a placement."""

    DEFAULT = "Default Behavior"
    COERCE_RPC = "RPC"
    COERCE_LPC = "LPC"
    RAISE = "Exception thrown"
    NOT_APPLICABLE = "n/a"


@dataclass(frozen=True)
class CoercionOutcome:
    """The decision one bind made, for tracing and the Table 2 bench."""

    model: str
    placement: Placement
    action: Action
    effective_model: str  # the model whose semantics actually ran


def classify(cloc: str, here: str, target: str | None) -> Placement:
    """Map actual locations onto a Table 2 column.

    ``target=None`` (an unspecified-target model such as CLE) classifies as
    "at target" — wherever the component is, that is where it runs.
    """
    local = cloc == here
    at_target = target is None or cloc == target
    if local and at_target:
        return Placement.LOCAL_AT_TARGET
    if local:
        return Placement.LOCAL_NOT_AT_TARGET
    if at_target:
        return Placement.REMOTE_AT_TARGET
    return Placement.REMOTE_NOT_AT_TARGET


#: Table 2, cell for cell (rows MA, REV, COD, RPC, CLE; LOCAL_AT_TARGET is
#: the extra column discussed in the module docstring).
TABLE2: dict[tuple[str, Placement], Action] = {
    # MA: move unless already at the target (then behave as RPC).
    ("MA", Placement.LOCAL_AT_TARGET): Action.DEFAULT,
    ("MA", Placement.LOCAL_NOT_AT_TARGET): Action.DEFAULT,
    ("MA", Placement.REMOTE_AT_TARGET): Action.COERCE_RPC,
    ("MA", Placement.REMOTE_NOT_AT_TARGET): Action.DEFAULT,
    # REV: identical coercion row to MA (single-hop, synchronous semantics).
    ("REV", Placement.LOCAL_AT_TARGET): Action.DEFAULT,
    ("REV", Placement.LOCAL_NOT_AT_TARGET): Action.DEFAULT,
    ("REV", Placement.REMOTE_AT_TARGET): Action.COERCE_RPC,
    ("REV", Placement.REMOTE_NOT_AT_TARGET): Action.DEFAULT,
    # COD: target is the caller's namespace, so "local" means already at
    # the target (coerce to LPC) and remote-at-target cannot arise.
    ("COD", Placement.LOCAL_AT_TARGET): Action.COERCE_LPC,
    ("COD", Placement.LOCAL_NOT_AT_TARGET): Action.NOT_APPLICABLE,
    ("COD", Placement.REMOTE_AT_TARGET): Action.NOT_APPLICABLE,
    ("COD", Placement.REMOTE_NOT_AT_TARGET): Action.DEFAULT,
    # RPC: denotes an immobile object; anywhere but the target is an error.
    ("RPC", Placement.LOCAL_AT_TARGET): Action.DEFAULT,
    ("RPC", Placement.LOCAL_NOT_AT_TARGET): Action.RAISE,
    ("RPC", Placement.REMOTE_AT_TARGET): Action.DEFAULT,
    ("RPC", Placement.REMOTE_NOT_AT_TARGET): Action.RAISE,
    # CLE: evaluate wherever the component currently resides.
    ("CLE", Placement.LOCAL_AT_TARGET): Action.DEFAULT,
    ("CLE", Placement.LOCAL_NOT_AT_TARGET): Action.DEFAULT,
    ("CLE", Placement.REMOTE_AT_TARGET): Action.DEFAULT,
    ("CLE", Placement.REMOTE_NOT_AT_TARGET): Action.DEFAULT,
    # GREV (§3.3 extension): move from anywhere to anywhere; already-there
    # degenerates to RPC exactly as REV does.
    ("GREV", Placement.LOCAL_AT_TARGET): Action.DEFAULT,
    ("GREV", Placement.LOCAL_NOT_AT_TARGET): Action.DEFAULT,
    ("GREV", Placement.REMOTE_AT_TARGET): Action.COERCE_RPC,
    ("GREV", Placement.REMOTE_NOT_AT_TARGET): Action.DEFAULT,
    # LPC (completeness): a local call is only defined for local components.
    ("LPC", Placement.LOCAL_AT_TARGET): Action.DEFAULT,
    ("LPC", Placement.LOCAL_NOT_AT_TARGET): Action.DEFAULT,
    ("LPC", Placement.REMOTE_AT_TARGET): Action.RAISE,
    ("LPC", Placement.REMOTE_NOT_AT_TARGET): Action.RAISE,
}

#: The models and columns the paper's Table 2 actually prints.
TABLE2_MODELS: tuple[str, ...] = ("MA", "REV", "COD", "RPC", "CLE")
TABLE2_COLUMNS: tuple[Placement, ...] = (
    Placement.LOCAL_NOT_AT_TARGET,
    Placement.REMOTE_AT_TARGET,
    Placement.REMOTE_NOT_AT_TARGET,
)


def coerce(model: str, placement: Placement) -> Action:
    """Table 2 lookup; raises for models the engine does not know."""
    action = TABLE2.get((model, placement))
    if action is None:
        raise CoercionError(f"no coercion rule for model {model!r} at {placement}")
    return action


def effective_model(model: str, action: Action) -> str:
    """The model whose semantics actually run after coercion."""
    if action is Action.COERCE_RPC:
        return "RPC"
    if action is Action.COERCE_LPC:
        return "LPC"
    return model
