"""User-defined mobility attributes (§3.1, §3.3, §3.6).

The paper's pitch is that programmers write their *own* distribution
policies as mobility attributes.  This module provides the three the paper
sketches:

* :class:`LoadBalancing` — §3.1's opening example: "a migration policy
  based on load": when the component's host is loaded beyond a threshold,
  move the component to the least-loaded candidate before invoking.
* :class:`Combined` — §3.6's ``CombinedMA``: one attribute containing
  several, selecting which to apply per bind from application state.
* :class:`Restricted` — §3.3: "mobility attributes that restrict the
  namespace on which a component can execute by restricting current
  location and target to subsets of the available hosts."
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.attribute import MobilityAttribute
from repro.errors import TargetRestrictedError
from repro.rmi.stub import Stub
from repro.runtime.namespace import Namespace


class LoadBalancing(MobilityAttribute):
    """Migrate away from overloaded hosts (§3.1's ``bind`` example).

    On bind: query the current host's load; if it exceeds ``threshold``,
    move the component to the least-loaded node among ``candidates`` and
    return a stub there; otherwise leave it in place (CLE-style).
    """

    MODEL = "CLE"  # placement-wise it evaluates wherever the object ends up

    def __init__(
        self,
        name: str,
        candidates: Iterable[str],
        threshold: float = 100.0,
        runtime: Namespace | None = None,
        origin: str | None = None,
    ) -> None:
        super().__init__(name, target=None, runtime=runtime, origin=origin)
        self.candidates = tuple(candidates)
        if not self.candidates:
            raise TargetRestrictedError("LoadBalancing needs at least one candidate")
        self.threshold = threshold
        self.migrations = 0

    def select_new_host(self) -> str:
        """The least-loaded candidate (ties broken by name for determinism)."""
        loads = [(self.runtime.query_load(node), node) for node in self.candidates]
        return min(loads)[1]

    def _bind(self) -> Stub:
        self.cloc = self.find(verify=True)
        current_load = self.runtime.query_load(self.cloc)
        if current_load > self.threshold:
            target = self.select_new_host()
            if target != self.cloc:
                self.move_component(target)
                self.migrations += 1
        self.decide(self.placement())
        return self.stub_at(self.cloc)


class Combined(MobilityAttribute):
    """Compose several attributes behind one bind (§3.6's ``CombinedMA``).

    ``chooser`` inspects whatever application state it likes and returns
    which inner attribute handles this bind.  The §3.6 oil-exploration
    example builds one from {REV, MAgent, COD} keyed on sensor status.
    """

    MODEL = "CLE"  # the union of its parts; coercion happens inside them

    def __init__(
        self,
        name: str,
        attributes: dict[str, MobilityAttribute],
        chooser: Callable[["Combined"], str],
        runtime: Namespace | None = None,
        origin: str | None = None,
    ) -> None:
        super().__init__(name, target=None, runtime=runtime, origin=origin)
        if not attributes:
            raise TargetRestrictedError("Combined needs at least one inner attribute")
        self.attributes = dict(attributes)
        self.chooser = chooser
        self.history: list[str] = []

    def _bind(self) -> Stub:
        key = self.chooser(self)
        if key not in self.attributes:
            raise TargetRestrictedError(
                f"chooser returned {key!r}, not one of {sorted(self.attributes)}"
            )
        self.history.append(key)
        inner = self.attributes[key]
        stub = inner.bind(self.name)
        self.last_outcome = inner.last_outcome
        self.cloc = inner.cloc
        self.target = inner.target
        return stub


class Restricted(MobilityAttribute):
    """Constrain an inner attribute to allowed locations/targets (§3.3)."""

    MODEL = "CLE"

    def __init__(
        self,
        inner: MobilityAttribute,
        allowed_targets: Iterable[str] | None = None,
        allowed_locations: Iterable[str] | None = None,
    ) -> None:
        super().__init__(
            inner.name, target=inner.target,
            runtime=inner.runtime, origin=inner.origin,
        )
        self.inner = inner
        self.allowed_targets = frozenset(allowed_targets) if allowed_targets else None
        self.allowed_locations = (
            frozenset(allowed_locations) if allowed_locations else None
        )

    def _bind(self) -> Stub:
        if self.allowed_targets is not None and self.inner.target is not None \
                and self.inner.target not in self.allowed_targets:
            raise TargetRestrictedError(
                f"target {self.inner.target!r} outside the allowed set "
                f"{sorted(self.allowed_targets)}"
            )
        if self.allowed_locations is not None:
            location = self.inner.runtime.find(
                self.name, self.inner.origin, verify=True
            )
            if location not in self.allowed_locations:
                raise TargetRestrictedError(
                    f"component {self.name!r} currently on {location!r}, "
                    f"outside the allowed set {sorted(self.allowed_locations)}"
                )
        stub = self.inner.bind()
        self.last_outcome = self.inner.last_outcome
        self.cloc = self.inner.cloc
        return stub
