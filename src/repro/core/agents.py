"""Mobile agents: multi-hop, asynchronous weak migration (§3.5).

"There are two forms of migration in the MA paradigm — weak and strong.
Strong migration moves a thread's stack along with heap state, while weak
migration just moves heap state.  Since the standard Java virtual machine
does not provide access to execution state, MAGE uses weak migration.
Thus, REV and MA differ under MAGE in that REV is single hop and
synchronous, while MA is multi-hop and asynchronous."

CPython likewise withholds execution state, so agents here are weak: an
agent is any component whose class defines (optionally) the hooks

* ``on_arrival(ctx)`` — runs in the receiving namespace at every hop; may
  steer the tour via ``ctx.go(node)`` / ``ctx.stay()``;
* ``on_complete(ctx)`` — runs when the itinerary is exhausted.

Each hop is a one-way AGENT_HOP cast carrying the agent's state (and class,
when the receiver lacks it); the receiving manager reconstructs the agent,
runs its hook on the cast thread, and forwards it — the paper's
asynchronous, multi-hop contrast to REV.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ClassTransferError, LockError, MageError, NoSuchObjectError
from repro.net.message import MessageKind
from repro.rmi.classdesc import ClassDescriptor
from repro.rmi.protocol import AgentHopPayload, AgentLaunch, ClassRequest
from repro.runtime.namespace import Namespace
from repro.util.ids import fresh_token


class Agent:
    """Optional convenience base class for agents.

    Any class with the hook methods works (duck typing); inheriting just
    supplies no-op defaults and records the visit trail, which tests and
    the examples read back.
    """

    def __init__(self) -> None:
        self.visited: list[str] = []

    def on_arrival(self, ctx: "AgentContext") -> None:
        """Called in each namespace the agent lands in."""
        self.visited.append(ctx.node_id)

    def on_complete(self, ctx: "AgentContext") -> None:
        """Called once the itinerary is exhausted."""


@dataclass
class AgentContext:
    """What an agent sees of the namespace it just landed in."""

    node_id: str
    runtime: Namespace
    remaining: tuple[str, ...]
    _next_override: str | None = field(default=None, repr=False)
    _stopped: bool = field(default=False, repr=False)

    def go(self, node_id: str) -> None:
        """Steer the tour: hop to ``node_id`` next (prepended to the rest)."""
        self._next_override = node_id
        self._stopped = False

    def stay(self) -> None:
        """Stop the tour here, abandoning the remaining itinerary."""
        self._stopped = True

    def query_load(self, node_id: str | None = None) -> float:
        """Host load — lets agents implement network-aware routing."""
        return self.runtime.query_load(node_id)


class AgentManager:
    """Per-namespace service running the AGENT_HOP / AGENT_LAUNCH protocol."""

    def __init__(self, namespace: Namespace) -> None:
        self.ns = namespace
        self._seen_tours: set[str] = set()
        self._lock = threading.Lock()
        self.hops_in = 0
        self.hops_out = 0
        namespace.external.install_agent_handlers(self._on_hop, self._on_launch)

    # -- initiating tours -------------------------------------------------------

    def launch(self, agent: Any, name: str, itinerary: tuple[str, ...],
               shared: bool = False) -> None:
        """Register ``agent`` here and send it around ``itinerary``."""
        self.ns.register(name, agent, shared=shared)
        self.start_tour(name, tuple(itinerary))

    def send_through(self, name: str, itinerary: tuple[str, ...],
                     origin_hint: str | None = None, lock_token: str = "") -> None:
        """Start a tour for ``name`` wherever it currently lives."""
        if self.ns.store.contains(name):
            self.start_tour(name, tuple(itinerary), lock_token)
            return
        location = self.ns.find(name, origin_hint)
        self.ns.transport.call(
            self.ns.node_id, location, MessageKind.AGENT_LAUNCH,
            AgentLaunch(name=name, itinerary=tuple(itinerary), lock_token=lock_token),
        )

    def start_tour(self, name: str, itinerary: tuple[str, ...],
                   lock_token: str = "") -> None:
        """Pack the locally hosted agent and hop it to ``itinerary[0]``."""
        if not itinerary:
            return
        if self.ns.locks.has_activity(name) and not self.ns.locks.holds_move_lock(
            name, lock_token
        ):
            raise LockError(
                f"starting a tour for {name!r} requires its move lock "
                "(object is contended)"
            )
        record = self.ns.store.record(name)
        self._hop_out(record.obj, name, tuple(itinerary), shared=record.shared)

    # -- the hop protocol ----------------------------------------------------------

    def _hop_out(self, agent: Any, name: str, itinerary: tuple[str, ...],
                 shared: bool) -> None:
        next_node, rest = itinerary[0], itinerary[1:]
        if next_node == self.ns.node_id:
            # Degenerate hop to self: just continue the tour locally.
            self._arrive_locally(agent, name, rest, shared)
            return
        mover = self.ns.mover
        desc = mover.descriptor_for(agent)
        probe = mover.begin_class_probe(next_node, desc)
        state_blob = mover.pack_state(agent)  # overlaps the probe's round trip
        payload = AgentHopPayload(
            name=name,
            class_name=desc.class_name,
            state_blob=state_blob,
            class_desc=desc if mover.resolve_class_probe(
                probe, next_node, desc
            ) else None,
            class_hash=desc.source_hash,
            origin=self.ns.node_id,
            tour_id=fresh_token("tour"),
            itinerary=rest,
            shared=shared,
        )
        if self.ns.store.contains(name):
            self.ns.store.remove(name)
        self.ns.registry.record_departure(name, next_node)
        self.ns.locks.mark_moved(name, next_node)
        self.hops_out += 1
        self.ns.transport.cast(
            self.ns.node_id, next_node, MessageKind.AGENT_HOP, payload
        )

    def _on_launch(self, payload: AgentLaunch) -> str:
        if not self.ns.store.contains(payload.name):
            raise NoSuchObjectError(payload.name, self.ns.node_id)
        self.start_tour(payload.name, payload.itinerary, payload.lock_token)
        return "touring"

    def _on_hop(self, payload: AgentHopPayload) -> None:
        with self._lock:
            if payload.tour_id in self._seen_tours:
                return
            self._seen_tours.add(payload.tour_id)
        agent = self._reconstruct(payload)
        self.hops_in += 1
        self._arrive_locally(
            agent, payload.name, payload.itinerary, payload.shared
        )

    def _arrive_locally(self, agent: Any, name: str,
                        remaining: tuple[str, ...], shared: bool) -> None:
        self.ns.store.add(name, agent, shared=shared)
        self.ns.registry.record_arrival(name)
        self.ns.locks.mark_arrived(name)
        ctx = AgentContext(
            node_id=self.ns.node_id, runtime=self.ns, remaining=remaining
        )
        on_arrival = getattr(agent, "on_arrival", None)
        if callable(on_arrival):
            try:
                on_arrival(ctx)
            except Exception as exc:
                raise MageError(
                    f"agent {name!r} arrival hook failed at "
                    f"{self.ns.node_id!r}: {exc}"
                ) from exc
        if ctx._stopped:
            remaining = ()
        elif ctx._next_override is not None:
            remaining = (ctx._next_override,) + remaining
        if remaining:
            self._hop_out(agent, name, remaining, shared)
            return
        on_complete = getattr(agent, "on_complete", None)
        if callable(on_complete):
            on_complete(ctx)

    def _reconstruct(self, payload: AgentHopPayload) -> Any:
        cache = self.ns.classcache
        if payload.class_desc is not None:
            cls = cache.load(payload.class_desc)
        elif cache.has_hash(payload.class_hash):
            cls = cache.clone_by_hash(payload.class_hash)
        else:
            desc = self.ns.transport.call(
                self.ns.node_id, payload.origin, MessageKind.CLASS_REQUEST,
                ClassRequest(class_name=payload.class_name),
            )
            if not isinstance(desc, ClassDescriptor):
                raise ClassTransferError(
                    f"origin {payload.origin!r} served no descriptor for "
                    f"{payload.class_name!r}"
                )
            cls = cache.load(desc)
        return self.ns.mover.unpack(cls, payload.state_blob)


def agent_manager_for(namespace: Namespace) -> AgentManager:
    """The namespace's agent manager, created and attached on first use."""
    manager = getattr(namespace, "agents", None)
    if manager is None:
        manager = AgentManager(namespace)
        namespace.agents = manager
    return manager
