"""The paper's contribution: mobility attributes.

First-class objects that bind to program components, intercept invocation
requests, and decide whether and where the component moves before it
executes (§3).  The canonical models (Figure 5) live in
:mod:`~repro.core.models`; the design-space triples (Table 1) in
:mod:`~repro.core.triple`; the coercion engine (Table 2) in
:mod:`~repro.core.coercion`; user-defined policies in
:mod:`~repro.core.policy`; asynchronous multi-hop agents in
:mod:`~repro.core.agents`.
"""

from repro.core.agents import Agent, AgentContext, AgentManager, agent_manager_for
from repro.core.attribute import MobilityAttribute
from repro.core.coercion import (
    Action,
    CoercionOutcome,
    Placement,
    TABLE2,
    TABLE2_MODELS,
    classify,
    coerce,
    effective_model,
)
from repro.core.context import current_runtime, maybe_current_runtime, use_runtime
from repro.core.factory import FactoryMode
from repro.core.models import CANONICAL_MODELS, CLE, COD, GREV, LPC, MAgent, REV, RPC
from repro.core.policy import Combined, LoadBalancing, Restricted
from repro.core.strong import ResumableAgent, launch_resumable
from repro.core.triple import (
    CANONICAL_TRIPLES,
    Locus,
    MobilityTriple,
    TABLE1_ORDER,
    design_space,
    model_for,
    models_covering,
)

__all__ = [
    "Action",
    "Agent",
    "AgentContext",
    "AgentManager",
    "CANONICAL_MODELS",
    "CANONICAL_TRIPLES",
    "CLE",
    "COD",
    "CoercionOutcome",
    "Combined",
    "FactoryMode",
    "GREV",
    "LPC",
    "LoadBalancing",
    "Locus",
    "MAgent",
    "MobilityAttribute",
    "MobilityTriple",
    "Placement",
    "REV",
    "RPC",
    "Restricted",
    "ResumableAgent",
    "TABLE1_ORDER",
    "TABLE2",
    "TABLE2_MODELS",
    "agent_manager_for",
    "classify",
    "coerce",
    "current_runtime",
    "design_space",
    "effective_model",
    "maybe_current_runtime",
    "launch_resumable",
    "model_for",
    "models_covering",
    "use_runtime",
]
