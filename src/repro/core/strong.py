"""Simulated strong migration: resumable state-machine agents.

§3.5: "Strong migration moves a thread's stack along with heap state,
while weak migration just moves heap state.  Since the standard Java
virtual machine does not provide access to execution state, MAGE uses weak
migration."  CPython withholds execution state just the same — generator
and frame objects do not pickle — so true strong migration is as
unavailable here as it was on the JVM.

This module implements the classic workaround (used by Ara and the
continuation-passing agent systems the paper surveys): the *program
counter becomes data*.  A :class:`ResumableAgent` is written as a set of
named **stages**; the runtime records which stage comes next in ordinary
heap state, so an agent interrupted by a hop resumes exactly where it left
off at the destination — observably equivalent to strong migration for
programs expressed in stage form.

Example::

    class Crawler(ResumableAgent):
        def stage_collect(self, ctx):
            self.data.append(ctx.query_load())
            if len(self.data) < len(self.plan):
                return self.goto("collect", hop=self.plan[len(self.data)])
            return self.goto("summarize")

        def stage_summarize(self, ctx):
            self.summary = sum(self.data)
            return self.finish()

A stage returns one of three instructions: ``self.goto(stage)`` (run
another stage here), ``self.goto(stage, hop=node)`` (migrate, then resume
at that stage), or ``self.finish()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.agents import Agent, AgentContext
from repro.errors import MageError

#: Prefix that marks a method as a stage.
STAGE_PREFIX = "stage_"


@dataclass(frozen=True)
class _Instruction:
    """What a stage tells the scheduler to do next."""

    next_stage: str | None   # None = finished
    hop_to: str | None       # namespace to migrate to before resuming


class ResumableAgent(Agent):
    """An agent whose control state is explicit, hence migratable.

    Subclasses define ``stage_<name>(self, ctx)`` methods and set
    ``START`` (default ``"start"``).  The scheduler runs stages until one
    requests a hop (the agent migrates and resumes there) or finishes.
    """

    START = "start"

    #: Guard against runaway stage loops within a single namespace visit.
    MAX_STAGES_PER_VISIT = 1000

    def __init__(self) -> None:
        super().__init__()
        self.current_stage: str = self.START
        self.finished = False

    # -- instructions a stage may return --------------------------------------

    def goto(self, stage: str, hop: str | None = None) -> _Instruction:
        """Continue at ``stage`` — here, or at ``hop`` after migrating."""
        self._check_stage(stage)
        return _Instruction(next_stage=stage, hop_to=hop)

    def finish(self) -> _Instruction:
        """The agent's program has completed."""
        return _Instruction(next_stage=None, hop_to=None)

    # -- scheduler (runs inside the agent-manager arrival hook) -----------------

    def on_arrival(self, ctx: AgentContext) -> None:
        super().on_arrival(ctx)
        if self.finished:
            ctx.stay()
            return
        for _ in range(self.MAX_STAGES_PER_VISIT):
            stage_method = self._stage_method(self.current_stage)
            instruction = stage_method(ctx)
            if not isinstance(instruction, _Instruction):
                raise MageError(
                    f"stage {self.current_stage!r} returned "
                    f"{type(instruction).__name__}; stages must return "
                    "self.goto(...) or self.finish()"
                )
            if instruction.next_stage is None:
                self.finished = True
                ctx.stay()
                self.on_finished(ctx)
                return
            self.current_stage = instruction.next_stage
            if instruction.hop_to is not None:
                # The "program counter" (current_stage) is now heap state;
                # migrating here is the simulated strong migration.
                ctx.go(instruction.hop_to)
                return
        raise MageError(
            f"agent ran {self.MAX_STAGES_PER_VISIT} stages without hopping "
            "or finishing — runaway stage loop?"
        )

    def on_finished(self, ctx: AgentContext) -> None:
        """Hook invoked once, where the program completed."""

    # -- helpers -----------------------------------------------------------------

    def _stage_method(self, stage: str):
        method = getattr(self, STAGE_PREFIX + stage, None)
        if not callable(method):
            raise MageError(
                f"{type(self).__name__} defines no stage {stage!r} "
                f"(expected a {STAGE_PREFIX}{stage} method)"
            )
        return method

    def _check_stage(self, stage: str) -> None:
        self._stage_method(stage)  # raises if undefined

    def stages(self) -> list[str]:
        """All stage names this agent defines (sorted)."""
        return sorted(
            name[len(STAGE_PREFIX):]
            for name in dir(type(self))
            if name.startswith(STAGE_PREFIX)
            and callable(getattr(self, name, None))
        )


def launch_resumable(node, agent: ResumableAgent, name: str,
                     first_hop: str | None = None) -> None:
    """Start ``agent``'s program on ``node`` (or at ``first_hop``).

    A convenience over ``node.agents.launch``: resumable agents carry
    their own routing, so the itinerary is just the entry hop (defaulting
    to a run-in-place start on ``node``).
    """
    target = first_hop if first_hop is not None else node.node_id
    node.agents.launch(agent, name, (target,))
