"""Exception hierarchy for the MAGE reproduction.

Every error raised by this library derives from :class:`MageError`, so a
caller can catch the whole family with one ``except`` clause.  The hierarchy
mirrors the system's layering: transport errors at the bottom, RMI errors
above them, then runtime (migration / locking / registry) errors, and
finally errors specific to mobility attributes — most importantly
:class:`ImmobileObjectError`, the exception Table 2 of the paper specifies
for the RPC mobility attribute when its component is not at the expected
location.

Errors here cross the wire: a handler's exception is marshalled into the
reply and re-raised at the caller.  Classes whose ``__init__`` takes more
than a message string therefore override ``__reduce__`` to replay their
constructor arguments — the default ``Exception`` reduction replays
``self.args`` (the formatted message), which would fail to rebuild them
and, on the TCP transport, kill the shared connection the reply arrived
on.  :class:`LockMovedError` is the load-bearing case: the §4.4 chase
protocol *is* this exception crossing node boundaries.
"""

from __future__ import annotations

from typing import Any


class MageError(Exception):
    """Base class for all errors raised by the MAGE reproduction."""


class ConfigurationError(MageError):
    """The runtime or cluster was configured inconsistently."""


# ---------------------------------------------------------------------------
# Transport layer
# ---------------------------------------------------------------------------


class TransportError(MageError):
    """A message could not be delivered."""


class NodeUnreachableError(TransportError):
    """The destination node does not exist, has crashed, or is partitioned."""

    def __init__(self, node_id: str, reason: str = "unreachable") -> None:
        super().__init__(f"node {node_id!r} is {reason}")
        self.node_id = node_id
        self.reason = reason

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.node_id, self.reason))


class MessageLostError(TransportError):
    """A single message transmission was lost.

    The transport retries lost messages; this surfaces only when the retry
    budget is exhausted.
    """


class CallTimeoutError(TransportError):
    """A request/response exchange did not complete within its deadline."""


class CallCancelledError(TransportError):
    """The caller abandoned the exchange via ``CallFuture.cancel()``.

    Raised by ``result()`` on a cancelled future.  Cancellation is a
    *client-side* act: the request may still execute at the destination
    (its reply is dropped), exactly like a timed-out exchange.
    """


# ---------------------------------------------------------------------------
# RMI substrate
# ---------------------------------------------------------------------------


class RmiError(MageError):
    """Base class for RMI-level failures."""


class MarshalError(RmiError):
    """A value could not be marshalled or unmarshalled."""


class NamingError(RmiError):
    """Base class for registry naming failures."""


class NotBoundError(NamingError):
    """Lookup of a name that has no binding in the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(f"name {name!r} is not bound")
        self.name = name

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.name,))


class AlreadyBoundError(NamingError):
    """``bind`` of a name that already has a binding (use ``rebind``)."""

    def __init__(self, name: str) -> None:
        super().__init__(f"name {name!r} is already bound")
        self.name = name

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.name,))


class RemoteInvocationError(RmiError):
    """A servant raised while executing a remote invocation.

    The remote traceback text is preserved so callers can diagnose the
    failure without access to the remote namespace.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.args[0], self.remote_traceback))


class NoSuchObjectError(RmiError):
    """An invocation arrived for a servant the target namespace lacks."""

    def __init__(self, name: str, node_id: str = "") -> None:
        where = f" on node {node_id!r}" if node_id else ""
        super().__init__(f"no servant {name!r}{where}")
        self.name = name
        self.node_id = node_id

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.name, self.node_id))


# ---------------------------------------------------------------------------
# MAGE runtime
# ---------------------------------------------------------------------------


class RuntimeMageError(MageError):
    """Base class for MAGE runtime-system failures."""


class ComponentNotFoundError(RuntimeMageError):
    """The registry's forwarding chain did not lead to the component."""

    def __init__(self, name: str, detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(f"component {name!r} could not be found{suffix}")
        self.name = name
        self.detail = detail

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.name, self.detail))


class ClassTransferError(RuntimeMageError):
    """A class definition could not be shipped or loaded."""


class MigrationError(RuntimeMageError):
    """An object move failed part-way."""


class ObjectPinnedError(MigrationError):
    """The object is pinned to its namespace and refuses to move."""


class LockError(RuntimeMageError):
    """Base class for stay/move locking failures."""


class LockMovedError(LockError):
    """The object moved while this request waited; re-request at the new host.

    Carries the new location so the requester can retry without another
    registry walk.
    """

    def __init__(self, name: str, new_location: str) -> None:
        super().__init__(f"object {name!r} moved to {new_location!r} while lock waited")
        self.name = name
        self.new_location = new_location

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.name, self.new_location))


class LockTimeoutError(LockError):
    """A lock request waited longer than its deadline."""


# ---------------------------------------------------------------------------
# Mobility attributes (the paper's core contribution)
# ---------------------------------------------------------------------------


class AttributeError_(MageError):
    """Base class for mobility-attribute failures.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ImmobileObjectError(AttributeError_):
    """RPC's Table 2 exception: the component is not where RPC requires it.

    The paper provides the RPC attribute "so that a programmer could use it
    to denote an immobile object.  MAGE RPC throws an exception if it does
    not find its object on its target."
    """

    def __init__(self, name: str, expected: str, actual: str) -> None:
        super().__init__(
            f"RPC-bound object {name!r} expected on {expected!r} "
            f"but found on {actual!r}"
        )
        self.name = name
        self.expected = expected
        self.actual = actual

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.name, self.expected, self.actual))


class CoercionError(AttributeError_):
    """No coercion applies for a model/location scenario (e.g. COD n/a cell)."""


class TargetRestrictedError(AttributeError_):
    """A restricted attribute refused a target outside its allowed set."""


# ---------------------------------------------------------------------------
# Extensions (§7 future work: access control, resource allocation)
# ---------------------------------------------------------------------------


class ExtensionError(MageError):
    """Base class for the §7 extension models."""


class AccessDeniedError(ExtensionError):
    """The access-control model denied a move or invocation."""

    def __init__(self, principal: str, action: str, resource: str) -> None:
        super().__init__(f"principal {principal!r} may not {action} {resource!r}")
        self.principal = principal
        self.action = action
        self.resource = resource

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.principal, self.action, self.resource))


class ResourceExhaustedError(ExtensionError):
    """The resource-allocation model rejected an admission request."""

    def __init__(self, node_id: str, resource: str,
                 requested: float, available: float) -> None:
        super().__init__(
            f"node {node_id!r} cannot admit {requested} {resource} "
            f"(available: {available})"
        )
        self.node_id = node_id
        self.resource = resource
        self.requested = requested
        self.available = available

    def __reduce__(self) -> tuple[Any, ...]:
        return (type(self), (self.node_id, self.resource, self.requested,
                             self.available))
