"""Bench support: workloads, timing harness, table rendering, paper numbers."""

from repro.bench.harness import InvocationSeries, measure_invocations
from repro.bench.paper import BASELINE, PAPER_TABLE3, PaperRow, TABLE3_ORDERINGS, paper_ratio
from repro.bench.tables import render_arrows, render_table
from repro.bench.workloads import Counter, GeoDataFilterImpl, PrintServer, ProbeAgent

__all__ = [
    "BASELINE",
    "Counter",
    "GeoDataFilterImpl",
    "InvocationSeries",
    "PAPER_TABLE3",
    "PaperRow",
    "PrintServer",
    "ProbeAgent",
    "TABLE3_ORDERINGS",
    "measure_invocations",
    "paper_ratio",
    "render_arrows",
    "render_table",
]
