"""Shared workload servants for tests, examples, and benches.

These classes live in a real module (not a REPL) so their source is
retrievable — the requirement for mobility (see
:mod:`repro.rmi.classdesc`).

* :class:`Counter` — the paper's Table 3 test object: "This class has a
  single integer attribute, which it increments, so its marshalling
  overhead is minimal."
* :class:`GeoDataFilterImpl` — §3.6's oil-exploration filter.
* :class:`PrintServer` — §3.3's CLE printer-management scenario.
* :class:`ProbeAgent` — an itinerary-following agent that samples host
  load at every hop (the MA substrate's test workload).
"""

from __future__ import annotations


class Counter:
    """Table 3's minimal servant: one integer field plus an increment."""

    def __init__(self, start: int = 0) -> None:
        self.value = int(start)

    def increment(self) -> int:
        """Add one and return the new value."""
        self.value += 1
        return self.value

    def add(self, amount: int) -> int:
        """Add ``amount`` and return the new value."""
        self.value += amount
        return self.value

    def get(self) -> int:
        """Current value."""
        return self.value


class GeoDataFilterImpl:
    """§3.6's sensor-side component: gathers and filters geologic data.

    "These sensors are generating an enormous amount of data, which we
    would like to filter in place, at the sensor."  Raw readings are fed
    in (or synthesized); ``filter_data`` keeps the interesting fraction;
    ``process_data`` reduces the filtered set to a survey result back at
    the lab.
    """

    def __init__(self, threshold: float = 0.5) -> None:
        self.threshold = float(threshold)
        self.raw: list[float] = []
        self.filtered: list[float] = []
        self.sites_surveyed: list[str] = []

    def ingest(self, readings: list[float]) -> int:
        """Accept raw sensor readings; returns how many are buffered."""
        self.raw.extend(float(r) for r in readings)
        return len(self.raw)

    def filter_data(self) -> int:
        """Keep readings above the threshold; returns how many survived.

        Runs *at the sensor* under REV — the point of the example is that
        the enormous raw buffer never crosses the network.
        """
        kept = [r for r in self.raw if r >= self.threshold]
        self.filtered.extend(kept)
        self.raw.clear()
        return len(kept)

    def mark_site(self, site: str) -> None:
        """Record which sensor field this data came from."""
        self.sites_surveyed.append(site)

    def process_data(self) -> dict:
        """Reduce filtered data to a survey summary (run back at the lab)."""
        if not self.filtered:
            return {"samples": 0, "mean": 0.0, "peak": 0.0,
                    "sites": list(self.sites_surveyed)}
        return {
            "samples": len(self.filtered),
            "mean": sum(self.filtered) / len(self.filtered),
            "peak": max(self.filtered),
            "sites": list(self.sites_surveyed),
        }


class PrintServer:
    """§3.3's mobile print-server component.

    "Clients could fruitfully use CLE to invoke a print server component
    while the job controller moved the print server components around the
    network in response to printer availability."
    """

    def __init__(self, server_id: str = "ps") -> None:
        self.server_id = server_id
        self.jobs_printed: list[str] = []

    def print_job(self, job: str) -> str:
        """Print ``job``; returns a receipt naming this server."""
        self.jobs_printed.append(job)
        return f"{self.server_id}:{len(self.jobs_printed)}:{job}"

    def queue_length(self) -> int:
        """How many jobs this server has printed."""
        return len(self.jobs_printed)


class ProbeAgent:
    """A mobile agent that samples host load at every itinerary stop."""

    def __init__(self) -> None:
        self.visited: list[str] = []
        self.samples: dict[str, float] = {}
        self.completed = False

    def on_arrival(self, ctx) -> None:
        """Record the stop and sample its host load."""
        self.visited.append(ctx.node_id)
        self.samples[ctx.node_id] = ctx.query_load()

    def on_complete(self, ctx) -> None:
        """Mark the tour finished."""
        self.completed = True

    def report(self) -> dict:
        """The tour's findings: stops, load samples, completion."""
        return {
            "visited": list(self.visited),
            "samples": dict(self.samples),
            "completed": self.completed,
        }
