"""ASCII table rendering for the bench harness.

Every table/figure bench prints its result in the same plain format so
``pytest benchmarks/ --benchmark-only -s`` output reads like the paper's
tables next to ours.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Monospace table with a header rule; cells are str()'d."""
    cells = [[str(c) for c in row] for row in rows]
    names = [str(h) for h in headers]
    widths = [len(h) for h in names]
    for row in cells:
        if len(row) != len(names):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(names)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(names))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_arrows(title: str, arrows: Sequence[str]) -> str:
    """Numbered message-sequence rendering (the protocol-figure format)."""
    lines = [title, "=" * len(title)]
    for i, arrow in enumerate(arrows, start=1):
        lines.append(f"  {i}. {arrow}")
    return "\n".join(lines)
