"""The five measured models of Table 3, as reusable operations.

§5's method, model for model:

* **Java's RMI** — the baseline: a bare stub invocation over the RMI
  substrate.  The stub is resolved at setup, so the measured operation is
  exactly one marshalled round trip (the paper's 20 ms amortized row).
* **Mage's RMI** — the RPC mobility attribute: "a very thin wrapper of a
  standard RMI call, since it simply returns a stub".  Constructed inside
  the first measured invocation, so the cold column includes the
  attribute's initial registry walk to the origin server.
* **Traditional COD** — "the test object's class file … is migrated to the
  local host, the local host instantiates a test object and invokes the
  appropriate method … the results are returned (local)".
* **Traditional REV** — "the reverse.  The class file is local and migrated
  to the remote host where it is instantiated and invoked.  The result is
  sent back to the local host."
* **MA** — "similar to TREV except that the result stays at the remote
  host" (fire-and-forget invocation).

Each builder returns a zero-argument operation performing one full model
invocation; the harness measures it cold and amortized.  Lazy construction
keeps every cold-start cost (attribute finds, class transfers) inside the
measured window, matching the paper's "one-time startup cost of priming
the MAGE engine".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.bench.workloads import Counter
from repro.cluster.cluster import Cluster
from repro.core.factory import FactoryMode
from repro.core.models import COD, MAgent, REV, RPC
from repro.util.ids import fresh_token

#: Node names used by every Table 3 setup: the measuring client and the
#: remote host, mirroring the paper's two-machine testbed.
CLIENT = "client"
SERVER = "server"


def two_nodes() -> list[str]:
    """The standard Table 3 topology: measuring client + remote host."""
    return [CLIENT, SERVER]


def bare_rmi_op(cluster: Cluster) -> Callable[[], Any]:
    """Java's RMI: a resolved stub, one marshalled round trip per call."""
    server = cluster[SERVER]
    server.register("rmi-counter", Counter())
    client_ns = cluster[CLIENT].namespace
    stub = client_ns.naming.lookup(f"mage://{SERVER}/rmi-counter")

    def operation() -> Any:
        return stub.increment()

    return operation


def mage_rmi_op(cluster: Cluster) -> Callable[[], Any]:
    """Mage's RMI: the RPC attribute around the same remote counter."""
    server = cluster[SERVER]
    server.register("rpc-counter", Counter())
    client_ns = cluster[CLIENT].namespace
    state: dict[str, Any] = {}

    def operation() -> Any:
        if "rpc" not in state:
            state["rpc"] = RPC(
                "rpc-counter", target=SERVER,
                runtime=client_ns, origin=SERVER,
            )
        stub = state["rpc"].bind()
        return stub.increment()

    return operation


def tcod_op(cluster: Cluster) -> Callable[[], Any]:
    """Traditional COD: fetch the class here, instantiate locally, invoke."""
    cluster[SERVER].register_class(Counter)
    client_ns = cluster[CLIENT].namespace
    state: dict[str, Any] = {}

    def operation() -> Any:
        if "cod" not in state:
            state["cod"] = COD(
                f"cod-counter-{fresh_token('t3')}",
                class_name="Counter",
                source=SERVER,
                mode=FactoryMode.TRADITIONAL,
                runtime=client_ns,
            )
        stub = state["cod"].bind()
        return stub.increment()

    return operation


def trev_op(cluster: Cluster) -> Callable[[], Any]:
    """Traditional REV: push the class to the server, instantiate, invoke."""
    cluster[CLIENT].register_class(Counter)
    client_ns = cluster[CLIENT].namespace
    state: dict[str, Any] = {}

    def operation() -> Any:
        if "rev" not in state:
            state["rev"] = REV(
                "Counter", f"rev-counter-{fresh_token('t3')}", SERVER,
                mode=FactoryMode.TRADITIONAL,
                runtime=client_ns,
            )
        stub = state["rev"].bind()
        return stub.increment()

    return operation


def ma_op(cluster: Cluster) -> Callable[[], Any]:
    """MA: deploy to the server like TREV, invoke one-way (result stays)."""
    cluster[CLIENT].register_class(Counter)
    client_ns = cluster[CLIENT].namespace

    def operation() -> Any:
        agent = MAgent(
            f"ma-counter-{fresh_token('t3')}", SERVER,
            class_name="Counter", runtime=client_ns,
        )
        agent.bind()
        agent.send("increment")
        return None

    return operation


#: Label → operation builder, in the paper's Table 3 row order.
TABLE3_MODELS: dict[str, Callable[[Cluster], Callable[[], Any]]] = {
    "Java's RMI": bare_rmi_op,
    "Mage's RMI": mage_rmi_op,
    "Traditional COD (TCOD)": tcod_op,
    "Traditional REV (TREV)": trev_op,
    "MA": ma_op,
}
