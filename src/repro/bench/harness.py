"""Timing harness for the Table 3 reproduction.

§5's method: measure each model's *invocation* — the full bind-and-invoke
that the model implies — once from cold ("single invocation time … the
one-time startup cost of priming the MAGE engine") and amortized over 10
consecutive invocations.

We record, per invocation:

* **virtual milliseconds** — the simulated network's clock advance: message
  count × calibrated latency, the paper-comparable number;
* **wall microseconds** — real CPU cost of the in-process implementation;
* **remote messages** — the mechanistic explanation (the paper attributes
  every multiple to "multiple calls to Java's RMI").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.cluster import Cluster


@dataclass
class InvocationSeries:
    """Per-invocation measurements for one model."""

    label: str
    virtual_ms: list[float] = field(default_factory=list)
    wall_us: list[float] = field(default_factory=list)
    remote_messages: list[int] = field(default_factory=list)

    @property
    def single_ms(self) -> float:
        """First (cold) invocation — the paper's "Single Invocation Time"."""
        return self.virtual_ms[0]

    @property
    def amortized_ms(self) -> float:
        """Mean over the series — the paper's "Amortized (10)" column."""
        return sum(self.virtual_ms) / len(self.virtual_ms)

    @property
    def amortized_wall_us(self) -> float:
        return sum(self.wall_us) / len(self.wall_us)

    @property
    def warm_messages(self) -> int:
        """Remote messages per invocation once caches are warm."""
        return self.remote_messages[-1]

    def row(self) -> tuple:
        """A Table 3 row: model, single ms, amortized ms, msgs, wall µs."""
        return (
            self.label,
            f"{self.single_ms:.1f}",
            f"{self.amortized_ms:.1f}",
            f"{self.remote_messages[0]}/{self.warm_messages}",
            f"{self.amortized_wall_us:.0f}",
        )


def measure_invocations(
    cluster: Cluster,
    label: str,
    operation: Callable[[], Any],
    iterations: int = 10,
) -> InvocationSeries:
    """Run ``operation`` ``iterations`` times, measuring each invocation.

    ``operation`` performs one full model invocation (bind + invoke).  The
    cluster must use the simulated network with a virtual clock for the
    virtual-time columns to be meaningful.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    series = InvocationSeries(label=label)
    clock = cluster.clock
    trace = cluster.trace
    for _ in range(iterations):
        virtual_before = clock.now_ms()
        messages_before = trace.remote_message_count()
        wall_before = time.perf_counter()
        operation()
        series.wall_us.append((time.perf_counter() - wall_before) * 1e6)
        series.virtual_ms.append(clock.now_ms() - virtual_before)
        series.remote_messages.append(
            trace.remote_message_count() - messages_before
        )
    return series
