"""The paper's reported numbers, for side-by-side comparison.

Testbed (§5): two dual-processor 450 MHz Pentium III machines, 256 MB RAM,
Linux 2.2.16, 10 Mb/s Ethernet, Sun JDK 1.2.2.  Absolute times from 2001
hardware are not reproducible targets; the *shape* — each model's cost as
a multiple of a bare RMI call — is what the reproduction must match.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperRow:
    """One row of Table 3 (times in milliseconds)."""

    model: str
    single_ms: float
    amortized_ms: float


#: Table 3: MAGE Overhead Measurements.
PAPER_TABLE3: dict[str, PaperRow] = {
    "Java's RMI": PaperRow("Java's RMI", 33.0, 20.0),
    "Mage's RMI": PaperRow("Mage's RMI", 34.0, 23.0),
    "Traditional COD (TCOD)": PaperRow("Traditional COD (TCOD)", 66.0, 22.0),
    "Traditional REV (TREV)": PaperRow("Traditional REV (TREV)", 130.0, 82.0),
    "MA": PaperRow("MA", 110.0, 63.0),
}

#: The baseline row every ratio is computed against.
BASELINE = "Java's RMI"


def paper_ratio(model: str) -> float:
    """The paper's amortized cost of ``model`` relative to bare RMI."""
    return PAPER_TABLE3[model].amortized_ms / PAPER_TABLE3[BASELINE].amortized_ms


#: Who must beat whom (amortized) for the reproduction to count as matching
#: the paper's shape.  Read "a < b" per tuple.
TABLE3_ORDERINGS: tuple[tuple[str, str], ...] = (
    ("Java's RMI", "Mage's RMI"),
    ("Mage's RMI", "MA"),
    ("Traditional COD (TCOD)", "MA"),
    ("MA", "Traditional REV (TREV)"),
)
