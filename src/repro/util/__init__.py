"""Utility layer: identifiers, URLs, and clocks shared by every subsystem."""

from repro.util.clock import Clock, SimClock, Stopwatch, WallClock
from repro.util.ids import MageUrl, fresh_token, validate_component_name, validate_node_id

__all__ = [
    "Clock",
    "SimClock",
    "Stopwatch",
    "WallClock",
    "MageUrl",
    "fresh_token",
    "validate_component_name",
    "validate_node_id",
]
