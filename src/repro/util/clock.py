"""Clocks.

The paper's Table 3 reports wall-clock milliseconds on a 2001 testbed
(two 450 MHz machines, 10 Mb/s Ethernet).  An in-process reproduction
cannot and should not try to match those absolute numbers directly; what
must match is the *shape* — MAGE models cost small integer multiples of a
bare RMI call because each is a composition of RMI calls.

We therefore run the simulated network against a :class:`SimClock`: a
virtual millisecond counter advanced by the network for every message it
delivers (and by servers for modelled processing costs).  Sequentially
executed operations accumulate exactly the latency a real network would
impose, with zero real-time delay and full determinism.  Benchmarks report
both virtual milliseconds (paper-comparable) and real wall time.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """A source of milliseconds that the network and runtime charge time to."""

    @abstractmethod
    def now_ms(self) -> float:
        """Current reading in milliseconds."""

    @abstractmethod
    def advance(self, ms: float) -> None:
        """Charge ``ms`` milliseconds of simulated delay to the clock."""


class WallClock(Clock):
    """Real time.  ``advance`` actually sleeps, so latency becomes real delay."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now_ms(self) -> float:
        return (time.monotonic() - self._origin) * 1000.0

    def advance(self, ms: float) -> None:
        if ms > 0:
            time.sleep(ms / 1000.0)


class SimClock(Clock):
    """Virtual time: a thread-safe accumulator of charged milliseconds.

    Concurrent operations each charge the shared counter, so virtual time is
    meaningful for *sequentially executed* workloads (which is how the
    paper's Table 3 measures invocations).  Concurrency tests use the clock
    only as an event counter, never as a latency oracle.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)
        self._lock = threading.Lock()

    def now_ms(self) -> float:
        with self._lock:
            return self._now

    def advance(self, ms: float) -> None:
        if ms < 0:
            raise ValueError(f"cannot advance a clock by a negative amount: {ms}")
        with self._lock:
            self._now += ms


class Stopwatch:
    """Measures an interval on any :class:`Clock`.

    >>> clock = SimClock()
    >>> watch = Stopwatch(clock)
    >>> clock.advance(12.5)
    >>> watch.elapsed_ms()
    12.5
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._start = clock.now_ms()

    def restart(self) -> None:
        """Re-zero the interval at the current reading."""
        self._start = self._clock.now_ms()

    def elapsed_ms(self) -> float:
        """Milliseconds since construction or the last restart."""
        return self._clock.now_ms() - self._start
