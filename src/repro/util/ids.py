"""Identifiers and URLs.

MAGE names live in a global, system-wide namespace maintained by the MAGE
registry (paper §4.1).  A component is addressed by a plain string name, and
its *origin server* is the node whose registry first bound it — the paper's
§7 notes that clients must know this origin.  We expose that pairing as a
``mage://<node>/<name>`` URL, the analogue of an ``rmi://host/name`` URL.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Characters that may appear in node ids and component names.  Conservative
#: on purpose: identifiers travel inside wire messages and URL strings.
_IDENT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-."
)

_URL_SCHEME = "mage://"


def validate_node_id(node_id: str) -> str:
    """Return ``node_id`` if it is a legal node identifier, else raise."""
    _validate_ident(node_id, "node id")
    return node_id


def validate_component_name(name: str) -> str:
    """Return ``name`` if it is a legal component name, else raise."""
    _validate_ident(name, "component name")
    return name


def _validate_ident(value: str, what: str) -> None:
    if not isinstance(value, str):
        raise ConfigurationError(f"{what} must be a string, got {type(value).__name__}")
    if not value:
        raise ConfigurationError(f"{what} must be non-empty")
    bad = set(value) - _IDENT_CHARS
    if bad:
        raise ConfigurationError(
            f"{what} {value!r} contains illegal characters: {sorted(bad)!r}"
        )


@dataclass(frozen=True)
class MageUrl:
    """A ``mage://<node>/<name>`` address pairing a name with its origin node."""

    node_id: str
    name: str

    def __post_init__(self) -> None:
        validate_node_id(self.node_id)
        validate_component_name(self.name)

    @classmethod
    def parse(cls, url: str) -> "MageUrl":
        """Parse a ``mage://node/name`` string into a :class:`MageUrl`."""
        if not url.startswith(_URL_SCHEME):
            raise ConfigurationError(f"not a mage URL (missing {_URL_SCHEME!r}): {url!r}")
        rest = url[len(_URL_SCHEME):]
        node_id, sep, name = rest.partition("/")
        if not sep or not name:
            raise ConfigurationError(f"mage URL must be mage://node/name, got {url!r}")
        return cls(node_id=node_id, name=name)

    def __str__(self) -> str:
        return f"{_URL_SCHEME}{self.node_id}/{self.name}"


class _TokenCounter:
    """Process-wide monotonically increasing token source (thread safe).

    Lock-free: ``itertools.count.__next__`` is a single C call and thus
    atomic under the GIL.  Message ids are drawn on every remote call,
    so this sits on the transport hot path — a process-wide lock here
    is a measurable convoy point under concurrent callers.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def next(self, prefix: str) -> str:
        return f"{prefix}-{next(self._counter)}"


_TOKENS = _TokenCounter()


def fresh_token(prefix: str = "tok") -> str:
    """Return a process-unique token string, e.g. for lock and message ids.

    Deterministic (a counter, not randomness) so that traces are stable
    across runs — important for the figure-reproduction benches.
    """
    return _TOKENS.next(prefix)
