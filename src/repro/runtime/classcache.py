"""Per-namespace class cache.

§4.2: "MAGE currently clones classes, leaving behind a copy of each
object's class that visited a particular node … Caching class definitions
in this way is an optimization that can speed up object migration."

The cache holds two things per node:

* **descriptors** — class definitions this node can serve to others
  (keyed by class name, the node acts as a code server), and
* **clones** — exec-loaded class objects usable in this namespace
  (keyed by source hash, so a re-shipped identical class is not re-exec'd).

``enabled=False`` turns retention off: every arrival re-ships/reloads — the
ablation knob for the §4.2 caching claim.  Clones are per-namespace even
when identical, so class-level ("static") fields never alias across nodes,
reproducing the paper's stated no-coherency limitation.
"""

from __future__ import annotations

import threading

from repro.errors import ClassTransferError
from repro.rmi.classdesc import ClassDescriptor, describe_class, load_class


class ClassCache:
    """Descriptor store + clone cache for one namespace."""

    def __init__(self, node_id: str, enabled: bool = True) -> None:
        self.node_id = node_id
        self.enabled = enabled
        self._descriptors: dict[str, ClassDescriptor] = {}
        self._clones: dict[str, type] = {}  # source_hash -> loaded class
        self._natives: dict[str, type] = {}  # class_name -> locally defined class
        self._lock = threading.RLock()
        self.loads = 0       # exec count (ablation metric)
        self.hits = 0        # clone-cache hits (ablation metric)

    # -- serving side ---------------------------------------------------------

    def register_native(self, cls: type) -> ClassDescriptor:
        """Publish a locally defined class so it can be shipped from here."""
        desc = describe_class(cls)
        with self._lock:
            self._descriptors[desc.class_name] = desc
            self._natives[desc.class_name] = cls
        return desc

    def descriptor(self, class_name: str) -> ClassDescriptor:
        """The definition this node serves for ``class_name``."""
        with self._lock:
            desc = self._descriptors.get(class_name)
        if desc is None:
            raise ClassTransferError(
                f"node {self.node_id!r} serves no class {class_name!r}"
            )
        return desc

    def has_class(self, class_name: str) -> bool:
        """Whether this node can serve a definition for ``class_name``."""
        with self._lock:
            return class_name in self._descriptors

    def has_hash(self, source_hash: str) -> bool:
        """True when a clone for this exact source is already loaded here."""
        with self._lock:
            return source_hash in self._clones

    def clone_by_hash(self, source_hash: str) -> type:
        """The loaded clone for ``source_hash`` (caller checked :meth:`has_hash`)."""
        with self._lock:
            cls = self._clones.get(source_hash)
            if cls is not None:
                self.hits += 1
        if cls is None:
            raise ClassTransferError(
                f"node {self.node_id!r} caches no clone for hash {source_hash[:12]}"
            )
        return cls

    # -- receiving side ---------------------------------------------------------

    def store(self, desc: ClassDescriptor) -> None:
        """Install a descriptor that arrived over the wire."""
        with self._lock:
            self._descriptors[desc.class_name] = desc

    def load(self, desc: ClassDescriptor) -> type:
        """A class object for ``desc`` usable in this namespace.

        Clones are cached by source hash; with the cache disabled every call
        re-execs (and nothing is retained, forcing future re-transfers).
        """
        with self._lock:
            cached = self._clones.get(desc.source_hash)
            if cached is not None:
                self.hits += 1
                return cached
        cls = load_class(desc, self.node_id)
        with self._lock:
            self.loads += 1
            if self.enabled:
                self._clones[desc.source_hash] = cls
                self._descriptors[desc.class_name] = desc
        return cls

    def resolve(self, class_name: str) -> type:
        """A usable class for ``class_name``: native definition or loaded clone.

        Code defined in this namespace is used directly (its statics are the
        module's own); code that arrived over the wire resolves to this
        namespace's clone, loading it on first use.  Within a namespace,
        repeated instantiations therefore share class-level state, as they
        would inside one JVM.
        """
        with self._lock:
            native = self._natives.get(class_name)
            if native is not None:
                return native
            desc = self._descriptors.get(class_name)
            if desc is not None and desc.source_hash in self._clones:
                self.hits += 1
                return self._clones[desc.source_hash]
        if desc is not None:
            return self.load(desc)
        raise ClassTransferError(
            f"node {self.node_id!r} has no class {class_name!r} to instantiate"
        )

    def class_names(self) -> list[str]:
        """All class names this node holds definitions for (sorted)."""
        with self._lock:
            return sorted(self._descriptors)
