"""The MAGE registry (§4.1).

"The MAGE Registry wraps the RMI registry and tracks object locations …
For mobile objects, the registry maintains a list of all the objects that
have ever been moved into a namespace in the registry's JVM and their last
known location.  To find an object, the registry simply follows the chain
of forwarding addresses until it reaches the MAGE server currently hosting
the component.  As the result returns, each server updates its forwarding
address, thus collapsing the path.  Thus, the MAGE Registry defines a
global, system-wide namespace for both mobile objects and classes."

Implementation: each node keeps ``last_known[name] → node_id``, updated on
every arrival/departure.  ``find`` answers locally when the object is here;
otherwise it issues FIND to the last known location, which recurses.  The
request carries the hop list (cycle guard); when the answer flows back,
every hop rewrites its forwarding address to the final location — path
collapsing, which the ablation bench can disable.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import ComponentNotFoundError
from repro.net.message import MessageKind
from repro.net.transport import Transport
from repro.rmi.protocol import FindRequest
from repro.rmi.registry import RmiRegistry
from repro.runtime.store import ObjectStore

#: Upper bound on forwarding-chain walks; a longer chain means a routing
#: loop that the hop-list guard somehow missed.
MAX_HOPS = 64

#: Stripe count for the forwarding-address table.  Every remote find,
#: lock chase, and move consults or updates a hint, so one registry-wide
#: lock is a convoy point for concurrent request handlers; eight stripes
#: match the transport's waiter/reply-cache sharding.
_HINT_SHARDS = 8


class _HintShard:
    """One stripe of the forwarding-address table: own lock, own dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hints: dict[str, str] = {}

    def note(self, name: str, node_id: str) -> None:
        with self._lock:
            self._hints[name] = node_id

    def get(self, name: str) -> str | None:
        with self._lock:
            return self._hints.get(name)

    def snapshot(self) -> dict[str, str]:
        with self._lock:
            return dict(self._hints)

    def evict_pointing_at(self, node_id: str) -> int:
        with self._lock:
            stale = [name for name, where in self._hints.items()
                     if where == node_id]
            for name in stale:
                del self._hints[name]
        return len(stale)


class MageRegistry:
    """Location tracking + forwarding-chain resolution for one namespace."""

    def __init__(
        self,
        node_id: str,
        rmi_registry: RmiRegistry,
        store: ObjectStore,
        transport: Transport,
        path_collapsing: bool = True,
    ) -> None:
        self.node_id = node_id
        self.rmi = rmi_registry
        self._store = store
        self._transport = transport
        self.path_collapsing = path_collapsing
        self._shards = tuple(_HintShard() for _ in range(_HINT_SHARDS))
        self.chain_walks = 0   # remote FIND fan-outs issued (ablation metric)
        #: Location observers: every note_location (the single funnel all
        #: arrivals, departures, hints, and move commits flow through)
        #: fans out to these, and evict_hints mirrors to the eviction
        #: list.  The RMI client's tier-3 location cache subscribes here
        #: when the transport supports same-host fast paths.
        self._location_listeners: list[Callable[[str, str], None]] = []
        self._eviction_listeners: list[Callable[[str], None]] = []

    def _shard(self, name: str) -> _HintShard:
        return self._shards[hash(name) % _HINT_SHARDS]

    # -- bookkeeping called by the mover / runtime ----------------------------

    def record_arrival(self, name: str) -> None:
        """An object just moved into this namespace."""
        self.note_location(name, self.node_id)

    def record_departure(self, name: str, to_node: str) -> None:
        """An object just left for ``to_node``; keep a forwarding address."""
        self.note_location(name, to_node)

    def add_location_listener(self, listener: Callable[[str, str], None]) -> None:
        """Observe every location the funnel learns (``(name, node_id)``)."""
        self._location_listeners.append(listener)

    def add_eviction_listener(self, listener: Callable[[str], None]) -> None:
        """Observe hint evictions (``node_id`` whose hints were dropped)."""
        self._eviction_listeners.append(listener)

    def note_location(self, name: str, node_id: str) -> None:
        """Record learned knowledge of where ``name`` lives."""
        self._shard(name).note(name, node_id)
        for listener in self._location_listeners:
            listener(name, node_id)

    def observe_location(self, name: str, node_id: str) -> None:
        """Tell the listeners without touching the forwarding table.

        For signals the hint table deliberately ignores (a sequential
        lock chase's ``LockMovedError`` redirect, historically not a
        hint write): the tier-3 cache still wants them, but writing the
        shard here would change find behaviour every transport — and
        every figure trace — has always had.
        """
        for listener in self._location_listeners:
            listener(name, node_id)

    def forwarding_hint(self, name: str) -> str | None:
        """Last known location of ``name`` (None when never seen here)."""
        return self._shard(name).get(name)

    def forwarding_table(self) -> dict[str, str]:
        """Copy of the forwarding-address table (diagnostics, tests).

        Stitched shard-by-shard: consistent per stripe, not globally
        atomic — fine for its diagnostic consumers.
        """
        table: dict[str, str] = {}
        for shard in self._shards:
            table.update(shard.snapshot())
        return table

    def evict_hints(self, node_id: str) -> int:
        """Drop every forwarding address pointing at ``node_id``.

        Called when membership declares a host dead: a hint naming it
        would send every find/lock/move chase into a connect timeout
        before falling back.  Evicted names resolve through their origin
        hint (or a fresh walk) instead.  Returns how many were evicted.
        """
        evicted = sum(
            shard.evict_pointing_at(node_id) for shard in self._shards
        )
        for listener in self._eviction_listeners:
            listener(node_id)
        return evicted

    # -- resolution -------------------------------------------------------------

    def find(self, name: str, origin_hint: str | None = None) -> str:
        """Locate ``name``: the node id currently hosting it.

        Resolution order: this namespace's store, then the local forwarding
        table, then the origin server named in the component's URL (the
        §7 shared-knowledge requirement).
        """
        if self._store.contains(name):
            return self.node_id
        hint = self.forwarding_hint(name)
        if hint is None:
            hint = origin_hint
        if hint is None or hint == self.node_id:
            raise ComponentNotFoundError(
                name, f"no forwarding information at {self.node_id!r}"
            )
        location = self._walk(
            name, hint, hops=(self.node_id,), origin_hint=origin_hint or ""
        )
        if self.path_collapsing:
            self.note_location(name, location)
        return location

    def handle_find(self, request: FindRequest) -> str:
        """Server side of FIND: answer locally or follow our own hint.

        Falls back to the request's origin hint when this registry has no
        forwarding information — the first find issued by a fresh client
        knows only the component's origin server (§7).
        """
        name = request.name
        if self._store.contains(name):
            return self.node_id
        if self.node_id in request.hops:
            raise ComponentNotFoundError(
                name, f"forwarding cycle through {self.node_id!r}"
            )
        hint = self.forwarding_hint(name)
        if not request.verify and not request.hops and hint is not None \
                and hint != self.node_id:
            # Fast path: answer from the forwarding table without walking.
            # Only legal for the first (local) consultation; chain hops must
            # walk to termination to stay correct.
            return hint
        if hint is None or hint == self.node_id:
            origin = request.origin_hint
            if origin and origin != self.node_id and origin not in request.hops:
                hint = origin
            else:
                raise ComponentNotFoundError(
                    name, f"chain went cold at {self.node_id!r}"
                )
        location = self._walk(
            name, hint, hops=request.hops + (self.node_id,),
            origin_hint=request.origin_hint,
        )
        if self.path_collapsing:
            self.note_location(name, location)
        return location

    def _walk(
        self, name: str, next_node: str, hops: tuple[str, ...], origin_hint: str = ""
    ) -> str:
        if len(hops) > MAX_HOPS:
            raise ComponentNotFoundError(name, f"chain longer than {MAX_HOPS} hops")
        if next_node in hops:
            raise ComponentNotFoundError(
                name, f"forwarding cycle at {next_node!r} (hops: {hops})"
            )
        self.chain_walks += 1
        return self._transport.call(
            self.node_id, next_node, MessageKind.FIND,
            FindRequest(name=name, hops=hops, origin_hint=origin_hint),
        )
