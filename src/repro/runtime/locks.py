"""Mobile-object locking (§4.4).

Two nearly simultaneous invocations can apply different mobility attributes
to one object, each naming a different computation target; interleaving
their move protocols would clone or strand the object.  MAGE therefore
gives every mobile object a lock queue at its current host:

* a request whose target **is** the hosting namespace receives a **stay**
  lock (shared — many stays coexist, and the object cannot leave);
* any other target receives a **move** lock (exclusive — the holder may
  ship the object away).

"Because object migration is so expensive, MAGE's current locking
implementation unfairly favors invocations that stay-lock their object":
under the default *unfair* policy, stay requests are granted whenever no
move lock is held, jumping ahead of queued move requests (which can
starve).  The ``fair`` policy is strict FIFO — the ablation knob for the
fairness claim measured by the Figure 8 bench.

When the object departs, waiting requests fail with
:class:`~repro.errors.LockMovedError` carrying the new location, so the
requester re-acquires at the new host — locks do not follow the object.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import LockError, LockMovedError, LockTimeoutError
from repro.net.deadline import Deadline
from repro.util.ids import fresh_token

STAY = "stay"
MOVE = "move"


@dataclass(frozen=True)
class LockGrant:
    """A granted stay or move lock.

    ``provisional`` marks a grant issued so close to its caller's
    deadline expiry that the reply may be dropped by the abandoned
    waiter — the lock manager holds it under a short unacknowledged
    lease and auto-releases unless the caller confirms receipt
    (:meth:`LockManager.confirm`).
    """

    token: str
    kind: str          # STAY or MOVE
    name: str
    location: str      # namespace hosting the object when granted
    requester: str
    provisional: bool = False


@dataclass
class _Waiter:
    """One queued request (fair-mode ordering and wakeup bookkeeping)."""

    seq: int
    kind: str


@dataclass
class _NameLock:
    """Lock state for one mobile object at this host."""

    stay_holders: dict = field(default_factory=dict)   # token -> LockGrant
    move_holder: LockGrant | None = None
    queue: deque = field(default_factory=deque)        # of _Waiter
    moved_to: str | None = None
    next_seq: int = 0
    #: The object is mid-departure (a streamed transfer is in flight):
    #: new grants are withheld until the transfer commits (waiters then
    #: fail over to the new host) or aborts (grants resume here).
    departing: bool = False


@dataclass
class LockStats:
    """Counters the Figure 8 bench reads."""

    stays_granted: int = 0
    moves_granted: int = 0
    stay_waits: int = 0
    move_waits: int = 0
    moved_rejections: int = 0
    leases_reaped: int = 0  # provisional grants auto-released unconfirmed


class LockManager:
    """Stay/move lock queues for the objects hosted by one namespace.

    **Unacknowledged-grant leases** close the residual window the
    deadline machinery leaves open: a request granted *after* its
    caller's deadline expired is released at grant time, but one granted
    within roughly one-way transit of expiry can still have its reply
    dropped by the abandoned waiter — leaving the lock held forever
    (locks have no general lease to reclaim them).  A grant issued with
    less than ``at_risk_window_ms`` of deadline budget remaining is
    therefore *provisional*: unless the caller confirms receipt
    (:meth:`confirm`, the LOCK_CONFIRM round trip
    :class:`~repro.runtime.server.MageServer` performs automatically)
    within ``unacked_grant_ttl_ms``, a reaper releases it and waiters
    proceed.  Deadline-free acquisitions (every figure bench) are never
    provisional, so their message sequences are unchanged.
    """

    def __init__(self, node_id: str, fair: bool = False,
                 at_risk_window_ms: float = 50.0,
                 unacked_grant_ttl_ms: float = 500.0) -> None:
        self.node_id = node_id
        self.fair = fair
        self.at_risk_window_ms = at_risk_window_ms
        self.unacked_grant_ttl_ms = unacked_grant_ttl_ms
        self._names: dict[str, _NameLock] = {}
        self._unacked: set[str] = set()  # provisional tokens awaiting confirm
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self.stats = LockStats()

    # -- acquisition -----------------------------------------------------------

    def acquire(
        self,
        name: str,
        target: str,
        requester: str,
        timeout_ms: float | None = None,
        deadline: Deadline | None = None,
    ) -> LockGrant:
        """Block until the lock is granted.

        The kind is decided here, not by the caller: stay if ``target`` is
        this namespace, move otherwise (paper §4.4).

        The wait is bounded by ``timeout_ms`` and/or ``deadline`` — the
        tighter wins.  The dispatcher passes the request's propagated
        dispatch deadline here, so a queued lock request never outlives
        the budget of the caller that sent it.

        Raises :class:`LockMovedError` if the object departs while waiting
        and :class:`LockTimeoutError` on deadline expiry.
        """
        kind = STAY if target == self.node_id else MOVE
        if timeout_ms is not None and timeout_ms < 0:
            raise LockError(f"timeout_ms must be non-negative, got {timeout_ms}")
        # Only the *propagated* deadline (a remote caller's budget riding
        # the wire) can strand a grant in flight; a locally supplied
        # timeout_ms bounds a blocking call that is right here to receive
        # the grant, so it never makes one provisional.
        wire_deadline = deadline
        if timeout_ms is not None:
            deadline = Deadline.tighter(deadline, Deadline.after_ms(timeout_ms))
        with self._cond:
            state = self._names.setdefault(name, _NameLock())
            if state.moved_to is not None:
                self.stats.moved_rejections += 1
                raise LockMovedError(name, state.moved_to)
            waiter = _Waiter(seq=state.next_seq, kind=kind)
            state.next_seq += 1
            state.queue.append(waiter)
            first_pass = True
            try:
                while True:
                    if state.moved_to is not None:
                        self.stats.moved_rejections += 1
                        raise LockMovedError(name, state.moved_to)
                    if self._grantable(state, waiter):
                        state.queue.remove(waiter)
                        return self._grant_locked(state, name, kind, requester,
                                           wire_deadline)
                    if first_pass:
                        first_pass = False
                        if kind == STAY:
                            self.stats.stay_waits += 1
                        else:
                            self.stats.move_waits += 1
                    remaining = None
                    if deadline is not None:
                        remaining = deadline.remaining_s()
                        if remaining <= 0:
                            raise LockTimeoutError(
                                f"{kind} lock on {name!r} timed out "
                                f"(waited out its deadline"
                                + (f"; timeout_ms={timeout_ms}" if timeout_ms
                                   is not None else "") + ")"
                            )
                    self._cond.wait(timeout=remaining)
            except BaseException:
                if waiter in state.queue:
                    state.queue.remove(waiter)
                raise

    def _grantable(self, state: _NameLock, waiter: _Waiter) -> bool:
        if state.departing:
            # A streamed transfer is in flight: granting now would let a
            # stay-lock holder observe the object while the commit is
            # about to evict it (the old single-frame transfer window was
            # one call wide; the streaming window is long enough that this
            # race must be closed, not ignored).  Waiters queue and are
            # woken by the departure's commit or abort.
            return False
        if self.fair:
            # Strict FIFO: only the head of the queue may be considered,
            # and it needs full compatibility with current holders.
            if state.queue[0] is not waiter:
                return False
            if waiter.kind == STAY:
                return state.move_holder is None
            return state.move_holder is None and not state.stay_holders
        # Unfair (paper default): stays bypass any queued moves.
        if waiter.kind == STAY:
            return state.move_holder is None
        # Moves wait for exclusivity and go FIFO among themselves.
        earlier_move_waiting = any(
            w.kind == MOVE and w.seq < waiter.seq for w in state.queue
        )
        return (
            state.move_holder is None
            and not state.stay_holders
            and not earlier_move_waiting
        )

    def _grant_locked(self, state: _NameLock, name: str, kind: str,
                      requester: str,
                      wire_deadline: Deadline | None = None) -> LockGrant:
        provisional = (
            wire_deadline is not None
            and wire_deadline.remaining_ms() <= self.at_risk_window_ms
        )
        grant = LockGrant(
            token=fresh_token("lock"),
            kind=kind,
            name=name,
            location=self.node_id,
            requester=requester,
            provisional=provisional,
        )
        if kind == STAY:
            state.stay_holders[grant.token] = grant
            self.stats.stays_granted += 1
        else:
            state.move_holder = grant
            self.stats.moves_granted += 1
        if provisional:
            # The reply races the caller's expiring wait: hold the grant
            # under an unacknowledged lease and reap it unless the caller
            # confirms receipt in time.  (Daemon timer: a reap racing a
            # confirm or release is a no-op — whoever removes the token
            # from the unacked set first wins.)
            self._unacked.add(grant.token)
            timer = threading.Timer(
                self.unacked_grant_ttl_ms / 1000.0,
                self._reap_unacked, args=(name, grant.token),
            )
            timer.daemon = True
            timer.start()
        return grant

    # -- unacknowledged-grant leases -------------------------------------------

    def confirm(self, name: str, token: str) -> bool:
        """The caller acknowledges a provisional grant.

        Returns whether the grant is **still held** — the lease then
        becomes a normal grant.  ``False`` means the reaper won the
        race: the lock was auto-released (and may already be granted to
        a queued waiter), so the confirming caller must treat its
        acquisition as failed rather than proceed on a dead grant.
        Idempotent for already-confirmed live grants.
        """
        with self._cond:
            self._unacked.discard(token)
            state = self._names.get(name)
            if state is None:
                return False
            return (
                token in state.stay_holders
                or (state.move_holder is not None
                    and state.move_holder.token == token)
            )

    def _reap_unacked(self, name: str, token: str) -> None:
        """Lease expiry: auto-release a still-unconfirmed provisional grant."""
        with self._cond:
            if token not in self._unacked:
                return  # confirmed (or already released) in time
            self._unacked.discard(token)
            state = self._names.get(name)
            if state is None:
                return
            if token in state.stay_holders:
                del state.stay_holders[token]
            elif state.move_holder is not None and state.move_holder.token == token:
                state.move_holder = None
            else:
                return  # released through the normal path meanwhile
            self.stats.leases_reaped += 1
            self._maybe_forget_locked(name, state)
            self._cond.notify_all()

    # -- release / movement ------------------------------------------------------

    def release(self, name: str, token: str) -> None:
        """Release a grant; wakes compatible waiters."""
        with self._cond:
            state = self._names.get(name)
            if state is None:
                raise LockError(f"no lock state for {name!r} at {self.node_id!r}")
            if token in state.stay_holders:
                del state.stay_holders[token]
            elif state.move_holder is not None and state.move_holder.token == token:
                state.move_holder = None
            else:
                raise LockError(f"token {token!r} holds no lock on {name!r}")
            self._unacked.discard(token)  # an explicit release beats the reaper
            self._maybe_forget_locked(name, state)
            self._cond.notify_all()

    def mark_moved(self, name: str, new_location: str) -> None:
        """The object departed: fail waiters over to the new host."""
        with self._cond:
            state = self._names.setdefault(name, _NameLock())
            state.moved_to = new_location
            state.departing = False
            self._cond.notify_all()

    def mark_arrived(self, name: str) -> None:
        """The object (re-)arrived here: accept lock requests again."""
        with self._cond:
            state = self._names.setdefault(name, _NameLock())
            state.moved_to = None
            state.departing = False
            self._cond.notify_all()

    def begin_departure(self, name: str) -> None:
        """A streamed transfer of ``name`` is starting: withhold new grants.

        Requests arriving during the stream queue instead of being
        granted; :meth:`mark_moved` (commit) fails them over to the new
        host and :meth:`abort_departure` (stream failed) resumes granting
        here.  Idempotent; purely local (no messages), so traces are
        unchanged.
        """
        with self._cond:
            state = self._names.setdefault(name, _NameLock())
            state.departing = True

    def abort_departure(self, name: str) -> None:
        """The streamed transfer failed: the object stays; grants resume."""
        with self._cond:
            state = self._names.get(name)
            if state is None:
                return
            state.departing = False
            self._maybe_forget_locked(name, state)
            self._cond.notify_all()

    def _maybe_forget_locked(self, name: str, state: _NameLock) -> None:
        """Drop empty bookkeeping so the table doesn't grow without bound."""
        if (
            not state.stay_holders
            and state.move_holder is None
            and not state.queue
            and state.moved_to is None
            and not state.departing
        ):
            self._names.pop(name, None)

    # -- queries -------------------------------------------------------------------

    def holds_move_lock(self, name: str, token: str) -> bool:
        """True if ``token`` is the current move-lock holder for ``name``."""
        with self._mutex:
            state = self._names.get(name)
            return (
                state is not None
                and state.move_holder is not None
                and state.move_holder.token == token
            )

    def has_activity(self, name: str) -> bool:
        """Holders or waiters exist (a move without a token must be refused)."""
        with self._mutex:
            state = self._names.get(name)
            if state is None:
                return False
            return bool(
                state.stay_holders or state.move_holder is not None or state.queue
            )

    def snapshot(self, name: str) -> dict:
        """Diagnostic view of one object's lock state."""
        with self._mutex:
            state = self._names.get(name)
            if state is None:
                return {"stays": 0, "move": False, "queued": 0,
                        "moved_to": None, "departing": False}
            return {
                "stays": len(state.stay_holders),
                "move": state.move_holder is not None,
                "queued": len(state.queue),
                "moved_to": state.moved_to,
                "departing": state.departing,
            }
