"""``MageServer`` — the home interface (§4.1).

"The ``MageServerImpl`` class implements ``MageServer`` and communicates
with local mobility attributes … On the behalf of mobility attributes,
these classes query the registry, lock objects to their current namespace
and cooperate to move objects and classes."

Every operation a mobility attribute's ``bind`` needs is here:

=================  ==========================================================
``register``       publish a component in this namespace (it becomes the
                   component's origin server)
``find``           locate a component (local registry consultation +
                   forwarding-chain walk; Figure 7's messages 1–2)
``move``           weakly migrate a component (MOVE_REQUEST / OBJECT_TRANSFER;
                   Figure 7's messages 3–5)
``fetch_class``    pull a class definition here (the COD direction), with
                   conditional transfer against the local cache
``push_class``     push a class definition to a node (the REV direction),
                   probing the remote cache first
``instantiate``    create an object from a cached class at any node (the
                   REV/COD factory semantics of §4.2)
``lock/unlock``    stay/move locking at the object's current host, with
                   relocation chasing when the object moves mid-request
``stub``           a live proxy for invoking the component (Figure 7's 6–7)
=================  ==========================================================

Multi-node operations are *scatter-gather* over the transport's
future-returning calls (``call_async``/``call_many_async``):
``push_class_many`` fans a class out to N targets, ``query_load_many`` and
``ping_many`` sweep N hosts, and ``locate_any`` probes N forwarding chains
in parallel — each priced at one round-trip latency (plus straggler time)
instead of N on the pipelined TCP transport, and executing as the exact
sequential message sequence on the deterministic simulated network.

Every multi-node operation takes one optional
:class:`~repro.net.deadline.Deadline` — a single end-to-end budget for
the whole fan-out or chase, carried hop to hop in the message headers —
and the operations that only need their *first* useful answer
(``locate_any``, hedged ``lock``/``move``) collect in completion order
and **cancel** their losing probes, so one hung host costs a round trip,
not an io-timeout window.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Sequence

from repro.errors import (
    CallCancelledError,
    CallTimeoutError,
    ClassTransferError,
    ComponentNotFoundError,
    LockError,
    LockMovedError,
    LockTimeoutError,
    MigrationError,
    NoSuchObjectError,
)
from repro.net.deadline import Deadline, effective_deadline
from repro.net.message import MessageKind
from repro.net.transport import CallFuture, Transport, gather
from repro.rmi.classdesc import ClassDescriptor
from repro.rmi.client import RmiClient
from repro.rmi.marshal import marshal_call
from repro.rmi.protocol import (
    BindRequest,
    ClassPush,
    ClassRequest,
    FindRequest,
    InstantiateRequest,
    InvokeRequest,
    LoadQuery,
    LockConfirm,
    LockRequestPayload,
    MoveRequest,
    UnlockPayload,
)
from repro.rmi.stub import RemoteRef, Stub
from repro.runtime.classcache import ClassCache
from repro.runtime.locks import LockGrant, LockManager
from repro.runtime.mover import Mover
from repro.runtime.registry import MageRegistry
from repro.runtime.store import ObjectStore

#: How many times a lock request chases a moving object before giving up.
MAX_LOCK_CHASES = 8


def _collection_wait_s(pending, deadline: Deadline | None) -> float | None:
    """How long one completion-order wait may block (``None`` = unbounded).

    The tighter of the deadline's remainder and the pending futures' own
    transport wait bounds (a pipelined exchange times itself out after
    its io window) — so a collector never out-waits what the equivalent
    blocking ``result()`` call would have, even under a generous deadline.
    """
    wait_s = deadline.remaining_s() if deadline is not None else None
    bounds = [future._wait_bound_s() for future in pending]
    if bounds and all(bound is not None for bound in bounds):
        cap = max(bounds) + 0.05
        wait_s = cap if wait_s is None else min(wait_s, cap)
    return wait_s


def _force_timeouts(pending) -> None:
    """Drive still-pending futures through their transport timeout path.

    Called when a collection wait outlived every pending future's own
    bound: nudging ``exception(0)`` makes a pipelined future abandon its
    exchange and complete (its done-callback then lands in the collector's
    queue); a bare future that merely raises on the wait is cancelled to
    reach a terminal state.
    """
    for future in pending:
        if future.done():
            continue
        try:
            future.exception(0)
        except Exception:
            future.cancel("collection wait bound exhausted")


def _completion_order(futures: dict[str, CallFuture],
                      deadline: Deadline | None):
    """Yield ``(key, future)`` pairs as their exchanges complete.

    The hedging primitive: a fan-out that only needs its *first* useful
    answer collects in completion order instead of submission order, so
    one hung destination cannot stand in front of a fast one.  ``futures``
    may be a *live* dict — entries added (or replaced) while the caller
    processes a yield are picked up, which is how a hedged chase launches
    a fresh probe mid-collection; a completion whose slot was superseded
    by a relaunch is skipped (the replacement gets its own turn).

    Stops early (futures still pending) when ``deadline`` expires; without
    a deadline a stalled exchange is timed out by its own transport bound,
    exactly as a blocking ``result()`` would have been.  On the eagerly
    completing simulated network every future is done before this runs, so
    completion order *is* dict order — deterministic.
    """
    completions: "queue.Queue[tuple[str, CallFuture]]" = queue.Queue()
    registered: dict[str, CallFuture] = {}
    waiting: dict[str, CallFuture] = {}

    def register_new() -> None:
        for key, future in list(futures.items()):
            if registered.get(key) is not future:
                registered[key] = future
                waiting[key] = future
                future.add_done_callback(
                    lambda f, k=key: completions.put((k, f)))

    register_new()
    while waiting:
        wait_s = _collection_wait_s(waiting.values(), deadline)
        try:
            key, future = completions.get(timeout=wait_s)
        except queue.Empty:
            if deadline is not None and deadline.expired:
                return  # deadline expired; the caller cancels what's pending
            # Every pending probe out-waited its own transport bound
            # (not the deadline): time them out rather than hanging.
            _force_timeouts(waiting.values())
            continue  # the forced completions arrive through the queue
        if waiting.get(key) is not future:
            continue  # superseded by a relaunch; the replacement has its turn
        del waiting[key]
        yield key, future
        register_new()  # pick up probes the caller launched while processing


class MageServer:
    """Home-interface operations issued from one namespace."""

    def __init__(
        self,
        node_id: str,
        store: ObjectStore,
        classcache: ClassCache,
        registry: MageRegistry,
        locks: LockManager,
        mover: Mover,
        transport: Transport,
        client: RmiClient,
    ) -> None:
        self.node_id = node_id
        self.store = store
        self.classcache = classcache
        self.registry = registry
        self.locks = locks
        self.mover = mover
        self.transport = transport
        self.client = client

    # -- component registration --------------------------------------------------

    def register(
        self, name: str, obj: Any, shared: bool = True, pinned: bool = False
    ) -> RemoteRef:
        """Host ``obj`` here under ``name``; this node becomes its origin.

        The name is bound in the node's RMI registry (static, origin-side)
        and tracked by the MAGE registry (dynamic, follows moves).
        """
        self.store.add(name, obj, shared=shared, pinned=pinned)
        self.registry.record_arrival(name)
        ref = RemoteRef(node_id=self.node_id, name=name)
        self.registry.rmi.rebind(name, ref)
        return ref

    def register_class(self, cls: type) -> ClassDescriptor:
        """Publish a class definition so this node can serve it."""
        return self.classcache.register_native(cls)

    def unregister(self, name: str) -> Any:
        """Remove a locally hosted component; returns the evicted object."""
        obj = self.store.remove(name)
        if self.registry.rmi.contains(name):
            self.registry.rmi.unbind(name)
        return obj

    # -- discovery ---------------------------------------------------------------

    def find(self, name: str, origin_hint: str | None = None,
             verify: bool = True,
             candidates: Sequence[str] | None = None,
             deadline: Deadline | None = None) -> str:
        """Locate a component: the node id currently hosting it.

        Modelled as a FIND message to this namespace's own registry so the
        consultation appears in traces exactly as Figure 7 draws its
        messages 1 and 2.  ``verify=False`` accepts the local forwarding
        table's (possibly stale) answer without walking the chain — the
        thin fast path the RPC attribute rides.

        ``candidates`` switches to :meth:`locate_any`: instead of walking
        one forwarding chain hop by hop, every candidate's chain is probed
        in parallel and the first resolved location wins — the fan-out
        form a cluster-wide locate wants when chains may be long or stale.

        ``deadline`` bounds the whole resolution, every chain hop
        included: the budget rides the FIND header, so a walk spends its
        caller's remainder — not a fresh io timeout — at each hop.
        """
        if candidates:
            return self.locate_any(name, candidates, origin_hint,
                                   verify=verify, deadline=deadline)
        return self.transport.call(
            self.node_id, self.node_id, MessageKind.FIND,
            FindRequest(name=name, origin_hint=origin_hint or "", verify=verify),
            deadline=deadline,
        )

    def locate_any(self, name: str, candidates: Sequence[str],
                   origin_hint: str | None = None, verify: bool = True,
                   deadline: Deadline | None = None) -> str:
        """Parallel forwarding-chain probes: ask every candidate at once.

        Scatters one FIND to each candidate registry (each walks its own
        forwarding chain to termination; ``verify=False`` lets candidates
        answer from their possibly-stale forwarding tables instead).  The
        first successful answer *to complete* wins, is recorded in the
        local forwarding table, and returns immediately; the losing probes
        are **cancelled** — a hung registry's probe stops costing anything
        the moment a winner verified, instead of dangling for a full io
        timeout.  One ``deadline`` bounds the whole fan-out.  On the
        eagerly completing simulated network completion order *is*
        candidate order and cancellation is a no-op, so the deterministic
        traces are unchanged.  Raises
        :class:`~repro.errors.ComponentNotFoundError` when no candidate
        could resolve the name (or none could before the deadline).
        """
        if not candidates:
            raise ComponentNotFoundError(name, "no candidate registries to probe")
        deadline = effective_deadline(deadline)
        # Probe in expected-latency order (per-link EWMAs): the fastest
        # candidates' answers arrive — and win — soonest.  Transports that
        # record no latencies (the simulated network) preserve input
        # order, keeping deterministic traces unchanged.
        candidates = self.transport.rank_by_latency(list(candidates))
        futures = {
            node: self.transport.call_async(
                self.node_id, node, MessageKind.FIND,
                FindRequest(name=name, origin_hint=origin_hint or "",
                            verify=verify),
                deadline=deadline,
            )
            for node in candidates
        }
        pending = dict(futures)
        for node, future in _completion_order(futures, deadline):
            pending.pop(node, None)
            try:
                answer = future.result(0)
            except Exception:  # cold chain / dead candidate; others may know
                continue
            for straggler in pending.values():
                straggler.cancel(f"locate {name!r}: {node!r} answered first")
            self.registry.note_location(name, answer)
            return answer
        detail = f"none of {list(candidates)} could resolve it"
        if pending:  # the deadline expired with probes still in flight
            for straggler in pending.values():
                straggler.cancel(f"locate {name!r}: deadline expired")
            detail += " before the deadline"
        raise ComponentNotFoundError(name, detail)

    def is_shared(self, name: str) -> bool:
        """Whether ``name`` may be moved by other threads between uses.

        Only the local store knows an object's sharing mode; components
        hosted elsewhere are conservatively treated as shared.
        """
        record = self.store.lookup(name)
        return True if record is None else record.shared

    # -- movement -----------------------------------------------------------------

    def move(
        self,
        name: str,
        target: str,
        origin_hint: str | None = None,
        lock_token: str = "",
        location: str | None = None,
        deadline: Deadline | None = None,
        hedge: bool = False,
        alternates: Sequence[str] = (),
    ) -> str:
        """Move ``name`` to ``target`` wherever it currently lives.

        Local objects ship directly; remote ones via MOVE_REQUEST to their
        host (which performs the transfer and answers when done — Figure
        7's messages 3–5).  Returns the component's new location.

        ``location`` lets a caller that just found the component skip the
        redundant lookup; a stale value is healed by the retry below.

        ``deadline`` bounds the whole operation — find, chase retry, and
        the transfer the host performs on our behalf (the budget rides the
        MOVE_REQUEST header and the host's nested transfer inherits it).
        ``hedge=True`` speculates on both ends of the move.  On the *read*
        side, MOVE_REQUESTs go to the last-known host and the origin hint
        in parallel, the first node actually hosting the object performs
        the move, and the miss (a fast ``NoSuchObjectError``) is discarded
        — so a stale forwarding entry pointing at a slow host no longer
        serializes the chase.  On the *write* side, ``alternates`` names
        additional acceptable destinations: a large (streamed) object is
        then shipped speculatively to ``target`` and every alternate, the
        first to finish staging is committed, and the losers are aborted
        before anything applied — the returned location names the winner.
        The default keeps the paper's exact message sequence.
        """
        deadline = effective_deadline(deadline)
        hedge_alternates = tuple(alternates) if hedge else ()
        if self.store.contains(name):
            return self.mover.move_out(name, target, lock_token,
                                       deadline=deadline,
                                       alternates=hedge_alternates)
        if hedge and location is None:
            return self._move_hedged(name, target, origin_hint, lock_token,
                                     deadline, hedge_alternates)
        if location is None or location == self.node_id:
            location = self.find(name, origin_hint, verify=False,
                                 deadline=deadline)
        for attempt in (1, 2):
            if location == target:
                return location
            if deadline is not None and deadline.expired:
                raise MigrationError(
                    f"moving {name!r}: deadline expired mid-chase"
                )
            try:
                new_location = self.transport.call(
                    self.node_id, location, MessageKind.MOVE_REQUEST,
                    MoveRequest(name=name, target=target, lock_token=lock_token,
                                alternates=hedge_alternates),
                    deadline=deadline,
                )
            except NoSuchObjectError:
                if attempt == 2:
                    raise
                # The fast find was stale; walk the chain and retry once.
                location = self.find(name, origin_hint, verify=True,
                                     deadline=deadline)
                continue
            self.registry.note_location(name, new_location)
            return new_location
        raise MigrationError(f"unreachable retry state moving {name!r}")

    def _move_hedged(self, name: str, target: str, origin_hint: str | None,
                     lock_token: str, deadline: Deadline | None,
                     alternates: tuple[str, ...] = ()) -> str:
        """Speculative MOVE_REQUESTs to every plausible host at once.

        Only the node actually hosting the object can perform the move
        (any other candidate answers ``NoSuchObjectError`` from its store
        without touching anything), so hedging cannot double-move; the
        first successful transfer wins and the misses are discarded.  When
        every candidate missed, falls back to a verified find + single
        chase, all under the same deadline.  Candidates are probed in
        expected-link-latency order (per the transport's per-destination
        EWMAs) — on transports that record none, hint order is preserved.
        """
        candidates: list[str] = []
        for hint in (self.registry.forwarding_hint(name), origin_hint):
            if hint and hint != self.node_id and hint not in candidates:
                candidates.append(hint)
        if len(candidates) < 2:
            # Nothing to hedge the *request* against: resolve a location
            # and take the plain chase (which still carries the write-side
            # ``alternates`` so a streamed transfer can hedge its targets).
            location = candidates[0] if candidates else self.find(
                name, origin_hint, verify=False, deadline=deadline)
            return self.move(name, target, origin_hint, lock_token,
                             location=location, deadline=deadline,
                             hedge=True, alternates=alternates)
        candidates = self.transport.rank_by_latency(candidates)
        futures = {
            node: self.transport.call_async(
                self.node_id, node, MessageKind.MOVE_REQUEST,
                MoveRequest(name=name, target=target, lock_token=lock_token,
                            alternates=alternates),
                deadline=deadline,
            )
            for node in candidates
        }
        pending = dict(futures)
        for node, future in _completion_order(futures, deadline):
            pending.pop(node, None)
            try:
                new_location = future.result(0)
            except Exception:  # not the host (or dead/expired); others may be
                continue
            for straggler in pending.values():
                straggler.cancel(f"hedged move: {node!r} performed it")
            self.registry.note_location(name, new_location)
            return new_location
        if pending:
            for straggler in pending.values():
                straggler.cancel(f"hedged move of {name!r}: deadline expired")
            raise MigrationError(
                f"moving {name!r}: deadline expired awaiting "
                f"{sorted(pending)}"
            )
        # Every candidate missed: the trail is colder than our hints.
        location = self.find(name, origin_hint, verify=True, deadline=deadline)
        return self.move(name, target, origin_hint, lock_token,
                         location=location, deadline=deadline,
                         hedge=True, alternates=alternates)

    # -- class mobility --------------------------------------------------------------

    def fetch_class(self, class_name: str, from_node: str) -> type:
        """Pull ``class_name`` here (COD direction); conditional when cached.

        When the local cache already holds a version, the request carries
        its hash and the server answers ``"unchanged"`` instead of
        re-shipping the body.
        """
        if from_node == self.node_id:
            return self.classcache.resolve(class_name)
        if_hash = ""
        if self.classcache.has_class(class_name):
            if_hash = self.classcache.descriptor(class_name).source_hash
        reply = self.transport.call(
            self.node_id, from_node, MessageKind.CLASS_REQUEST,
            ClassRequest(class_name=class_name, if_hash=if_hash),
        )
        if reply == "unchanged":
            return self.classcache.load(self.classcache.descriptor(class_name))
        return self.classcache.load(reply)

    def push_class(self, class_name: str, to_node: str,
                   batched: bool = False) -> str:
        """Push ``class_name`` to ``to_node`` (REV direction); returns its hash.

        Probes the remote cache first; the body travels only on a miss —
        making warm REV binds cost one round trip for the class step.

        ``batched=True`` rides the probe and a *conditional* body push on
        one BATCH frame instead: always one round trip, cold or warm, at
        the cost of the body always crossing the wire (the receiver
        installs it only on a miss).  The default keeps the paper's
        two-step REV sequence exactly as the figure benches assert it.
        """
        return self.push_class_async(class_name, to_node, batched=batched).result()

    def push_class_async(self, class_name: str, to_node: str,
                         batched: bool = True,
                         deadline: Deadline | None = None) -> CallFuture:
        """``push_class`` as a future resolving to the class's source hash.

        The asynchronous form always has a single collection point, so it
        defaults to the batched single-round-trip exchange — the shape
        :meth:`push_class_many` scatters across targets.
        """
        desc = self.classcache.descriptor(class_name)
        if to_node == self.node_id:
            return CallFuture.completed(desc.source_hash, f"push {class_name}")
        probe = ClassPush(class_name=class_name, source_hash=desc.source_hash)
        if batched:
            future = self.transport.call_many_async(
                self.node_id, to_node,
                [(MessageKind.CLASS_TRANSFER, probe),
                 (MessageKind.CLASS_TRANSFER, ClassPush(
                     class_name=class_name, source_hash=desc.source_hash,
                     desc=desc, only_if_missing=True))],
                deadline=deadline,
            )
            return future.map(lambda _results: desc.source_hash)
        # Unbatched: the paper's two-step sequence runs eagerly (blocking,
        # no overlap); failures still surface through the future so both
        # shapes honour the CallFuture contract.
        future = CallFuture(f"push {class_name} -> {to_node}")
        try:
            have = self.transport.call(
                self.node_id, to_node, MessageKind.CLASS_TRANSFER, probe,
                deadline=deadline,
            )
            if not have:
                self.transport.call(
                    self.node_id, to_node, MessageKind.CLASS_TRANSFER,
                    ClassPush(
                        class_name=class_name, source_hash=desc.source_hash,
                        desc=desc,
                    ),
                    deadline=deadline,
                )
        except Exception as exc:
            future._fail(exc)
        else:
            future._resolve(desc.source_hash)
        return future

    def push_class_many(self, class_name: str,
                        targets: Sequence[str],
                        deadline: Deadline | None = None) -> dict[str, str]:
        """Scatter ``class_name`` to every target in parallel.

        One batched push future per target, all round trips overlapped;
        returns ``{target: source_hash}``.  Every future is collected
        before any failure surfaces (no stragglers left running); the
        first failure then raises as a
        :class:`~repro.errors.ClassTransferError` naming the lost targets.
        One ``deadline`` covers the whole fan-out; targets that miss it
        count as lost and their pushes are cancelled.
        """
        deadline = effective_deadline(deadline)
        futures = {
            target: self.push_class_async(class_name, target,
                                          deadline=deadline)
            for target in targets
        }
        outcomes = dict(zip(futures, gather(
            futures.values(), return_exceptions=True, deadline=deadline,
            cancel_stragglers=deadline is not None,
        )))
        failures = [(t, v) for t, v in outcomes.items()
                    if isinstance(v, Exception)]
        if failures:
            target, first = failures[0]
            lost = [t for t, _ in failures]
            raise ClassTransferError(
                f"pushing {class_name!r} failed at {lost} "
                f"(first: {target!r}: {first})"
            ) from first
        return outcomes

    def instantiate(
        self,
        class_name: str,
        name: str,
        target: str,
        args: tuple = (),
        kwargs: dict | None = None,
        shared: bool = True,
        batched: bool = False,
        deadline: Deadline | None = None,
    ) -> RemoteRef:
        """Create an object of a cached class at ``target`` and register it.

        ``batched=True`` sends the instantiate and publish steps as one
        ``call_many`` batch — one round trip instead of two.  The default
        keeps them as separate calls, reproducing the paper's REV message
        sequence (class push, instantiate, publish, invoke) exactly as the
        figure benches assert it.
        """
        kwargs = kwargs if kwargs is not None else {}
        if target == self.node_id:
            cls = self.classcache.resolve(class_name)
            obj = cls(*args, **kwargs)
            return self.register(name, obj, shared=shared)
        request = InstantiateRequest(
            class_name=class_name,
            name=name,
            args_blob=marshal_call(args, kwargs),
            shared=shared,
        )
        if batched:
            # The ref the remote instantiate returns is deterministic (the
            # target host and the chosen name), so the publish step can ride
            # the same frame without waiting for it.
            bind = BindRequest(
                name=name, ref=RemoteRef(node_id=target, name=name), replace=True
            )
            ref, _ = self.transport.call_many(
                self.node_id, target,
                [(MessageKind.INSTANTIATE, request),
                 (MessageKind.REGISTRY_BIND, bind)],
                deadline=deadline,
            )
        else:
            ref = self.transport.call(
                self.node_id, target, MessageKind.INSTANTIATE, request,
                deadline=deadline,
            )
            # Publish the new object in its host's RMI registry — a separate
            # Naming call, as in Java RMI (and as the paper's REV message count
            # attests: class push, instantiate, publish, invoke).
            self.transport.call(
                self.node_id, target, MessageKind.REGISTRY_BIND,
                BindRequest(name=name, ref=ref, replace=True),
                deadline=deadline,
            )
        self.registry.note_location(name, target)
        return ref

    # -- locking ------------------------------------------------------------------------

    def lock(
        self,
        name: str,
        target: str,
        origin_hint: str | None = None,
        timeout_ms: float | None = None,
        deadline: Deadline | None = None,
        hedge: bool = False,
    ) -> LockGrant:
        """Acquire the stay/move lock for ``name`` at its current host.

        §4.4's bracket: ``lock("geoData", cod.get_target())`` before the
        bind, ``unlock`` after the invocation.  If the object moves while
        the request waits, the request chases it to the new host (bounded
        by ``MAX_LOCK_CHASES`` *and* by wall clock).

        ``timeout_ms``/``deadline`` are one **cumulative** budget for the
        whole chase — find, every LOCK_REQUEST hop, and the server-side
        queue wait at each hop (each hop is asked to wait at most the
        *remaining* budget, and the deadline riding the message header
        caps it again at the lock manager).  A chase whose hops have
        eaten the budget stops with :class:`~repro.errors.LockTimeoutError`
        instead of granting a lock nobody is waiting for.

        ``hedge=True`` speculates on stale location knowledge: the
        LOCK_REQUEST goes to the last-known host *and* the origin hint in
        parallel, the first grant wins, and losing probes are cancelled —
        so a forwarding entry pointing at a hung host costs one round
        trip, not one io timeout, per chase round.  The default keeps the
        paper's sequential find + chase message sequence exactly.
        """
        deadline = Deadline.tighter(
            effective_deadline(deadline),
            Deadline.after_ms(timeout_ms) if timeout_ms is not None else None,
        )
        if hedge:
            return self._lock_hedged(name, target, origin_hint, deadline)
        location = self._find_for_lock(name, origin_hint, deadline)
        for _ in range(MAX_LOCK_CHASES):
            if deadline is not None and deadline.expired:
                raise LockTimeoutError(
                    f"lock on {name!r}: budget spent chasing it mid-flight"
                )
            try:
                return self._confirm_grant(self.transport.call(
                    self.node_id, location, MessageKind.LOCK_REQUEST,
                    LockRequestPayload(
                        name=name,
                        target=target,
                        requester=self.node_id,
                        wait_ms=self._lock_wait_ms(deadline),
                    ),
                    deadline=deadline,
                ))
            except LockMovedError as exc:
                location = exc.new_location
                # Feed the redirect to the location listeners (tier-3
                # cache) without writing the hint table — the sequential
                # chase never did, and find behaviour must not change.
                self.registry.observe_location(name, location)
            except CallTimeoutError as exc:
                raise LockTimeoutError(
                    f"lock on {name!r} at {location!r}: {exc}"
                ) from exc
        raise LockError(
            f"object {name!r} kept moving; gave up after {MAX_LOCK_CHASES} chases"
        )

    def _lock_wait_ms(self, deadline: Deadline | None) -> float | None:
        """The server-side queue wait a LOCK_REQUEST may ask for.

        The caller's remaining budget when one exists; otherwise the
        transport's own reply-wait bound — a server must never be asked to
        keep a request queued past the point its caller's transport has
        abandoned the exchange, or the eventual grant answers nobody and
        the lock leaks (there is no lease to reclaim it).
        """
        if deadline is not None:
            return deadline.remaining_ms()
        bound_s = self.transport.max_reply_wait_s()
        return bound_s * 1000.0 if bound_s is not None else None

    def _find_for_lock(self, name: str, origin_hint: str | None,
                       deadline: Deadline | None) -> str:
        """``find`` for a lock chase: budget expiry reads as a lock timeout."""
        try:
            return self.find(name, origin_hint, deadline=deadline)
        except CallTimeoutError as exc:
            raise LockTimeoutError(
                f"lock on {name!r}: budget spent locating it ({exc})"
            ) from exc

    def _lock_hedged(self, name: str, target: str, origin_hint: str | None,
                     deadline: Deadline | None) -> LockGrant:
        """Speculative parallel LOCK_REQUESTs; first grant wins.

        Fires one LOCK_REQUEST per plausible host (local store, last-known
        location, origin hint — deduplicated) and collects in completion
        order: the actual host grants, every other candidate answers fast
        with :class:`LockMovedError` (a fresh hint) or
        :class:`NoSuchObjectError`.  A fresh hint launches its probe
        *immediately* — a hung candidate left behind cannot serialize the
        chase — and on a grant every outstanding probe is cancelled.  At
        most one candidate can grant (the object has exactly one host and
        a grant pins it there), but a grant racing its own cancellation is
        still collected by a done-callback and released, so no host is
        left holding a phantom lock.  Total probes are bounded by
        ``MAX_LOCK_CHASES`` and the whole chase by the deadline.
        """
        if self.store.contains(name):
            initial = [self.node_id]
        else:
            initial = []
            for hint in (self.registry.forwarding_hint(name), origin_hint):
                if hint and hint not in initial:
                    initial.append(hint)
            if not initial:
                initial = [self._find_for_lock(name, origin_hint, deadline)]
            else:
                # Expected-latency order (per-link EWMAs): probe the host
                # most likely to answer fast first; identity on transports
                # that record nothing.
                initial = self.transport.rank_by_latency(initial)

        futures: dict[str, CallFuture] = {}  # live; _completion_order tracks it
        pending: dict[str, CallFuture] = {}  # launched but not yet collected
        probed: set[str] = set()
        stale_hints: list[str] = []  # hints naming already-probed hosts
        timed_out: list[str] = []    # candidates whose probe hit a timeout
        saw_moved = False
        launches = 0
        used_find = False

        def launch(node: str) -> None:
            nonlocal launches
            launches += 1
            probed.add(node)
            futures[node] = pending[node] = self.transport.call_async(
                self.node_id, node, MessageKind.LOCK_REQUEST,
                LockRequestPayload(
                    name=name, target=target, requester=self.node_id,
                    wait_ms=self._lock_wait_ms(deadline),
                ),
                deadline=deadline,
            )

        for node in initial:
            launch(node)
        for node, future in _completion_order(futures, deadline):
            pending.pop(node, None)
            try:
                grant = future.result(0)
            except LockMovedError as exc:
                saw_moved = True
                fresh = exc.new_location
                if fresh not in probed and launches < MAX_LOCK_CHASES:
                    launch(fresh)  # hedge forward without waiting for losers
                elif fresh not in stale_hints:
                    stale_hints.append(fresh)
            except (CallTimeoutError, LockTimeoutError, CallCancelledError):
                timed_out.append(node)  # hung candidate; others may grant
            except Exception:
                pass  # miss or dead candidate; others may grant
            else:
                for straggler in pending.values():
                    straggler.add_done_callback(self._release_stray_grant)
                    straggler.cancel(f"hedged lock: {node!r} granted first")
                self.registry.note_location(name, grant.location)
                return self._confirm_grant(grant)
            if not pending and launches < MAX_LOCK_CHASES:
                if stale_hints:
                    # Every hint named a probed host: the object may have
                    # looped back; re-probe (still counted against the cap).
                    relaunch, stale_hints = stale_hints, []
                    for hint in relaunch:
                        if launches < MAX_LOCK_CHASES:
                            launch(hint)
                elif not used_find:
                    # The trail went cold; one verified walk restarts it.
                    used_find = True
                    launch(self._find_for_lock(name, origin_hint, deadline))
        if pending:  # the deadline expired with probes still in flight
            for straggler in pending.values():
                # Same insurance as the grant-win path: a grant that races
                # this cancellation must still be released.
                straggler.add_done_callback(self._release_stray_grant)
                straggler.cancel(f"hedged lock on {name!r}: deadline expired")
            raise LockTimeoutError(
                f"lock on {name!r}: deadline expired awaiting "
                f"{sorted(pending)}"
            )
        if timed_out and not saw_moved:
            # Nothing ever reported the object in motion: the chase ended
            # because candidates hung, which is a timeout, not churn —
            # the same taxonomy the sequential path raises.
            raise LockTimeoutError(
                f"lock on {name!r}: candidates {sorted(set(timed_out))} "
                "timed out"
            )
        raise LockError(
            f"object {name!r} kept moving; gave up after {launches} "
            "hedged probes"
        )

    def _release_stray_grant(self, future: CallFuture) -> None:
        """Done-callback insurance for hedged locks: a grant that raced its
        cancellation is released (on a fresh thread — this callback may run
        on a transport reader thread, which must never issue calls)."""
        try:
            grant = future.result(0)
        except Exception:
            return
        if not isinstance(grant, LockGrant):
            return

        def release() -> None:
            try:
                self.unlock(grant)
            except Exception:
                pass  # the host vanished; its lock state went with it

        threading.Thread(target=release, name="mage-stray-unlock",
                         daemon=True).start()

    def _confirm_grant(self, grant: LockGrant) -> LockGrant:
        """Acknowledge a provisional (leased) grant so its host keeps it.

        A grant issued within a whisker of the caller's deadline expiry
        is held under an unacknowledged-grant lease (the reply might
        have answered nobody); having actually received it, we confirm —
        one LOCK_CONFIRM round trip — before the lease reaper releases
        it.  Ordinary grants (every deadline-free path) pass through
        untouched, with no extra messages.
        """
        if not getattr(grant, "provisional", False):
            return grant
        try:
            still_held = self.transport.call(
                self.node_id, grant.location, MessageKind.LOCK_CONFIRM,
                LockConfirm(name=grant.name, token=grant.token),
            )
            if not still_held:
                # The confirm lost the race against the lease reaper:
                # the lock was auto-released (and may be someone else's
                # now) — proceeding on this grant would break mutual
                # exclusion, so the acquisition fails instead.
                raise LockTimeoutError(
                    f"provisional lock grant on {grant.name!r} was reaped "
                    f"at {grant.location!r} before its confirmation arrived"
                )
        except LockTimeoutError:
            raise
        except Exception as exc:
            # Unconfirmable (host gone, or our own budget died first):
            # the lease reaper will release the grant server-side, so
            # handing it to the caller would be handing out a lock about
            # to be stolen — fail the acquisition instead.
            raise LockTimeoutError(
                f"provisional lock grant on {grant.name!r} could not be "
                f"confirmed at {grant.location!r}: {exc}"
            ) from exc
        return grant

    def unlock(self, grant: LockGrant) -> None:
        """Release a grant at the host that issued it."""
        self.transport.call(
            self.node_id, grant.location, MessageKind.UNLOCK,
            UnlockPayload(name=grant.name, token=grant.token),
        )

    # -- invocation ----------------------------------------------------------------------

    def stub(self, name: str, location: str | None = None,
             methods: tuple[str, ...] = ()) -> Stub:
        """A live proxy for ``name`` at ``location`` (or wherever it is found)."""
        where = location if location is not None else self.find(name)
        return self.client.stub_for(RemoteRef(node_id=where, name=name, methods=methods))

    def send_oneway(self, ref: RemoteRef, method: str, args: tuple = (),
                    kwargs: dict | None = None) -> None:
        """Fire-and-forget invocation: the result stays at the remote host.

        This is the MA measurement mode of Table 3 ("the result stays at
        the remote host").
        """
        self.transport.cast(
            self.node_id, ref.node_id, MessageKind.INVOKE,
            InvokeRequest(
                name=ref.name, method=method,
                args_blob=marshal_call(args, kwargs if kwargs is not None else {}),
            ),
        )

    # -- miscellany ------------------------------------------------------------------------

    def scatter(self, targets: Sequence[str], kind: MessageKind,
                payload: Any = None,
                deadline: Deadline | None = None) -> dict[str, CallFuture]:
        """One ``call_async`` per target, all in flight at once.

        The raw fan-out primitive the sweeps below (and
        ``Cluster.broadcast``) are built on; the caller gathers.  One
        ``deadline`` stamps every probe, so the whole fan-out shares a
        single budget rather than paying one io timeout per hung target.
        """
        return {
            target: self.transport.call_async(self.node_id, target, kind,
                                              payload, deadline=deadline)
            for target in targets
        }

    def query_load(self, node_id: str) -> float:
        """A node's load metric, for migration policies like §3.1's example."""
        return self.transport.call(
            self.node_id, node_id, MessageKind.LOAD_QUERY, LoadQuery()
        )

    def query_load_many(self, node_ids: Sequence[str],
                        skip_unreachable: bool = False,
                        deadline: Deadline | None = None,
                        timeout_load: float | None = None) -> dict[str, float]:
        """Load sweep: every node's metric gathered from parallel queries.

        ``skip_unreachable=True`` drops hosts that fail to answer — dead
        node or broken load provider alike, the behaviour balancing
        policies want (a host that cannot price itself is not a
        candidate); otherwise the first failure re-raises after every
        future has been collected.  ``deadline`` bounds the whole sweep
        and cancels whatever is still pending when it expires.

        ``timeout_load`` turns a missed deadline into a *load signal*: a
        host whose probe expired (or was cancelled as a straggler) is
        priced at this value instead of being dropped or raising —
        ``float("inf")`` is the balancer's "overloaded by silence".
        Outright-unreachable hosts still follow ``skip_unreachable``.
        """
        deadline = effective_deadline(deadline)
        futures = self.scatter(node_ids, MessageKind.LOAD_QUERY, LoadQuery(),
                               deadline=deadline)
        outcomes = dict(zip(futures, gather(
            futures.values(), return_exceptions=True, deadline=deadline,
            cancel_stragglers=deadline is not None,
        )))
        loads: dict[str, float] = {}
        for node, value in outcomes.items():
            if timeout_load is not None and isinstance(
                    value, (CallTimeoutError, CallCancelledError)):
                loads[node] = timeout_load
            elif isinstance(value, Exception):
                if not skip_unreachable:
                    raise value
            else:
                loads[node] = value
        return loads

    def ping(self, node_id: str, deadline: Deadline | None = None) -> bool:
        """Liveness probe (bounded by ``deadline`` when one is given)."""
        return self.transport.call(self.node_id, node_id, MessageKind.PING,
                                   deadline=deadline) == "pong"

    def ping_many(self, node_ids: Sequence[str],
                  deadline: Deadline | None = None) -> dict[str, bool]:
        """Liveness sweep: all probes in flight at once, no fail-fast.

        A dead host answers ``False`` instead of raising, so one crash
        costs a single timeout, not an aborted sweep.  With a ``deadline``
        the whole sweep shares one budget: a host that cannot answer in
        time counts as dead and its probe is cancelled.
        """
        deadline = effective_deadline(deadline)
        futures = self.scatter(node_ids, MessageKind.PING, deadline=deadline)
        outcomes = gather(futures.values(), return_exceptions=True,
                          deadline=deadline,
                          cancel_stragglers=deadline is not None)
        return {node: answer == "pong"
                for node, answer in zip(futures, outcomes)}
