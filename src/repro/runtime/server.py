"""``MageServer`` — the home interface (§4.1).

"The ``MageServerImpl`` class implements ``MageServer`` and communicates
with local mobility attributes … On the behalf of mobility attributes,
these classes query the registry, lock objects to their current namespace
and cooperate to move objects and classes."

Every operation a mobility attribute's ``bind`` needs is here:

=================  ==========================================================
``register``       publish a component in this namespace (it becomes the
                   component's origin server)
``find``           locate a component (local registry consultation +
                   forwarding-chain walk; Figure 7's messages 1–2)
``move``           weakly migrate a component (MOVE_REQUEST / OBJECT_TRANSFER;
                   Figure 7's messages 3–5)
``fetch_class``    pull a class definition here (the COD direction), with
                   conditional transfer against the local cache
``push_class``     push a class definition to a node (the REV direction),
                   probing the remote cache first
``instantiate``    create an object from a cached class at any node (the
                   REV/COD factory semantics of §4.2)
``lock/unlock``    stay/move locking at the object's current host, with
                   relocation chasing when the object moves mid-request
``stub``           a live proxy for invoking the component (Figure 7's 6–7)
=================  ==========================================================

Multi-node operations are *scatter-gather* over the transport's
future-returning calls (``call_async``/``call_many_async``):
``push_class_many`` fans a class out to N targets, ``query_load_many`` and
``ping_many`` sweep N hosts, and ``locate_any`` probes N forwarding chains
in parallel — each priced at one round-trip latency (plus straggler time)
instead of N on the pipelined TCP transport, and executing as the exact
sequential message sequence on the deterministic simulated network.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import (
    ClassTransferError,
    ComponentNotFoundError,
    LockError,
    LockMovedError,
    MigrationError,
    NoSuchObjectError,
)
from repro.net.message import MessageKind
from repro.net.transport import CallFuture, Transport, gather
from repro.rmi.classdesc import ClassDescriptor
from repro.rmi.client import RmiClient
from repro.rmi.marshal import marshal_call
from repro.rmi.protocol import (
    BindRequest,
    ClassPush,
    ClassRequest,
    FindRequest,
    InstantiateRequest,
    InvokeRequest,
    LoadQuery,
    LockRequestPayload,
    MoveRequest,
    UnlockPayload,
)
from repro.rmi.stub import RemoteRef, Stub
from repro.runtime.classcache import ClassCache
from repro.runtime.locks import LockGrant, LockManager
from repro.runtime.mover import Mover
from repro.runtime.registry import MageRegistry
from repro.runtime.store import ObjectStore

#: How many times a lock request chases a moving object before giving up.
MAX_LOCK_CHASES = 8


class MageServer:
    """Home-interface operations issued from one namespace."""

    def __init__(
        self,
        node_id: str,
        store: ObjectStore,
        classcache: ClassCache,
        registry: MageRegistry,
        locks: LockManager,
        mover: Mover,
        transport: Transport,
        client: RmiClient,
    ) -> None:
        self.node_id = node_id
        self.store = store
        self.classcache = classcache
        self.registry = registry
        self.locks = locks
        self.mover = mover
        self.transport = transport
        self.client = client

    # -- component registration --------------------------------------------------

    def register(
        self, name: str, obj: Any, shared: bool = True, pinned: bool = False
    ) -> RemoteRef:
        """Host ``obj`` here under ``name``; this node becomes its origin.

        The name is bound in the node's RMI registry (static, origin-side)
        and tracked by the MAGE registry (dynamic, follows moves).
        """
        self.store.add(name, obj, shared=shared, pinned=pinned)
        self.registry.record_arrival(name)
        ref = RemoteRef(node_id=self.node_id, name=name)
        self.registry.rmi.rebind(name, ref)
        return ref

    def register_class(self, cls: type) -> ClassDescriptor:
        """Publish a class definition so this node can serve it."""
        return self.classcache.register_native(cls)

    def unregister(self, name: str) -> Any:
        """Remove a locally hosted component; returns the evicted object."""
        obj = self.store.remove(name)
        if self.registry.rmi.contains(name):
            self.registry.rmi.unbind(name)
        return obj

    # -- discovery ---------------------------------------------------------------

    def find(self, name: str, origin_hint: str | None = None,
             verify: bool = True,
             candidates: Sequence[str] | None = None) -> str:
        """Locate a component: the node id currently hosting it.

        Modelled as a FIND message to this namespace's own registry so the
        consultation appears in traces exactly as Figure 7 draws its
        messages 1 and 2.  ``verify=False`` accepts the local forwarding
        table's (possibly stale) answer without walking the chain — the
        thin fast path the RPC attribute rides.

        ``candidates`` switches to :meth:`locate_any`: instead of walking
        one forwarding chain hop by hop, every candidate's chain is probed
        in parallel and the first resolved location wins — the fan-out
        form a cluster-wide locate wants when chains may be long or stale.
        """
        if candidates:
            return self.locate_any(name, candidates, origin_hint, verify=verify)
        return self.transport.call(
            self.node_id, self.node_id, MessageKind.FIND,
            FindRequest(name=name, origin_hint=origin_hint or "", verify=verify),
        )

    def locate_any(self, name: str, candidates: Sequence[str],
                   origin_hint: str | None = None, verify: bool = True) -> str:
        """Parallel forwarding-chain probes: ask every candidate at once.

        Scatters one FIND to each candidate registry (each walks its own
        forwarding chain to termination; ``verify=False`` lets candidates
        answer from their possibly-stale forwarding tables instead).  The
        first successful answer in candidate order wins, is recorded in
        the local forwarding table, and returns *immediately* — slower
        candidates' replies finish in the background and are dropped, so
        one hung registry cannot delay a locate that already succeeded.
        Raises :class:`~repro.errors.ComponentNotFoundError` when no
        candidate could resolve the name.
        """
        if not candidates:
            raise ComponentNotFoundError(name, "no candidate registries to probe")
        futures = {
            node: self.transport.call_async(
                self.node_id, node, MessageKind.FIND,
                FindRequest(name=name, origin_hint=origin_hint or "",
                            verify=verify),
            )
            for node in candidates
        }
        for future in futures.values():
            try:
                answer = future.result()
            except Exception:  # cold chain / dead candidate; others may know
                continue
            self.registry.note_location(name, answer)
            return answer
        raise ComponentNotFoundError(
            name, f"none of {list(candidates)} could resolve it"
        )

    def is_shared(self, name: str) -> bool:
        """Whether ``name`` may be moved by other threads between uses.

        Only the local store knows an object's sharing mode; components
        hosted elsewhere are conservatively treated as shared.
        """
        if self.store.contains(name):
            return self.store.is_shared(name)
        return True

    # -- movement -----------------------------------------------------------------

    def move(
        self,
        name: str,
        target: str,
        origin_hint: str | None = None,
        lock_token: str = "",
        location: str | None = None,
    ) -> str:
        """Move ``name`` to ``target`` wherever it currently lives.

        Local objects ship directly; remote ones via MOVE_REQUEST to their
        host (which performs the OBJECT_TRANSFER and answers when done —
        Figure 7's messages 3–5).  Returns the component's new location.

        ``location`` lets a caller that just found the component skip the
        redundant lookup; a stale value is healed by the retry below.
        """
        if self.store.contains(name):
            return self.mover.move_out(name, target, lock_token)
        if location is None or location == self.node_id:
            location = self.find(name, origin_hint, verify=False)
        for attempt in (1, 2):
            if location == target:
                return location
            try:
                new_location = self.transport.call(
                    self.node_id, location, MessageKind.MOVE_REQUEST,
                    MoveRequest(name=name, target=target, lock_token=lock_token),
                )
            except NoSuchObjectError:
                if attempt == 2:
                    raise
                # The fast find was stale; walk the chain and retry once.
                location = self.find(name, origin_hint, verify=True)
                continue
            self.registry.note_location(name, new_location)
            return new_location
        raise MigrationError(f"unreachable retry state moving {name!r}")

    # -- class mobility --------------------------------------------------------------

    def fetch_class(self, class_name: str, from_node: str) -> type:
        """Pull ``class_name`` here (COD direction); conditional when cached.

        When the local cache already holds a version, the request carries
        its hash and the server answers ``"unchanged"`` instead of
        re-shipping the body.
        """
        if from_node == self.node_id:
            return self.classcache.resolve(class_name)
        if_hash = ""
        if self.classcache.has_class(class_name):
            if_hash = self.classcache.descriptor(class_name).source_hash
        reply = self.transport.call(
            self.node_id, from_node, MessageKind.CLASS_REQUEST,
            ClassRequest(class_name=class_name, if_hash=if_hash),
        )
        if reply == "unchanged":
            return self.classcache.load(self.classcache.descriptor(class_name))
        return self.classcache.load(reply)

    def push_class(self, class_name: str, to_node: str,
                   batched: bool = False) -> str:
        """Push ``class_name`` to ``to_node`` (REV direction); returns its hash.

        Probes the remote cache first; the body travels only on a miss —
        making warm REV binds cost one round trip for the class step.

        ``batched=True`` rides the probe and a *conditional* body push on
        one BATCH frame instead: always one round trip, cold or warm, at
        the cost of the body always crossing the wire (the receiver
        installs it only on a miss).  The default keeps the paper's
        two-step REV sequence exactly as the figure benches assert it.
        """
        return self.push_class_async(class_name, to_node, batched=batched).result()

    def push_class_async(self, class_name: str, to_node: str,
                         batched: bool = True) -> CallFuture:
        """``push_class`` as a future resolving to the class's source hash.

        The asynchronous form always has a single collection point, so it
        defaults to the batched single-round-trip exchange — the shape
        :meth:`push_class_many` scatters across targets.
        """
        desc = self.classcache.descriptor(class_name)
        if to_node == self.node_id:
            return CallFuture.completed(desc.source_hash, f"push {class_name}")
        probe = ClassPush(class_name=class_name, source_hash=desc.source_hash)
        if batched:
            future = self.transport.call_many_async(
                self.node_id, to_node,
                [(MessageKind.CLASS_TRANSFER, probe),
                 (MessageKind.CLASS_TRANSFER, ClassPush(
                     class_name=class_name, source_hash=desc.source_hash,
                     desc=desc, only_if_missing=True))],
            )
            return future.map(lambda _results: desc.source_hash)
        # Unbatched: the paper's two-step sequence runs eagerly (blocking,
        # no overlap); failures still surface through the future so both
        # shapes honour the CallFuture contract.
        future = CallFuture(f"push {class_name} -> {to_node}")
        try:
            have = self.transport.call(
                self.node_id, to_node, MessageKind.CLASS_TRANSFER, probe
            )
            if not have:
                self.transport.call(
                    self.node_id, to_node, MessageKind.CLASS_TRANSFER,
                    ClassPush(
                        class_name=class_name, source_hash=desc.source_hash,
                        desc=desc,
                    ),
                )
        except Exception as exc:
            future._fail(exc)
        else:
            future._resolve(desc.source_hash)
        return future

    def push_class_many(self, class_name: str,
                        targets: Sequence[str]) -> dict[str, str]:
        """Scatter ``class_name`` to every target in parallel.

        One batched push future per target, all round trips overlapped;
        returns ``{target: source_hash}``.  Every future is collected
        before any failure surfaces (no stragglers left running); the
        first failure then raises as a
        :class:`~repro.errors.ClassTransferError` naming the lost targets.
        """
        futures = {
            target: self.push_class_async(class_name, target)
            for target in targets
        }
        outcomes = dict(zip(futures, gather(futures.values(),
                                            return_exceptions=True)))
        failures = [(t, v) for t, v in outcomes.items()
                    if isinstance(v, Exception)]
        if failures:
            target, first = failures[0]
            lost = [t for t, _ in failures]
            raise ClassTransferError(
                f"pushing {class_name!r} failed at {lost} "
                f"(first: {target!r}: {first})"
            ) from first
        return outcomes

    def instantiate(
        self,
        class_name: str,
        name: str,
        target: str,
        args: tuple = (),
        kwargs: dict | None = None,
        shared: bool = True,
        batched: bool = False,
    ) -> RemoteRef:
        """Create an object of a cached class at ``target`` and register it.

        ``batched=True`` sends the instantiate and publish steps as one
        ``call_many`` batch — one round trip instead of two.  The default
        keeps them as separate calls, reproducing the paper's REV message
        sequence (class push, instantiate, publish, invoke) exactly as the
        figure benches assert it.
        """
        kwargs = kwargs if kwargs is not None else {}
        if target == self.node_id:
            cls = self.classcache.resolve(class_name)
            obj = cls(*args, **kwargs)
            return self.register(name, obj, shared=shared)
        request = InstantiateRequest(
            class_name=class_name,
            name=name,
            args_blob=marshal_call(args, kwargs),
            shared=shared,
        )
        if batched:
            # The ref the remote instantiate returns is deterministic (the
            # target host and the chosen name), so the publish step can ride
            # the same frame without waiting for it.
            bind = BindRequest(
                name=name, ref=RemoteRef(node_id=target, name=name), replace=True
            )
            ref, _ = self.transport.call_many(
                self.node_id, target,
                [(MessageKind.INSTANTIATE, request),
                 (MessageKind.REGISTRY_BIND, bind)],
            )
        else:
            ref = self.transport.call(
                self.node_id, target, MessageKind.INSTANTIATE, request
            )
            # Publish the new object in its host's RMI registry — a separate
            # Naming call, as in Java RMI (and as the paper's REV message count
            # attests: class push, instantiate, publish, invoke).
            self.transport.call(
                self.node_id, target, MessageKind.REGISTRY_BIND,
                BindRequest(name=name, ref=ref, replace=True),
            )
        self.registry.note_location(name, target)
        return ref

    # -- locking ------------------------------------------------------------------------

    def lock(
        self,
        name: str,
        target: str,
        origin_hint: str | None = None,
        timeout_ms: float | None = None,
    ) -> LockGrant:
        """Acquire the stay/move lock for ``name`` at its current host.

        §4.4's bracket: ``lock("geoData", cod.get_target())`` before the
        bind, ``unlock`` after the invocation.  If the object moves while
        the request waits, the request chases it to the new host (bounded).
        """
        location = self.find(name, origin_hint)
        for _ in range(MAX_LOCK_CHASES):
            try:
                return self.transport.call(
                    self.node_id, location, MessageKind.LOCK_REQUEST,
                    LockRequestPayload(
                        name=name,
                        target=target,
                        requester=self.node_id,
                        wait_ms=timeout_ms,
                    ),
                )
            except LockMovedError as exc:
                location = exc.new_location
        raise LockError(
            f"object {name!r} kept moving; gave up after {MAX_LOCK_CHASES} chases"
        )

    def unlock(self, grant: LockGrant) -> None:
        """Release a grant at the host that issued it."""
        self.transport.call(
            self.node_id, grant.location, MessageKind.UNLOCK,
            UnlockPayload(name=grant.name, token=grant.token),
        )

    # -- invocation ----------------------------------------------------------------------

    def stub(self, name: str, location: str | None = None,
             methods: tuple[str, ...] = ()) -> Stub:
        """A live proxy for ``name`` at ``location`` (or wherever it is found)."""
        where = location if location is not None else self.find(name)
        return self.client.stub_for(RemoteRef(node_id=where, name=name, methods=methods))

    def send_oneway(self, ref: RemoteRef, method: str, args: tuple = (),
                    kwargs: dict | None = None) -> None:
        """Fire-and-forget invocation: the result stays at the remote host.

        This is the MA measurement mode of Table 3 ("the result stays at
        the remote host").
        """
        self.transport.cast(
            self.node_id, ref.node_id, MessageKind.INVOKE,
            InvokeRequest(
                name=ref.name, method=method,
                args_blob=marshal_call(args, kwargs if kwargs is not None else {}),
            ),
        )

    # -- miscellany ------------------------------------------------------------------------

    def scatter(self, targets: Sequence[str], kind: MessageKind,
                payload: Any = None) -> dict[str, CallFuture]:
        """One ``call_async`` per target, all in flight at once.

        The raw fan-out primitive the sweeps below (and
        ``Cluster.broadcast``) are built on; the caller gathers.
        """
        return {
            target: self.transport.call_async(self.node_id, target, kind, payload)
            for target in targets
        }

    def query_load(self, node_id: str) -> float:
        """A node's load metric, for migration policies like §3.1's example."""
        return self.transport.call(
            self.node_id, node_id, MessageKind.LOAD_QUERY, LoadQuery()
        )

    def query_load_many(self, node_ids: Sequence[str],
                        skip_unreachable: bool = False) -> dict[str, float]:
        """Load sweep: every node's metric gathered from parallel queries.

        ``skip_unreachable=True`` drops hosts that fail to answer — dead
        node or broken load provider alike, the behaviour balancing
        policies want (a host that cannot price itself is not a
        candidate); otherwise the first failure re-raises after every
        future has been collected.
        """
        futures = self.scatter(node_ids, MessageKind.LOAD_QUERY, LoadQuery())
        outcomes = dict(zip(futures, gather(futures.values(),
                                            return_exceptions=True)))
        if not skip_unreachable:
            for value in outcomes.values():
                if isinstance(value, Exception):
                    raise value
        return {n: v for n, v in outcomes.items()
                if not isinstance(v, Exception)}

    def ping(self, node_id: str) -> bool:
        """Liveness probe."""
        return self.transport.call(self.node_id, node_id, MessageKind.PING) == "pong"

    def ping_many(self, node_ids: Sequence[str]) -> dict[str, bool]:
        """Liveness sweep: all probes in flight at once, no fail-fast.

        A dead host answers ``False`` instead of raising, so one crash
        costs a single timeout, not an aborted sweep.
        """
        futures = self.scatter(node_ids, MessageKind.PING)
        outcomes = gather(futures.values(), return_exceptions=True)
        return {node: answer == "pong"
                for node, answer in zip(futures, outcomes)}
