"""``MageExternalServer`` — the remote interface (§4.1).

"The ``MageExternalServerImpl`` class implements ``MageExternalServer``.
This class defines the methods used to send and receive objects and
classes, as well as forward registry requests."

This is each node's single inbound dispatcher: the transport delivers every
request here, and the handler routes it to the registry, invoker, mover,
class cache, or lock manager.  Agent arrivals (one-way AGENT_HOP casts) are
forwarded to a pluggable handler installed by the agent manager.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import (
    LockMovedError,
    LockTimeoutError,
    MageError,
    NoSuchObjectError,
)
from repro.net.deadline import current_deadline
from repro.net.message import Message, MessageKind, inline_safe
from repro.rmi.invoker import Invoker
from repro.rmi.marshal import StubFactory, unmarshal_call
from repro.rmi.protocol import (
    AnnouncePayload,
    BindRequest,
    ClassPush,
    ClassRequest,
    FindRequest,
    InstantiateRequest,
    InvokeRequest,
    JoinRequest,
    ListRequest,
    LockConfirm,
    LockRequestPayload,
    LookupRequest,
    MoveRequest,
    ObjectTransfer,
    TransferAbort,
    TransferChunk,
    TransferCommit,
    TransferPrepare,
    UnbindRequest,
    UnlockPayload,
)
from repro.rmi.registry import RmiRegistry
from repro.rmi.stub import RemoteRef
from repro.runtime.classcache import ClassCache
from repro.runtime.locks import LockManager
from repro.runtime.mover import Mover
from repro.runtime.registry import MageRegistry
from repro.runtime.store import ObjectStore

#: Signature of the agent-arrival handler the agent manager installs.
AgentHandler = Callable[[Any], None]


class MageExternalServer:
    """Routes every inbound message for one node."""

    def __init__(
        self,
        node_id: str,
        store: ObjectStore,
        classcache: ClassCache,
        registry: MageRegistry,
        rmi_registry: RmiRegistry,
        locks: LockManager,
        mover: Mover,
        stub_factory: StubFactory,
        load_provider: Callable[[], float],
    ) -> None:
        self.node_id = node_id
        self._store = store
        self._classcache = classcache
        self._registry = registry
        self._rmi_registry = rmi_registry
        self._locks = locks
        self._mover = mover
        self._stub_factory = stub_factory
        self._load_provider = load_provider
        self._invoker = Invoker(node_id, self._lookup_servant, stub_factory)
        self._agent_handler: AgentHandler | None = None
        self._agent_launcher: AgentHandler | None = None
        self._join_handler: Callable[[JoinRequest], Any] | None = None
        self._announce_handler: Callable[[AnnouncePayload], Any] | None = None
        self._handlers = {
            MessageKind.INVOKE: self._on_invoke,
            MessageKind.REGISTRY_LOOKUP: self._on_lookup,
            MessageKind.REGISTRY_BIND: self._on_bind,
            MessageKind.REGISTRY_UNBIND: self._on_unbind,
            MessageKind.REGISTRY_LIST: self._on_list,
            MessageKind.FIND: self._on_find,
            MessageKind.MOVE_REQUEST: self._on_move_request,
            MessageKind.OBJECT_TRANSFER: self._on_object_transfer,
            MessageKind.TRANSFER_PREPARE: self._on_transfer_prepare,
            MessageKind.TRANSFER_CHUNK: self._on_transfer_chunk,
            MessageKind.TRANSFER_COMMIT: self._on_transfer_commit,
            MessageKind.TRANSFER_ABORT: self._on_transfer_abort,
            MessageKind.CLASS_REQUEST: self._on_class_request,
            MessageKind.CLASS_TRANSFER: self._on_class_push,
            MessageKind.INSTANTIATE: self._on_instantiate,
            MessageKind.LOCK_REQUEST: self._on_lock,
            MessageKind.LOCK_CONFIRM: self._on_lock_confirm,
            MessageKind.UNLOCK: self._on_unlock,
            MessageKind.AGENT_HOP: self._on_agent_hop,
            MessageKind.AGENT_LAUNCH: self._on_agent_launch,
            MessageKind.LOAD_QUERY: self._on_load_query,
            MessageKind.PING: self._on_ping,
            MessageKind.JOIN: self._on_join,
            MessageKind.ANNOUNCE: self._on_announce,
        }

    @property
    def invoker(self) -> Invoker:
        """This node's dispatch invoker (shared with the local bypass)."""
        return self._invoker

    def install_agent_handlers(self, hop: AgentHandler, launch: AgentHandler) -> None:
        """Called by the agent manager when it attaches to this node."""
        self._agent_handler = hop
        self._agent_launcher = launch

    def install_membership_handlers(self, join, announce) -> None:
        """Called by the cluster layer's Membership service on attach."""
        self._join_handler = join
        self._announce_handler = announce

    # -- dispatch ----------------------------------------------------------------

    @inline_safe
    def handle(self, message: Message) -> Any:
        """Transport entry point for every inbound request.

        Declared :func:`~repro.net.message.inline_safe`: the INLINE_KINDS
        handlers below (``_on_ping``, ``_on_load_query``) do no waiting,
        no I/O and no nested calls, so the TCP server may run them on its
        reactor loop thread (magelint MAGE009 checks them).
        """
        handler = self._handlers.get(message.kind)
        if handler is None:
            raise MageError(
                f"node {self.node_id!r} cannot handle {message.kind.value} messages"
            )
        return handler(message.payload)

    def _lookup_servant(self, name: str) -> Any:
        if not self._store.contains(name):
            raise NoSuchObjectError(name, self.node_id)
        return self._store.get(name)

    # -- RMI substrate --------------------------------------------------------------

    def _on_invoke(self, request: InvokeRequest) -> bytes:
        return self._invoker.handle(request)

    def _on_lookup(self, request: LookupRequest) -> RemoteRef:
        return self._rmi_registry.lookup(request.name)

    def _on_bind(self, request: BindRequest) -> None:
        if request.replace:
            self._rmi_registry.rebind(request.name, request.ref)
        else:
            self._rmi_registry.bind(request.name, request.ref)

    def _on_unbind(self, request: UnbindRequest) -> None:
        self._rmi_registry.unbind(request.name)

    def _on_list(self, request: ListRequest) -> list[str]:
        return self._rmi_registry.list_bindings()

    # -- MAGE runtime ------------------------------------------------------------------

    def _on_find(self, request: FindRequest) -> str:
        return self._registry.handle_find(request)

    def _on_move_request(self, request: MoveRequest) -> str:
        return self._mover.move_out(
            request.name, request.target, lock_token=request.lock_token,
            alternates=request.alternates,
        )

    def _on_object_transfer(self, transfer: ObjectTransfer) -> str:
        return self._mover.receive(transfer)

    def _on_transfer_prepare(self, prepare: TransferPrepare) -> str:
        return self._mover.prepare(prepare)

    def _on_transfer_chunk(self, chunk: TransferChunk) -> str:
        return self._mover.receive_chunk(chunk)

    def _on_transfer_commit(self, commit: TransferCommit) -> str:
        return self._mover.commit(commit)

    def _on_transfer_abort(self, abort: TransferAbort) -> str:
        return self._mover.abort(abort)

    def _on_class_request(self, request: ClassRequest) -> Any:
        desc = self._classcache.descriptor(request.class_name)
        if request.if_hash and request.if_hash == desc.source_hash:
            return "unchanged"
        return desc

    def _on_class_push(self, push: ClassPush) -> bool:
        if push.desc is None:
            # Probe: "do you cache this exact class?"
            return self._classcache.has_hash(push.source_hash)
        if push.only_if_missing and self._classcache.has_hash(push.source_hash):
            return True  # conditional push against a warm cache: keep ours
        self._classcache.load(push.desc)
        return True

    def _on_instantiate(self, request: InstantiateRequest) -> RemoteRef:
        cls = self._classcache.resolve(request.class_name)
        args, kwargs = unmarshal_call(
            request.args_blob, self._stub_factory,
            context=(f"INSTANTIATE {request.class_name} as "
                     f"{request.name!r} on {self.node_id}"),
        )
        obj = cls(*args, **kwargs)
        self._store.add(request.name, obj, shared=request.shared)
        self._registry.record_arrival(request.name)
        # Publication in the RMI registry is the *initiator's* separate
        # Naming step (as in Java RMI), not a side effect of instantiation —
        # this is one of the "four Java RMI calls" the paper's REV performs.
        return RemoteRef(node_id=self.node_id, name=request.name)

    def _on_lock(self, request: LockRequestPayload) -> Any:
        if not self._store.contains(request.name):
            hint = self._registry.forwarding_hint(request.name)
            if hint is not None and hint != self.node_id:
                raise LockMovedError(request.name, hint)
            raise NoSuchObjectError(request.name, self.node_id)
        # The dispatch deadline (the caller's propagated budget) caps the
        # queue wait on top of the request's own wait_ms: a lock request
        # must not be granted to a caller that already stopped waiting.
        deadline = current_deadline()
        grant = self._locks.acquire(
            request.name,
            target=request.target,
            requester=request.requester,
            timeout_ms=request.wait_ms,
            deadline=deadline,
        )
        if deadline is not None and deadline.expired:
            # Granted at the buzzer: the caller's wait is deadline-capped
            # too, so it has abandoned the exchange and this grant's reply
            # would be dropped — leaving the lock held forever (there is
            # no lease to reclaim it).  Give the grant back and answer
            # with the timeout the caller is already raising.
            self._locks.release(request.name, grant.token)
            raise LockTimeoutError(
                f"lock on {request.name!r} granted after its caller's "
                "deadline expired; released"
            )
        return grant

    def _on_lock_confirm(self, request: LockConfirm) -> bool:
        # False = the lease reaper already released this grant; the
        # confirming caller must not proceed on it.
        return self._locks.confirm(request.name, request.token)

    def _on_unlock(self, request: UnlockPayload) -> None:
        self._locks.release(request.name, request.token)

    def _on_agent_hop(self, payload: Any) -> None:
        if self._agent_handler is None:
            raise MageError(f"node {self.node_id!r} accepts no agents")
        self._agent_handler(payload)

    def _on_agent_launch(self, payload: Any) -> Any:
        if self._agent_launcher is None:
            raise MageError(f"node {self.node_id!r} launches no agents")
        return self._agent_launcher(payload)

    def _on_load_query(self, request: Any) -> float:
        return float(self._load_provider())

    def _on_ping(self, request: Any) -> str:
        return "pong"

    # -- membership (handlers installed by the cluster layer) ------------------

    def _on_join(self, request: JoinRequest) -> Any:
        if self._join_handler is None:
            raise MageError(f"node {self.node_id!r} accepts no JOINs "
                            "(no membership service attached)")
        return self._join_handler(request)

    def _on_announce(self, payload: AnnouncePayload) -> Any:
        if self._announce_handler is None:
            raise MageError(f"node {self.node_id!r} accepts no ANNOUNCEs "
                            "(no membership service attached)")
        return self._announce_handler(payload)
