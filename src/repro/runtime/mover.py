"""The migration engine: weak migration of objects between namespaces.

§3.5: "Since the standard Java virtual machine does not provide access to
execution state, MAGE uses weak migration" — heap state moves, stacks do
not.  CPython imposes the same constraint, so the engine ships
``(class descriptor, marshalled state)`` pairs, exactly the paper's model.

Move protocol (the wire half of the GREV protocol, Figure 7):

1. the initiator sends ``MOVE_REQUEST`` to the hosting node;
2. the host packs the object and sends ``OBJECT_TRANSFER`` to the target
   (class body included only when the host believes the target lacks it —
   the §4.2 class-cache optimization);
3. the target reconstructs, registers the arrival, and acknowledges;
4. the host evicts its copy, records a forwarding address, fails waiting
   lock requests over to the new location, and answers the initiator.

Transfer-then-evict ordering means a failed transfer leaves the object
safely at the source; the exclusive move lock prevents the transient
two-copies window from being observed.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.errors import (
    ClassTransferError,
    LockError,
    MigrationError,
    NoSuchObjectError,
    ObjectPinnedError,
)
from repro.net.deadline import Deadline, effective_deadline
from repro.net.message import MessageKind
from repro.net.transport import CallFuture, Transport
from repro.rmi.classdesc import ClassDescriptor, describe_class
from repro.rmi.marshal import StubFactory, marshal, unmarshal
from repro.rmi.protocol import ClassPush, ClassRequest, ObjectTransfer
from repro.runtime.classcache import ClassCache
from repro.runtime.locks import LockManager
from repro.runtime.registry import MageRegistry
from repro.runtime.store import ObjectStore
from repro.util.ids import fresh_token


class Mover:
    """Sends and receives weakly-migrated objects for one namespace."""

    def __init__(
        self,
        node_id: str,
        store: ObjectStore,
        classcache: ClassCache,
        registry: MageRegistry,
        locks: LockManager,
        transport: Transport,
        stub_factory: StubFactory,
        always_ship_class: bool = False,
        probe_classes: bool = False,
    ) -> None:
        self.node_id = node_id
        self._store = store
        self._classcache = classcache
        self._registry = registry
        self._locks = locks
        self._transport = transport
        self._stub_factory = stub_factory
        #: Ablation knob: ship the full class body on every move instead of
        #: trusting the receiver's cache.
        self.always_ship_class = always_ship_class
        #: Overlap a remote class-cache probe with state packing before a
        #: transfer to a target this mover has never shipped the class to.
        #: A hit (the target got the class from a third node) saves the
        #: class body on the wire; the probe's round trip hides behind the
        #: marshalling work.  Off by default: the probe adds a message, and
        #: the figure benches pin the paper's exact sequences.
        self.probe_classes = probe_classes
        self._known_at: dict[str, set[str]] = {}  # source_hash -> nodes holding it
        self._seen_transfers: set[str] = set()
        self._seen_order: deque[str] = deque()
        self._lock = threading.Lock()
        self.moves_out = 0
        self.moves_in = 0

    # -- packing --------------------------------------------------------------

    def descriptor_for(self, obj: Any) -> ClassDescriptor:
        """The shippable definition of ``obj``'s class.

        A clone (arrived over the wire earlier) already has its descriptor
        cached; a native class is registered on first departure.
        """
        cls = type(obj)
        source_hash = getattr(cls, "__mage_source_hash__", None)
        if source_hash is not None:
            return self._classcache.descriptor(cls.__name__)
        return self._classcache.register_native(cls)

    def pack_state(self, obj: Any) -> bytes:
        """Marshal the heap state of ``obj`` (honours ``__getstate__``)."""
        getstate = getattr(obj, "__getstate__", None)
        state = getstate() if callable(getstate) else dict(obj.__dict__)
        return marshal(state)

    def unpack(self, cls: type, state_blob: bytes) -> Any:
        """Rebuild an instance from migrated state (honours ``__setstate__``)."""
        obj = cls.__new__(cls)
        state = unmarshal(state_blob, self._stub_factory)
        setstate = getattr(obj, "__setstate__", None)
        if callable(setstate):
            setstate(state)
        else:
            obj.__dict__.update(state)
        return obj

    # -- sending side ------------------------------------------------------------

    def move_out(self, name: str, target: str, lock_token: str = "",
                 deadline: Deadline | None = None) -> str:
        """Ship the locally hosted object ``name`` to ``target``.

        Returns the target node id.  A move to the current namespace is a
        no-op (the stay case).  When the object's lock queue is active, the
        caller must present the current move-lock token.  ``deadline``
        bounds the OBJECT_TRANSFER (and defaults to the dispatch deadline
        when this runs on behalf of a remote MOVE_REQUEST, so the
        initiator's budget covers the transfer leg too).
        """
        if target == self.node_id:
            # The stay case — but only a node actually hosting the object
            # may claim it stayed.  Hedged and remote MOVE_REQUESTs probe
            # nodes on (possibly stale) hints; answering "already here"
            # without owning the object would fake a successful move and
            # poison the requester's forwarding table.
            if not self._store.contains(name):
                raise NoSuchObjectError(name, self.node_id)
            return self.node_id
        deadline = effective_deadline(deadline)
        record = self._store.record(name)
        if record.pinned:
            raise ObjectPinnedError(
                f"object {name!r} is pinned to {self.node_id!r}"
            )
        if self._locks.has_activity(name) and not self._locks.holds_move_lock(
            name, lock_token
        ):
            raise LockError(
                f"moving {name!r} requires its move lock (object is contended)"
            )
        desc = self.descriptor_for(record.obj)
        probe = self.begin_class_probe(target, desc)
        state_blob = self.pack_state(record.obj)  # overlaps the probe's round trip
        transfer = ObjectTransfer(
            name=name,
            class_name=desc.class_name,
            state_blob=state_blob,
            class_desc=desc if self.resolve_class_probe(probe, target, desc) else None,
            class_hash=desc.source_hash,
            origin=self.node_id,
            transfer_id=fresh_token("xfer"),
            shared=record.shared,
        )
        ack = self._transport.call(
            self.node_id, target, MessageKind.OBJECT_TRANSFER, transfer,
            deadline=deadline,
        )
        if ack != "ok":
            raise MigrationError(
                f"target {target!r} rejected transfer of {name!r}: {ack!r}"
            )
        # Transfer acknowledged: now (and only now) evict the local copy.
        self._store.remove(name)
        self._registry.record_departure(name, target)
        self._locks.mark_moved(name, target)
        self._note_known(target, desc.source_hash)
        with self._lock:
            self.moves_out += 1
        return target

    def _must_ship(self, target: str, desc: ClassDescriptor) -> bool:
        if self.always_ship_class:
            return True
        with self._lock:
            return target not in self._known_at.get(desc.source_hash, set())

    def _note_known(self, node: str, source_hash: str) -> None:
        with self._lock:
            self._known_at.setdefault(source_hash, set()).add(node)

    def begin_class_probe(self, target: str,
                          desc: ClassDescriptor) -> CallFuture | None:
        """Start the class-cache probe that overlaps with state packing.

        Returns ``None`` when no probe is worth sending (probing disabled,
        always-ship ablation, local move, or this mover already shipped
        the class there).  Otherwise the returned future's round trip runs
        while the caller marshals the object's state; hand it to
        :meth:`resolve_class_probe` for the ship/skip decision.
        """
        if not self.probe_classes or self.always_ship_class or target == self.node_id:
            return None
        with self._lock:
            if target in self._known_at.get(desc.source_hash, set()):
                return None
        return self._transport.call_async(
            self.node_id, target, MessageKind.CLASS_TRANSFER,
            ClassPush(class_name=desc.class_name, source_hash=desc.source_hash),
        )

    def resolve_class_probe(self, probe: CallFuture | None, target: str,
                            desc: ClassDescriptor) -> bool:
        """Whether the class body must ship, once packing has finished."""
        if probe is None:
            return self._must_ship(target, desc)
        try:
            have = bool(probe.result())
        except Exception:
            # An unreachable target fails the transfer itself in a moment;
            # fall back to local knowledge rather than failing early here.
            return self._must_ship(target, desc)
        if have:
            self._note_known(target, desc.source_hash)
        return not have

    # -- receiving side --------------------------------------------------------------

    def receive(self, transfer: ObjectTransfer) -> str:
        """Handle an incoming OBJECT_TRANSFER; returns ``"ok"``.

        Idempotent per ``transfer_id`` so a retransmitted transfer (lost
        ack) cannot materialize two copies.
        """
        with self._lock:
            if transfer.transfer_id in self._seen_transfers:
                return "ok"
        cls = self._class_for(transfer)
        obj = self.unpack(cls, transfer.state_blob)
        self._store.add(transfer.name, obj, shared=transfer.shared)
        self._registry.record_arrival(transfer.name)
        self._locks.mark_arrived(transfer.name)
        with self._lock:
            self._seen_transfers.add(transfer.transfer_id)
            self._seen_order.append(transfer.transfer_id)
            while len(self._seen_order) > 4096:
                self._seen_transfers.discard(self._seen_order.popleft())
            self.moves_in += 1
        return "ok"

    def _class_for(self, transfer: ObjectTransfer) -> type:
        if transfer.class_desc is not None:
            return self._classcache.load(transfer.class_desc)
        if self._classcache.has_hash(transfer.class_hash):
            return self._classcache.clone_by_hash(transfer.class_hash)
        # Sender trusted a cache we no longer have: pull from the origin.
        desc = self._transport.call(
            self.node_id,
            transfer.origin,
            MessageKind.CLASS_REQUEST,
            ClassRequest(class_name=transfer.class_name),
        )
        if not isinstance(desc, ClassDescriptor):
            raise ClassTransferError(
                f"origin {transfer.origin!r} returned no descriptor "
                f"for {transfer.class_name!r}"
            )
        return self._classcache.load(desc)
