"""The migration engine: weak migration of objects between namespaces.

§3.5: "Since the standard Java virtual machine does not provide access to
execution state, MAGE uses weak migration" — heap state moves, stacks do
not.  CPython imposes the same constraint, so the engine ships
``(class descriptor, marshalled state)`` pairs, exactly the paper's model.

Move protocol (the wire half of the GREV protocol, Figure 7):

1. the initiator sends ``MOVE_REQUEST`` to the hosting node;
2. the host packs the object and ships it to the target (class body
   included only when the host believes the target lacks it — the §4.2
   class-cache optimization);
3. the target reconstructs, registers the arrival, and acknowledges;
4. the host evicts its copy, records a forwarding address, fails waiting
   lock requests over to the new location, and answers the initiator.

Transfer-then-evict ordering means a failed transfer leaves the object
safely at the source; the exclusive move lock prevents the transient
two-copies window from being observed.

Step 2 has two wire shapes.  Small objects ship as the paper's single
``OBJECT_TRANSFER`` frame — the fast path, and the exact message the
figure benches trace.  State blobs at or above ``stream_threshold``
stream as a **two-phase pipeline** instead:

``TRANSFER_PREPARE``
    reserves a staging slot at the receiver (idempotent per
    ``transfer_id``); nothing touches the hot store.
``TRANSFER_CHUNK`` × N
    windowed, pipelined slices of the marshalled state
    (:meth:`Transport.stream`), each a zero-copy ``memoryview`` view of
    the blob on the send path.  Chunks accumulate in the staging slot.
``TRANSFER_COMMIT``
    atomically verifies completeness, unpacks, registers, and acks; only
    now does the object exist at the target, and only on this ack does
    the source evict.  Idempotent per ``transfer_id``.
``TRANSFER_ABORT``
    discards the staging slot (explicit on stream failure, from a hedged
    write's loser, or implicitly when the staging GC reaps an orphan
    whose TTL lapsed).  Refused after a commit — the object materialized.

Because apply is deferred to COMMIT, a partially streamed transfer can
never materialize a half-built object, and the same property makes
**hedged writes** safe: :meth:`Mover.move_out` with ``alternates`` streams
PREPARE+CHUNKs speculatively to several candidate targets, COMMITs the
first to finish staging, and ABORTs the losers before anything applied.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.errors import (
    ClassTransferError,
    LockError,
    MigrationError,
    NoSuchObjectError,
    ObjectPinnedError,
)
from repro.net.deadline import Deadline, effective_deadline
from repro.net.message import MessageKind
from repro.net.transport import CallFuture, Transport
from repro.rmi.classdesc import ClassDescriptor, describe_class
from repro.rmi.marshal import StubFactory, marshal, unmarshal
from repro.rmi.protocol import (
    ClassPush,
    ClassRequest,
    ObjectTransfer,
    TransferAbort,
    TransferChunk,
    TransferCommit,
    TransferPrepare,
)
from repro.runtime.classcache import ClassCache
from repro.runtime.locks import LockManager
from repro.runtime.registry import MageRegistry
from repro.runtime.store import ObjectStore
from repro.util.ids import fresh_token

#: State blobs at or above this many bytes stream as chunked two-phase
#: transfers; below it the paper's single OBJECT_TRANSFER frame ships
#: (keeping every figure bench's traces byte-identical).
DEFAULT_STREAM_THRESHOLD = 256 * 1024

#: One TRANSFER_CHUNK's slice of the marshalled state.
DEFAULT_CHUNK_BYTES = 256 * 1024

#: How many chunk frames a plain streamed transfer keeps outstanding.
DEFAULT_STREAM_WINDOW = 8

#: How long an orphaned staging entry survives without its COMMIT before
#: the staging GC reaps it (senders with a deadline shorten this to their
#: remaining budget plus slack).
DEFAULT_STAGING_TTL_MS = 30_000.0


def _zero_copy_slice(view: memoryview, start: int, end: int) -> Any:
    """A chunk payload over ``view[start:end]`` that never copies on send.

    A plain ``memoryview`` slice: :class:`TransferChunk.__reduce__` wraps
    it in a transient ``pickle.PickleBuffer`` at dump time, which protocol
    5 serializes in-band straight from the original blob — so chunking an
    8 MB state costs zero intermediate copies on the send path.  (The
    receiver normalizes via :meth:`TransferChunk.data_bytes`.)
    """
    return view[start:end]


@dataclass
class _StagedTransfer:
    """One in-flight streamed transfer at the receiver, keyed off the hot
    store: chunks accumulate here and nothing is observable until COMMIT."""

    prepare: TransferPrepare
    expires_at: float                       # monotonic reap point
    chunks: dict[int, bytes] = field(default_factory=dict)
    received_bytes: int = 0


#: Stripe count for per-transfer receiver state.  Concurrent streamed
#: transfers arrive on the transport's bulk worker pool; a mover-wide
#: lock would serialize their chunk accumulation against each other (and
#: against single-frame applies), so transfers stripe by id hash.
_TRANSFER_SHARDS = 8

#: Dedup tombstones kept per shard (applied and aborted ids each);
#: totals match the previous mover-wide 4096 cap.
_TOMBSTONE_CAP = 4096 // _TRANSFER_SHARDS


class _TransferShard:
    """One stripe of the mover's per-transfer state: own lock, own dicts.

    A transfer id lives wholly in one shard, so every cross-check the
    protocol depends on — PREPARE against the abort tombstones, COMMIT
    against the staging slot, ABORT against an in-flight apply — still
    happens under a single lock; just not the same lock as every *other*
    transfer's.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._staging: dict[str, _StagedTransfer] = {}
        self._applying: dict[str, threading.Event] = {}
        self._seen: set[str] = set()
        self._seen_order: deque[str] = deque()
        self._aborted: set[str] = set()
        self._aborted_order: deque[str] = deque()

    def begin_apply(self, transfer_id: str) -> None:
        """Reserve ``transfer_id`` for this thread's apply (single-flight)."""
        while True:
            with self._lock:
                if transfer_id in self._seen:
                    raise _AlreadyApplied()
                event = self._applying.get(transfer_id)
                if event is None:
                    self._applying[transfer_id] = threading.Event()
                    return
            event.wait()
            # The holder finished: either it applied (seen → "ok") or it
            # failed and released the reservation (this thread then
            # claims the flight and executes afresh).

    def end_apply(self, transfer_id: str) -> None:
        with self._lock:
            event = self._applying.pop(transfer_id, None)
        if event is not None:
            event.set()

    def record_applied(self, transfer_id: str) -> None:
        with self._lock:
            self._seen.add(transfer_id)
            self._seen_order.append(transfer_id)
            while len(self._seen_order) > _TOMBSTONE_CAP:
                self._seen.discard(self._seen_order.popleft())

    def stage(self, prep: TransferPrepare, node_id: str) -> None:
        with self._lock:
            if prep.transfer_id in self._seen:
                return  # already committed; a late PREPARE retransmission
            if prep.transfer_id in self._aborted:
                raise MigrationError(
                    f"transfer {prep.transfer_id!r} was aborted at "
                    f"{node_id!r}; its frames are dead"
                )
            if prep.transfer_id not in self._staging:
                self._staging[prep.transfer_id] = _StagedTransfer(
                    prepare=prep,
                    expires_at=time.monotonic() + prep.ttl_ms / 1000.0,
                )

    def add_chunk(self, chunk: TransferChunk, data: bytes,
                  node_id: str) -> None:
        with self._lock:
            if chunk.transfer_id in self._seen:
                return  # committed already; late retransmission
            entry = self._staging.get(chunk.transfer_id)
            if entry is None:
                raise MigrationError(
                    f"no staged transfer {chunk.transfer_id!r} at "
                    f"{node_id!r} (PREPARE missing, aborted, or reaped)"
                )
            if chunk.index not in entry.chunks:
                entry.chunks[chunk.index] = data
                entry.received_bytes += len(data)

    def claim_commit(self, commit: TransferCommit,
                     node_id: str) -> _StagedTransfer:
        """Verify completeness and take ownership of the staging entry."""
        with self._lock:
            entry = self._staging.get(commit.transfer_id)
            if entry is None:
                raise MigrationError(
                    f"cannot commit unknown transfer {commit.transfer_id!r} "
                    f"at {node_id!r} (never prepared, aborted, or reaped)"
                )
            prep = entry.prepare
            if (len(entry.chunks) != prep.chunk_count
                    or entry.received_bytes != prep.total_bytes):
                raise MigrationError(
                    f"transfer {commit.transfer_id!r} incomplete: "
                    f"{len(entry.chunks)}/{prep.chunk_count} chunks, "
                    f"{entry.received_bytes}/{prep.total_bytes} bytes"
                )
            # Claimed: from here the caller owns the apply; drop the
            # staging entry so an abort retransmission cannot race it.
            del self._staging[commit.transfer_id]
        return entry

    def abort(self, ab: TransferAbort, node_id: str) -> None:
        while True:
            with self._lock:
                if ab.transfer_id in self._seen:
                    raise MigrationError(
                        f"transfer {ab.transfer_id!r} already committed at "
                        f"{node_id!r}; cannot abort a materialized object"
                    )
                event = self._applying.get(ab.transfer_id)
                if event is None:
                    self._staging.pop(ab.transfer_id, None)
                    if ab.transfer_id not in self._aborted:
                        self._aborted.add(ab.transfer_id)
                        self._aborted_order.append(ab.transfer_id)
                        while len(self._aborted_order) > _TOMBSTONE_CAP:
                            self._aborted.discard(
                                self._aborted_order.popleft()
                            )
                    return
            event.wait()
            # The apply finished: committed -> refuse above; failed (its
            # reservation was released, nothing materialized) -> abort.

    def reap(self, now: float) -> int:
        with self._lock:
            dead = [tid for tid, entry in self._staging.items()
                    if entry.expires_at <= now]
            for tid in dead:
                del self._staging[tid]
        return len(dead)

    def staging_count(self) -> int:
        with self._lock:
            return len(self._staging)


class Mover:
    """Sends and receives weakly-migrated objects for one namespace."""

    def __init__(
        self,
        node_id: str,
        store: ObjectStore,
        classcache: ClassCache,
        registry: MageRegistry,
        locks: LockManager,
        transport: Transport,
        stub_factory: StubFactory,
        always_ship_class: bool = False,
        probe_classes: bool = False,
        stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        stream_window: int = DEFAULT_STREAM_WINDOW,
        staging_ttl_ms: float = DEFAULT_STAGING_TTL_MS,
    ) -> None:
        self.node_id = node_id
        self._store = store
        self._classcache = classcache
        self._registry = registry
        self._locks = locks
        self._transport = transport
        self._stub_factory = stub_factory
        #: Ablation knob: ship the full class body on every move instead of
        #: trusting the receiver's cache.
        self.always_ship_class = always_ship_class
        #: Overlap a remote class-cache probe with state packing before a
        #: transfer to a target this mover has never shipped the class to.
        #: A hit (the target got the class from a third node) saves the
        #: class body on the wire; the probe's round trip hides behind the
        #: marshalling work.  Off by default: the probe adds a message, and
        #: the figure benches pin the paper's exact sequences.
        self.probe_classes = probe_classes
        #: Streaming knobs (see module docstring); ``stream_threshold`` of
        #: ``None``/huge effectively forces the monolithic fast path.
        self.stream_threshold = stream_threshold
        self.chunk_bytes = chunk_bytes
        self.stream_window = stream_window
        self.staging_ttl_ms = staging_ttl_ms
        self._known_at: dict[str, set[str]] = {}  # source_hash -> nodes holding it
        # Per-transfer receiver state (staging slots, apply reservations,
        # applied/aborted tombstones) stripes by transfer-id hash; see
        # :class:`_TransferShard` for why ids never cross stripes.
        self._shards = tuple(
            _TransferShard() for _ in range(_TRANSFER_SHARDS)
        )
        self._lock = threading.Lock()
        self.moves_out = 0
        self.moves_in = 0
        self.staging_reaped = 0

    # -- packing --------------------------------------------------------------

    def descriptor_for(self, obj: Any) -> ClassDescriptor:
        """The shippable definition of ``obj``'s class.

        A clone (arrived over the wire earlier) already has its descriptor
        cached; a native class is registered on first departure.
        """
        cls = type(obj)
        source_hash = getattr(cls, "__mage_source_hash__", None)
        if source_hash is not None:
            return self._classcache.descriptor(cls.__name__)
        return self._classcache.register_native(cls)

    def pack_state(self, obj: Any) -> bytes:
        """Marshal the heap state of ``obj`` (honours ``__getstate__``)."""
        getstate = getattr(obj, "__getstate__", None)
        state = getstate() if callable(getstate) else dict(obj.__dict__)
        return marshal(state)

    def unpack(self, cls: type, state_blob: bytes) -> Any:
        """Rebuild an instance from migrated state (honours ``__setstate__``)."""
        obj = cls.__new__(cls)
        state = unmarshal(state_blob, self._stub_factory)
        setstate = getattr(obj, "__setstate__", None)
        if callable(setstate):
            setstate(state)
        else:
            obj.__dict__.update(state)
        return obj

    # -- sending side ------------------------------------------------------------

    def move_out(self, name: str, target: str, lock_token: str = "",
                 deadline: Deadline | None = None,
                 alternates: Sequence[str] = ()) -> str:
        """Ship the locally hosted object ``name`` to ``target``.

        Returns the node the object landed on.  A move to the current
        namespace is a no-op (the stay case).  When the object's lock
        queue is active, the caller must present the current move-lock
        token.  ``deadline`` bounds the transfer (and defaults to the
        dispatch deadline when this runs on behalf of a remote
        MOVE_REQUEST, so the initiator's budget covers the transfer leg
        too).

        Small state ships as the paper's single OBJECT_TRANSFER frame;
        blobs at or above ``stream_threshold`` stream as the two-phase
        PREPARE/CHUNK/COMMIT pipeline.  ``alternates`` names additional
        candidate targets for a **hedged write**: the stream goes to
        every candidate speculatively, the first to finish staging gets
        the COMMIT (and becomes the returned location), and the losers
        are ABORTed before anything applied.  Sub-threshold objects
        ignore alternates — hedging a single small frame buys nothing.
        """
        if target == self.node_id:
            # The stay case — but only a node actually hosting the object
            # may claim it stayed.  Hedged and remote MOVE_REQUESTs probe
            # nodes on (possibly stale) hints; answering "already here"
            # without owning the object would fake a successful move and
            # poison the requester's forwarding table.
            if not self._store.contains(name):
                raise NoSuchObjectError(name, self.node_id)
            return self.node_id
        deadline = effective_deadline(deadline)
        record = self._store.record(name)
        if record.pinned:
            raise ObjectPinnedError(
                f"object {name!r} is pinned to {self.node_id!r}"
            )
        if self._locks.has_activity(name) and not self._locks.holds_move_lock(
            name, lock_token
        ):
            raise LockError(
                f"moving {name!r} requires its move lock (object is contended)"
            )
        desc = self.descriptor_for(record.obj)
        probe = self.begin_class_probe(target, desc)
        state_blob = self.pack_state(record.obj)  # overlaps the probe's round trip
        ship_class = self.resolve_class_probe(probe, target, desc)
        if len(state_blob) >= self.stream_threshold:
            candidates = [target]
            for alt in alternates:
                if alt not in candidates and alt != self.node_id:
                    candidates.append(alt)
            return self._move_out_streamed(
                name, record.shared, desc, state_blob, ship_class,
                candidates, deadline,
            )
        transfer = ObjectTransfer(
            name=name,
            class_name=desc.class_name,
            state_blob=state_blob,
            class_desc=desc if ship_class else None,
            class_hash=desc.source_hash,
            origin=self.node_id,
            transfer_id=fresh_token("xfer"),
            shared=record.shared,
        )
        self._locks.begin_departure(name)
        try:
            ack = self._transport.call(
                self.node_id, target, MessageKind.OBJECT_TRANSFER, transfer,
                deadline=deadline,
            )
        except BaseException:
            self._locks.abort_departure(name)
            raise
        if ack != "ok":
            self._locks.abort_departure(name)
            raise MigrationError(
                f"target {target!r} rejected transfer of {name!r}: {ack!r}"
            )
        # Transfer acknowledged: now (and only now) evict the local copy.
        self._finish_departure(name, target, desc)
        return target

    def _finish_departure(self, name: str, target: str,
                          desc: ClassDescriptor) -> None:
        """Evict + forward after the target acknowledged the apply."""
        self._store.remove(name)
        self._registry.record_departure(name, target)
        self._locks.mark_moved(name, target)
        self._note_known(target, desc.source_hash)
        with self._lock:
            self.moves_out += 1

    # -- streamed sending ------------------------------------------------------

    def _prepare_for(self, name: str, shared: bool, desc: ClassDescriptor,
                     nbytes: int, chunk_count: int, ship_class: bool,
                     deadline: Deadline | None) -> TransferPrepare:
        ttl_ms = self.staging_ttl_ms
        if deadline is not None:
            # The sender aborts (or is dead) once its budget lapses; the
            # slack covers the abort's own transit before the GC takes over.
            ttl_ms = min(ttl_ms, deadline.remaining_ms() + 1_000.0)
        return TransferPrepare(
            name=name,
            class_name=desc.class_name,
            class_desc=desc if ship_class else None,
            class_hash=desc.source_hash,
            origin=self.node_id,
            transfer_id=fresh_token("xfer"),
            total_bytes=nbytes,
            chunk_count=chunk_count,
            shared=shared,
            ttl_ms=ttl_ms,
        )

    def _chunk_requests(
        self, transfer_id: str, view: memoryview
    ) -> Iterator[tuple[MessageKind, TransferChunk]]:
        """Lazy ``(kind, payload)`` chunk stream over a zero-copy view."""
        for index, start in enumerate(range(0, len(view), self.chunk_bytes)):
            end = min(start + self.chunk_bytes, len(view))
            yield (
                MessageKind.TRANSFER_CHUNK,
                TransferChunk(
                    transfer_id=transfer_id,
                    index=index,
                    data=_zero_copy_slice(view, start, end),
                ),
            )

    def _chunk_count(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.chunk_bytes))

    def _abort_remote(self, target: str, transfer_id: str, reason: str) -> None:
        """Best-effort TRANSFER_ABORT; never blocks on a sick target."""
        try:
            future = self._transport.call_async(
                self.node_id, target, MessageKind.TRANSFER_ABORT,
                TransferAbort(transfer_id=transfer_id, reason=reason),
            )
            future.add_done_callback(lambda _f: None)  # outcome is advisory
        except Exception:
            pass  # the staging GC reaps what the abort cannot reach

    def _move_out_streamed(self, name: str, shared: bool,
                           desc: ClassDescriptor, state_blob: bytes,
                           ship_class: bool, targets: Sequence[str],
                           deadline: Deadline | None) -> str:
        """Two-phase streamed transfer; hedged when several targets given."""
        if len(targets) > 1:
            return self._move_out_hedged(name, shared, desc, state_blob,
                                         targets, deadline)
        target = targets[0]
        chunk_count = self._chunk_count(len(state_blob))
        prep = self._prepare_for(name, shared, desc, len(state_blob),
                                 chunk_count, ship_class, deadline)
        self._locks.begin_departure(name)
        try:
            self._transport.call(
                self.node_id, target, MessageKind.TRANSFER_PREPARE, prep,
                deadline=deadline,
            )
            self._transport.stream(
                self.node_id, target,
                self._chunk_requests(prep.transfer_id, memoryview(state_blob)),
                window=self.stream_window, deadline=deadline,
            )
            ack = self._transport.call(
                self.node_id, target, MessageKind.TRANSFER_COMMIT,
                TransferCommit(transfer_id=prep.transfer_id, name=name),
                deadline=deadline,
            )
        except BaseException:
            # The object never applied (apply is COMMIT-gated), so it
            # stays here; tell the target to drop its staging entry.
            self._locks.abort_departure(name)
            self._abort_remote(target, prep.transfer_id, "stream failed")
            raise
        if ack != "ok":
            self._locks.abort_departure(name)
            self._abort_remote(target, prep.transfer_id, f"bad ack {ack!r}")
            raise MigrationError(
                f"target {target!r} rejected transfer of {name!r}: {ack!r}"
            )
        self._finish_departure(name, target, desc)
        return target

    def _move_out_hedged(self, name: str, shared: bool, desc: ClassDescriptor,
                         state_blob: bytes, targets: Sequence[str],
                         deadline: Deadline | None) -> str:
        """Speculative streams to every candidate; first staged wins.

        PREPARE and every CHUNK go to all candidates (distinct
        ``transfer_id`` each, chunks interleaved round-robin, all frames
        zero-copy views of one blob).  Candidates race to finish staging:
        the first whose every frame is acked gets the COMMIT and becomes
        the object's new host; the losers' outstanding exchanges are
        cancelled and their staging ABORTed.  Safe precisely because
        nothing applies before COMMIT — at most one candidate ever
        materializes the object.  Falls back through the completion order
        if the leader's COMMIT fails; raises
        :class:`~repro.errors.MigrationError` when every candidate fails
        or the deadline lapses first.
        """
        ranked = self._transport.rank_by_latency(list(targets))
        preps: dict[str, TransferPrepare] = {}
        chunk_count = self._chunk_count(len(state_blob))
        view = memoryview(state_blob)
        self._locks.begin_departure(name)
        futures: dict[str, list[CallFuture]] = {}
        try:
            for target in ranked:
                ship_class = self._must_ship(target, desc)
                preps[target] = self._prepare_for(
                    name, shared, desc, len(state_blob), chunk_count,
                    ship_class, deadline,
                )
            # Scatter every frame speculatively: PREPARE first, then the
            # chunk streams interleaved round-robin so no candidate waits
            # for another's bytes.  No windowing here — hedging trades the
            # window's backpressure for never letting a slow candidate
            # throttle the fast one, and the frames are zero-copy views so
            # sender memory stays flat.
            for target in ranked:
                futures[target] = [self._transport.call_async(
                    self.node_id, target, MessageKind.TRANSFER_PREPARE,
                    preps[target], deadline=deadline,
                )]
            for request_pair in zip(*(
                list(self._chunk_requests(preps[t].transfer_id, view))
                for t in ranked
            )):
                for target, (kind, payload) in zip(ranked, request_pair):
                    futures[target].append(self._transport.call_async(
                        self.node_id, target, kind, payload, deadline=deadline,
                    ))
            winner = self._commit_first_staged(
                name, ranked, preps, futures, deadline,
            )
        except BaseException:
            self._locks.abort_departure(name)
            for target, prep in preps.items():
                for future in futures.get(target, ()):
                    if not future.done():
                        future.cancel("hedged write abandoned")
                self._abort_remote(target, prep.transfer_id, "hedge aborted")
            raise
        self._finish_departure(name, winner, desc)
        return winner

    def _commit_first_staged(self, name: str, ranked: Sequence[str],
                             preps: dict[str, TransferPrepare],
                             futures: dict[str, list[CallFuture]],
                             deadline: Deadline | None) -> str:
        """Collect staging acks in completion order; COMMIT the first full
        set, ABORT everyone else.  Raises when nobody stages in budget."""
        completions: "queue.Queue[tuple[str, CallFuture]]" = queue.Queue()
        remaining = {t: set(fs) for t, fs in futures.items()}
        alive = set(ranked)
        for target, fs in futures.items():
            for future in fs:
                future.add_done_callback(
                    lambda f, t=target: completions.put((t, f)))
        failure: Exception | None = None
        while alive:
            wait_s = None
            if deadline is not None:
                wait_s = deadline.remaining_s()
                if wait_s <= 0:
                    break
            pending = [f for t in alive for f in remaining[t]]
            bounds = [f._wait_bound_s() for f in pending]
            if bounds and all(b is not None for b in bounds):
                cap = max(bounds) + 0.05
                wait_s = cap if wait_s is None else min(wait_s, cap)
            try:
                target, future = completions.get(timeout=wait_s)
            except queue.Empty:
                if deadline is not None and deadline.expired:
                    break
                for f in pending:  # out-waited their own transport bound
                    if not f.done():
                        f.cancel("hedged write: transport bound exhausted")
                continue
            if target not in alive:
                continue
            if future.exception(0) is not None:
                # One frame failed: this candidate's stream is dead.  Cut
                # its remaining exchanges loose and drop its partial
                # staging now rather than leaving it to the TTL reaper.
                failure = failure or future.exception(0)
                alive.discard(target)
                for straggler in remaining[target]:
                    straggler.cancel("hedged write: a sibling frame failed")
                self._abort_remote(target, preps[target].transfer_id,
                                   "stream failed")
                continue
            remaining[target].discard(future)
            if remaining[target]:
                continue
            # Fully staged: commit this candidate, abort the rest.
            try:
                ack = self._transport.call(
                    self.node_id, target, MessageKind.TRANSFER_COMMIT,
                    TransferCommit(transfer_id=preps[target].transfer_id,
                                   name=name),
                    deadline=deadline,
                )
            except Exception as exc:
                failure = failure or exc
                alive.discard(target)
                self._abort_remote(target, preps[target].transfer_id,
                                   "commit failed")
                continue
            if ack != "ok":
                failure = failure or MigrationError(
                    f"target {target!r} rejected commit of {name!r}: {ack!r}"
                )
                alive.discard(target)
                self._abort_remote(target, preps[target].transfer_id,
                                   f"bad ack {ack!r}")
                continue
            for loser in alive:
                if loser == target:
                    continue
                for future in remaining[loser]:
                    future.cancel(f"hedged write: {target!r} staged first")
                self._abort_remote(loser, preps[loser].transfer_id,
                                   f"lost the hedge to {target!r}")
            return target
        for target in alive:  # deadline lapsed with candidates mid-stream
            for future in remaining[target]:
                future.cancel("hedged write: deadline expired")
            self._abort_remote(target, preps[target].transfer_id,
                               "deadline expired")
        if failure is not None:
            raise MigrationError(
                f"hedged write of {name!r} to {list(ranked)} failed"
            ) from failure
        raise MigrationError(
            f"hedged write of {name!r}: deadline expired before any of "
            f"{list(ranked)} finished staging"
        )

    def _must_ship(self, target: str, desc: ClassDescriptor) -> bool:
        if self.always_ship_class:
            return True
        with self._lock:
            return target not in self._known_at.get(desc.source_hash, set())

    def _note_known(self, node: str, source_hash: str) -> None:
        with self._lock:
            self._known_at.setdefault(source_hash, set()).add(node)

    def begin_class_probe(self, target: str,
                          desc: ClassDescriptor) -> CallFuture | None:
        """Start the class-cache probe that overlaps with state packing.

        Returns ``None`` when no probe is worth sending (probing disabled,
        always-ship ablation, local move, or this mover already shipped
        the class there).  Otherwise the returned future's round trip runs
        while the caller marshals the object's state; hand it to
        :meth:`resolve_class_probe` for the ship/skip decision.
        """
        if not self.probe_classes or self.always_ship_class or target == self.node_id:
            return None
        with self._lock:
            if target in self._known_at.get(desc.source_hash, set()):
                return None
        return self._transport.call_async(
            self.node_id, target, MessageKind.CLASS_TRANSFER,
            ClassPush(class_name=desc.class_name, source_hash=desc.source_hash),
        )

    def resolve_class_probe(self, probe: CallFuture | None, target: str,
                            desc: ClassDescriptor) -> bool:
        """Whether the class body must ship, once packing has finished."""
        if probe is None:
            return self._must_ship(target, desc)
        try:
            have = bool(probe.result())
        except Exception:
            # An unreachable target fails the transfer itself in a moment;
            # fall back to local knowledge rather than failing early here.
            return self._must_ship(target, desc)
        if have:
            self._note_known(target, desc.source_hash)
        return not have

    # -- receiving side --------------------------------------------------------------

    def receive(self, transfer: ObjectTransfer) -> str:
        """Handle an incoming single-frame OBJECT_TRANSFER; returns ``"ok"``.

        Idempotent per ``transfer_id`` so a retransmitted transfer (lost
        ack) cannot materialize two copies.  The id is **reserved on
        entry** (and the reservation released on failure): two concurrent
        retransmissions of one transfer converge on a single apply — the
        loser waits for the winner's outcome instead of racing it through
        the unpack/store window, which used to allow a double-apply.
        """
        shard = self._xfer_shard(transfer.transfer_id)
        try:
            shard.begin_apply(transfer.transfer_id)
        except _AlreadyApplied:
            return "ok"
        try:
            cls = self._class_for(transfer)
            obj = self.unpack(cls, transfer.state_blob)
            self._apply(transfer.name, obj, transfer.shared,
                        transfer.transfer_id)
        finally:
            shard.end_apply(transfer.transfer_id)
        return "ok"

    def _xfer_shard(self, transfer_id: str) -> _TransferShard:
        return self._shards[hash(transfer_id) % _TRANSFER_SHARDS]

    def _apply(self, name: str, obj: Any, shared: bool, transfer_id: str) -> None:
        """Materialize an arrived object; the single door into the store."""
        self._store.add(name, obj, shared=shared)
        self._registry.record_arrival(name)
        self._locks.mark_arrived(name)
        self._xfer_shard(transfer_id).record_applied(transfer_id)
        with self._lock:
            self.moves_in += 1

    # -- receiving side: streamed transfers -------------------------------------

    def staging_count(self) -> int:
        """How many streamed transfers are currently staged (diagnostics)."""
        return sum(shard.staging_count() for shard in self._shards)

    def reap_staging(self) -> int:
        """Drop staging entries whose TTL lapsed; returns how many died.

        The orphan GC: a sender that vanished mid-stream (or whose ABORT
        was lost) must not leak its staged bytes forever.  Runs
        opportunistically on every staging interaction and is callable
        directly (tests, periodic sweeps).
        """
        now = time.monotonic()
        dead = sum(shard.reap(now) for shard in self._shards)
        if dead:
            with self._lock:
                self.staging_reaped += dead
        return dead

    def prepare(self, prep: TransferPrepare) -> str:
        """Reserve a staging slot (phase one); idempotent per transfer id."""
        self.reap_staging()
        self._xfer_shard(prep.transfer_id).stage(prep, self.node_id)
        return "ok"

    def receive_chunk(self, chunk: TransferChunk) -> str:
        """Accumulate one streamed slice in its staging slot."""
        data = chunk.data_bytes()  # normalize outside the lock (may copy)
        self._xfer_shard(chunk.transfer_id).add_chunk(
            chunk, data, self.node_id
        )
        return "ok"

    def commit(self, commit: TransferCommit) -> str:
        """Atomically apply a fully staged transfer (phase two).

        Verifies completeness against the PREPARE's chunk count and byte
        total, unpacks, and registers — the first moment the object is
        observable at this node.  Idempotent per ``transfer_id`` (a
        retransmitted COMMIT re-acks); a commit of an incomplete or
        unknown staging raises, leaving the source's copy authoritative.
        """
        shard = self._xfer_shard(commit.transfer_id)
        try:
            shard.begin_apply(commit.transfer_id)
        except _AlreadyApplied:
            return "ok"
        try:
            entry = shard.claim_commit(commit, self.node_id)
            prep = entry.prepare
            state_blob = b"".join(
                entry.chunks[i] for i in range(prep.chunk_count)
            )
            cls = self._class_for(prep)
            obj = self.unpack(cls, state_blob)
            self._apply(prep.name, obj, prep.shared, commit.transfer_id)
        finally:
            shard.end_apply(commit.transfer_id)
        return "ok"

    def abort(self, ab: TransferAbort) -> str:
        """Discard a staged transfer; refused once it committed.

        Leaves a tombstone: transfer ids are single-use, so any frame of
        this transfer still in flight (or queued behind a stall) is
        refused when it eventually dispatches — a PREPARE executing
        *after* its ABORT must not resurrect an orphan staging entry.

        An abort racing an **in-flight COMMIT** (the sender's commit call
        timed out mid-apply and its failure path sent the abort) waits
        for that apply's outcome instead of answering from the gap: the
        commit claims the staging entry before it unpacks, so a same-
        instant abort would otherwise see "no staging, not yet seen" and
        ack an abort of an object that is about to materialize — the
        exact two-copies split the refusal below exists to prevent.
        """
        self._xfer_shard(ab.transfer_id).abort(ab, self.node_id)
        return "ok"

    def _class_for(self, transfer) -> type:
        """Resolve the class for an arrival (ObjectTransfer or TransferPrepare)."""
        if transfer.class_desc is not None:
            return self._classcache.load(transfer.class_desc)
        if self._classcache.has_hash(transfer.class_hash):
            return self._classcache.clone_by_hash(transfer.class_hash)
        # Sender trusted a cache we no longer have: pull from the origin.
        desc = self._transport.call(
            self.node_id,
            transfer.origin,
            MessageKind.CLASS_REQUEST,
            ClassRequest(class_name=transfer.class_name),
        )
        if not isinstance(desc, ClassDescriptor):
            raise ClassTransferError(
                f"origin {transfer.origin!r} returned no descriptor "
                f"for {transfer.class_name!r}"
            )
        return self._classcache.load(desc)


class _AlreadyApplied(Exception):
    """Internal: the transfer id already applied (dedup hit)."""
