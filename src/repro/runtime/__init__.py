"""The MAGE runtime system (RTS, §4.1).

Cooperating namespaces layered over the transport: each node runs an
object store, class cache, MAGE registry (forwarding chains), stay/move
lock manager, migration engine, and the home/remote server pair.
:class:`~repro.runtime.namespace.Namespace` assembles all of it for one
node.
"""

from repro.runtime.classcache import ClassCache
from repro.runtime.external import MageExternalServer
from repro.runtime.locks import LockGrant, LockManager, LockStats, MOVE, STAY
from repro.runtime.metrics import METRICS_HEADER, NamespaceMetrics, collect, collect_cluster
from repro.runtime.mover import Mover
from repro.runtime.namespace import Namespace
from repro.runtime.registry import MageRegistry
from repro.runtime.server import MageServer
from repro.runtime.store import ObjectStore, ServantRecord

__all__ = [
    "ClassCache",
    "METRICS_HEADER",
    "NamespaceMetrics",
    "collect",
    "collect_cluster",
    "LockGrant",
    "LockManager",
    "LockStats",
    "MOVE",
    "STAY",
    "MageExternalServer",
    "MageRegistry",
    "MageServer",
    "Mover",
    "Namespace",
    "ObjectStore",
    "ServantRecord",
]
