"""Observability: per-namespace metrics.

The paper's introduction demands systems that "respond to network
congestion and adapt to the appearance, disappearance and shifting of
resources" — which requires seeing what the runtime is doing.  This module
assembles a point-in-time :class:`NamespaceMetrics` from state the
services already keep (store census, class-cache counters, lock stats,
mover counters) plus the transport trace (per-node message and byte
traffic), without instrumenting any hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.reactor import DataPlaneStats
from repro.net.trace import MessageTrace
from repro.runtime.namespace import Namespace


@dataclass(frozen=True)
class NamespaceMetrics:
    """A snapshot of one namespace's activity."""

    node_id: str
    # Traffic (remote messages only; local consultations are free).
    messages_in: int
    messages_out: int
    bytes_in: int
    bytes_out: int
    invocations_served: int
    finds_served: int
    # Mobility.
    moves_in: int
    moves_out: int
    # Code.
    class_loads: int
    class_cache_hits: int
    classes_cached: int
    # Locking.
    stays_granted: int
    moves_granted: int
    lock_waits: int
    # Census.
    objects_hosted: int

    def row(self) -> tuple:
        """A compact table row for cluster-wide reports."""
        return (
            self.node_id,
            self.objects_hosted,
            f"{self.messages_in}/{self.messages_out}",
            f"{self.bytes_in}/{self.bytes_out}",
            self.invocations_served,
            f"{self.moves_in}/{self.moves_out}",
            f"{self.stays_granted}/{self.moves_granted}",
        )


#: Header matching :meth:`NamespaceMetrics.row`.
METRICS_HEADER = (
    "Namespace", "Objects", "Msgs in/out", "Bytes in/out",
    "Invocations", "Moves in/out", "Locks stay/move",
)


def collect(namespace: Namespace, trace: MessageTrace | None = None) -> NamespaceMetrics:
    """Snapshot ``namespace``'s metrics (trace defaults to its transport's)."""
    if trace is None:
        trace = namespace.transport.trace
    node = namespace.node_id
    messages_in = messages_out = bytes_in = bytes_out = 0
    invocations_served = finds_served = 0
    for event in trace.events():
        if event.dropped or event.local:
            continue
        if event.dst == node:
            messages_in += 1
            bytes_in += event.nbytes
            if event.kind == "INVOKE":
                invocations_served += 1
            elif event.kind == "FIND":
                finds_served += 1
        elif event.src == node:
            messages_out += 1
            bytes_out += event.nbytes
    lock_stats = namespace.locks.stats
    return NamespaceMetrics(
        node_id=node,
        messages_in=messages_in,
        messages_out=messages_out,
        bytes_in=bytes_in,
        bytes_out=bytes_out,
        invocations_served=invocations_served,
        finds_served=finds_served,
        moves_in=namespace.mover.moves_in,
        moves_out=namespace.mover.moves_out,
        class_loads=namespace.classcache.loads,
        class_cache_hits=namespace.classcache.hits,
        classes_cached=len(namespace.classcache.class_names()),
        stays_granted=lock_stats.stays_granted,
        moves_granted=lock_stats.moves_granted,
        lock_waits=lock_stats.stay_waits + lock_stats.move_waits,
        objects_hosted=len(namespace.store),
    )


def collect_cluster(cluster) -> list[NamespaceMetrics]:
    """Metrics for every node of a :class:`~repro.cluster.cluster.Cluster`."""
    return [collect(node.namespace, cluster.trace) for node in cluster]


def collect_data_plane(transport) -> DataPlaneStats | None:
    """Data-plane stats for transports that have a wire data plane.

    The reactor-backed TCP transport reports flush-batch sizes,
    per-connection queue high-water marks, and event-loop lag
    (:meth:`~repro.net.tcpnet.TcpNetwork.data_plane_metrics`); the
    simulated network has no data plane and yields ``None``.  Probed by
    attribute so callers need not know the transport's concrete type —
    the throughput bench report feeds these numbers into its artifacts.
    """
    probe = getattr(transport, "data_plane_metrics", None)
    if probe is None:
        return None
    return probe()
