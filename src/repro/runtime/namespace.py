"""A namespace: one execution environment (§2, §4.1).

The paper's Figure 6 shows each JVM overlaid with a MAGE registry, a
``MageServer`` (home interface) and a ``MageExternalServer`` (remote
interface).  :class:`Namespace` is that overlay for one node: it assembles
the object store, class cache, MAGE registry, lock manager, mover, both
servers, and the RMI client/naming, then registers its dispatcher with the
transport.

A ``Namespace`` is also the *runtime* handle that mobility attributes are
constructed against — either passed explicitly (``REV(..., runtime=ns)``)
or ambiently via :func:`repro.core.context.use_runtime`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.transport import Transport
from repro.rmi.bypass import LocalDispatch
from repro.rmi.client import RmiClient
from repro.rmi.naming import Naming
from repro.rmi.registry import RmiRegistry
from repro.runtime.classcache import ClassCache
from repro.runtime.external import MageExternalServer
from repro.runtime.locks import LockManager
from repro.runtime.mover import Mover
from repro.runtime.registry import MageRegistry
from repro.runtime.server import MageServer
from repro.runtime.store import ObjectStore
from repro.util.ids import validate_node_id


class Namespace:
    """The MAGE runtime for one node.

    Construction wires every runtime service together and registers the
    inbound dispatcher with the transport; :meth:`shutdown` detaches it.

    Configuration knobs double as the ablation switches the benches study:

    * ``fair_locks`` — strict-FIFO locking instead of the paper's unfair
      stay preference (§4.4);
    * ``class_cache`` — retain class clones between migrations (§4.2);
    * ``path_collapsing`` — rewrite forwarding addresses on find (§4.1);
    * ``always_ship_class`` — ship class bodies on every move;
    * ``probe_classes`` — overlap an async class-cache probe with state
      packing before transfers/hops, skipping the class body when the
      target already caches it (off by default: the figure benches pin
      the paper's exact message sequences);
    * ``stream_threshold`` / ``chunk_bytes`` — state blobs at or above
      the threshold migrate as the chunked two-phase
      PREPARE/CHUNK/COMMIT pipeline instead of one monolithic
      OBJECT_TRANSFER frame (``None`` keeps the mover defaults; a huge
      threshold forces the paper's single-frame path for every object).
    """

    def __init__(
        self,
        node_id: str,
        transport: Transport,
        fair_locks: bool = False,
        class_cache: bool = True,
        path_collapsing: bool = True,
        always_ship_class: bool = False,
        probe_classes: bool = False,
        stream_threshold: int | None = None,
        chunk_bytes: int | None = None,
        load_provider: Callable[[], float] | None = None,
    ) -> None:
        self.node_id = validate_node_id(node_id)
        self.transport = transport
        self.store = ObjectStore(node_id)
        self.classcache = ClassCache(node_id, enabled=class_cache)
        self.rmi_registry = RmiRegistry(node_id)
        self.client = RmiClient(node_id, transport)
        self.naming = Naming(node_id, transport, self.client)
        self.registry = MageRegistry(
            node_id, self.rmi_registry, self.store, transport,
            path_collapsing=path_collapsing,
        )
        self.locks = LockManager(node_id, fair=fair_locks)
        mover_kwargs = {}
        if stream_threshold is not None:
            mover_kwargs["stream_threshold"] = stream_threshold
        if chunk_bytes is not None:
            mover_kwargs["chunk_bytes"] = chunk_bytes
        self.mover = Mover(
            node_id,
            self.store,
            self.classcache,
            self.registry,
            self.locks,
            transport,
            stub_factory=self.client.stub_for,
            always_ship_class=always_ship_class,
            probe_classes=probe_classes,
            **mover_kwargs,
        )
        self.server = MageServer(
            node_id,
            self.store,
            self.classcache,
            self.registry,
            self.locks,
            self.mover,
            transport,
            self.client,
        )
        self._load_provider = load_provider if load_provider is not None else lambda: 0.0
        self.external = MageExternalServer(
            node_id,
            self.store,
            self.classcache,
            self.registry,
            self.rmi_registry,
            self.locks,
            self.mover,
            stub_factory=self.client.stub_for,
            load_provider=self._get_load,
        )
        if getattr(transport, "supports_local_bypass", False):
            # Same-host fast paths: attach the tier-1 in-process dispatcher
            # and feed the client's tier-3 location cache from the
            # registry's location funnel.  Gated on the transport so the
            # simulated network keeps its exact pre-bypass call path (and
            # byte-identical figure traces).
            self.client.attach_local(LocalDispatch(
                node_id, transport, self.store, self.external.invoker,
                self.client.stub_for,
            ))
            self.registry.add_location_listener(self.client.note_location)
            self.registry.add_eviction_listener(self.client.evict_locations)
        #: Filled in lazily by :func:`repro.core.agents.agent_manager_for`.
        self.agents = None
        self._running = False
        transport.register(node_id, self.external.handle)
        self._running = True

    def _get_load(self) -> float:
        return float(self._load_provider())

    def set_load_provider(self, provider: Callable[[], float]) -> None:
        """Swap the host-load source answering LOAD_QUERY messages."""
        self._load_provider = provider

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def shutdown(self) -> None:
        """Detach from the transport (idempotent).  Hosted objects remain
        in the store but become unreachable, like a crashed JVM."""
        if self._running:
            self.transport.unregister(self.node_id)
            self._running = False

    # -- programmer-facing facade (delegates to MageServer) -------------------

    def register(self, name: str, obj: Any, shared: bool = True,
                 pinned: bool = False):
        """Host ``obj`` here under ``name`` (this node becomes its origin)."""
        return self.server.register(name, obj, shared=shared, pinned=pinned)

    def register_class(self, cls: type):
        """Publish a class definition for REV/COD-style factories."""
        return self.server.register_class(cls)

    def unregister(self, name: str) -> Any:
        """Evict a locally hosted component; returns the object."""
        return self.server.unregister(name)

    def find(self, name: str, origin_hint: str | None = None,
             verify: bool = True, candidates=None, deadline=None) -> str:
        """Node id currently hosting ``name``.

        ``candidates`` probes several registries' forwarding chains in
        parallel instead of walking one (see ``MageServer.locate_any``);
        ``deadline`` bounds the whole resolution end to end.
        """
        return self.server.find(name, origin_hint, verify=verify,
                                candidates=candidates, deadline=deadline)

    def push_class(self, class_name: str, to_node: str,
                   batched: bool = False) -> str:
        """Push a class definition to ``to_node`` (REV direction)."""
        return self.server.push_class(class_name, to_node, batched=batched)

    def push_class_many(self, class_name: str, targets,
                        deadline=None) -> dict[str, str]:
        """Scatter a class to many targets in parallel (one frame each)."""
        return self.server.push_class_many(class_name, targets,
                                           deadline=deadline)

    def query_load_many(self, node_ids, skip_unreachable: bool = False,
                        deadline=None) -> dict[str, float]:
        """Parallel load sweep over ``node_ids`` (one shared deadline)."""
        return self.server.query_load_many(node_ids,
                                           skip_unreachable=skip_unreachable,
                                           deadline=deadline)

    def is_shared(self, name: str) -> bool:
        """Whether ``name`` may be moved by other threads between uses."""
        return self.server.is_shared(name)

    def move(self, name: str, target: str, origin_hint: str | None = None,
             lock_token: str = "", location: str | None = None,
             deadline=None, hedge: bool = False, alternates=()) -> str:
        """Weakly migrate ``name`` to ``target``; returns the new location.

        ``deadline`` bounds the find + chase + transfer end to end;
        ``hedge=True`` sends speculative MOVE_REQUESTs to the last-known
        host and the origin hint in parallel (first host wins) and, with
        ``alternates``, additionally hedges the *write*: a streamed
        transfer goes to ``target`` and every alternate speculatively,
        the first to finish staging is committed, the losers aborted —
        the returned location names the winner.
        """
        return self.server.move(name, target, origin_hint, lock_token,
                                location, deadline=deadline, hedge=hedge,
                                alternates=alternates)

    def instantiate(self, class_name: str, name: str, target: str,
                    args: tuple = (), kwargs: dict | None = None,
                    shared: bool = True, batched: bool = False):
        """Create an object of a cached class at ``target`` and register it.

        ``batched=True`` collapses the instantiate and publish round trips
        into one ``call_many`` frame.
        """
        return self.server.instantiate(
            class_name, name, target, args=args, kwargs=kwargs,
            shared=shared, batched=batched,
        )

    def lock(self, name: str, target: str, origin_hint: str | None = None,
             timeout_ms: float | None = None, deadline=None,
             hedge: bool = False):
        """§4.4 bracket: acquire the stay/move lock before binding.

        ``timeout_ms``/``deadline`` are one cumulative budget for the whole
        chase (not per hop); ``hedge=True`` races speculative LOCK_REQUESTs
        to the last-known host and the origin hint, first grant wins.
        """
        return self.server.lock(name, target, origin_hint, timeout_ms,
                                deadline=deadline, hedge=hedge)

    def unlock(self, grant) -> None:
        """Release a §4.4 lock grant at the host that issued it."""
        self.server.unlock(grant)

    def stub(self, name: str, location: str | None = None,
             methods: tuple[str, ...] = ()):
        """A live proxy for ``name`` (found via the registry if needed)."""
        return self.server.stub(name, location, methods)

    def query_load(self, node_id: str | None = None) -> float:
        """Host load of ``node_id`` (or this node), for migration policies."""
        return self.server.query_load(node_id if node_id is not None else self.node_id)

    def __repr__(self) -> str:
        return f"Namespace({self.node_id!r}, objects={len(self.store)})"
