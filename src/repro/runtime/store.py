"""The object store: servants currently living in a namespace.

MAGE's object model (§4.2) is deliberately simple: "objects exist in only
one namespace at a time.  MAGE does not partition their state across
namespaces, nor does MAGE clone them.  MAGE objects can be public or
private."  The store tracks, per object: the live instance, whether it is
*shared* (public — reachable by multiple threads, so finds must re-run and
locking applies) and whether it is *pinned* (refuses migration; the
behaviour the RPC attribute denotes).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import NoSuchObjectError
from repro.util.ids import validate_component_name


@dataclass
class ServantRecord:
    """One hosted object and its placement metadata."""

    name: str
    obj: Any
    shared: bool = True
    pinned: bool = False


#: Stripe count for the servant table.  Every dispatch — invokes, finds,
#: registry consultations — starts with a store lookup, so one table-wide
#: lock convoys concurrent request handlers; eight stripes match the
#: transport's waiter/reply-cache sharding.
_STORE_SHARDS = 8


class _StoreShard:
    """One stripe of the servant table: own lock, own dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, ServantRecord] = {}

    def put(self, record: ServantRecord) -> None:
        with self._lock:
            self._records[record.name] = record

    def pop(self, name: str) -> ServantRecord | None:
        with self._lock:
            return self._records.pop(name, None)

    def get(self, name: str) -> ServantRecord | None:
        with self._lock:
            return self._records.get(name)

    def contains(self, name: str) -> bool:
        with self._lock:
            return name in self._records

    def snapshot(self) -> list[ServantRecord]:
        with self._lock:
            return list(self._records.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class ObjectStore:
    """Thread-safe name → servant table for one namespace.

    Striped by name hash: per-name operations touch exactly one shard's
    lock, so a burst of concurrent dispatches (each of which begins with
    a ``contains``/``record`` lookup) never serializes on a single
    table-wide lock.  Whole-table reads stitch per-shard snapshots —
    consistent per stripe, which is all their diagnostic callers need.
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._shards = tuple(_StoreShard() for _ in range(_STORE_SHARDS))

    def _shard(self, name: str) -> _StoreShard:
        return self._shards[hash(name) % _STORE_SHARDS]

    def add(self, name: str, obj: Any, shared: bool = True, pinned: bool = False) -> None:
        """Host ``obj`` under ``name`` (replacing any previous tenant)."""
        validate_component_name(name)
        self._shard(name).put(ServantRecord(
            name=name, obj=obj, shared=shared, pinned=pinned
        ))

    def remove(self, name: str) -> Any:
        """Evict and return the servant (it is migrating away)."""
        record = self._shard(name).pop(name)
        if record is None:
            raise NoSuchObjectError(name, self.node_id)
        return record.obj

    def get(self, name: str) -> Any:
        """The live servant, or :class:`NoSuchObjectError`."""
        return self.record(name).obj

    def record(self, name: str) -> ServantRecord:
        """The full servant record (object + placement metadata)."""
        record = self._shard(name).get(name)
        if record is None:
            raise NoSuchObjectError(name, self.node_id)
        return record

    def lookup(self, name: str) -> ServantRecord | None:
        """The servant record, or ``None`` when not hosted here.

        One shard-lock acquisition; callers that would otherwise pair
        ``contains`` with ``record``/``is_shared`` use this instead.
        """
        return self._shard(name).get(name)

    def contains(self, name: str) -> bool:
        """Whether ``name`` is hosted in this namespace right now."""
        return self._shard(name).contains(name)

    def is_shared(self, name: str) -> bool:
        """Public objects may be moved by other threads between invocations."""
        return self.record(name).shared

    def is_pinned(self, name: str) -> bool:
        """Pinned objects refuse migration (the RPC-denoted immobiles)."""
        return self.record(name).pinned

    def names(self) -> list[str]:
        """All hosted names (sorted)."""
        return sorted(
            record.name
            for shard in self._shards
            for record in shard.snapshot()
        )

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __iter__(self) -> Iterator[ServantRecord]:
        records = [
            record
            for shard in self._shards
            for record in shard.snapshot()
        ]
        return iter(records)
