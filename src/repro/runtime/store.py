"""The object store: servants currently living in a namespace.

MAGE's object model (§4.2) is deliberately simple: "objects exist in only
one namespace at a time.  MAGE does not partition their state across
namespaces, nor does MAGE clone them.  MAGE objects can be public or
private."  The store tracks, per object: the live instance, whether it is
*shared* (public — reachable by multiple threads, so finds must re-run and
locking applies) and whether it is *pinned* (refuses migration; the
behaviour the RPC attribute denotes).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import NoSuchObjectError
from repro.util.ids import validate_component_name


@dataclass
class ServantRecord:
    """One hosted object and its placement metadata."""

    name: str
    obj: Any
    shared: bool = True
    pinned: bool = False


class ObjectStore:
    """Thread-safe name → servant table for one namespace."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._records: dict[str, ServantRecord] = {}
        self._lock = threading.RLock()

    def add(self, name: str, obj: Any, shared: bool = True, pinned: bool = False) -> None:
        """Host ``obj`` under ``name`` (replacing any previous tenant)."""
        validate_component_name(name)
        with self._lock:
            self._records[name] = ServantRecord(
                name=name, obj=obj, shared=shared, pinned=pinned
            )

    def remove(self, name: str) -> Any:
        """Evict and return the servant (it is migrating away)."""
        with self._lock:
            record = self._records.pop(name, None)
        if record is None:
            raise NoSuchObjectError(name, self.node_id)
        return record.obj

    def get(self, name: str) -> Any:
        """The live servant, or :class:`NoSuchObjectError`."""
        return self.record(name).obj

    def record(self, name: str) -> ServantRecord:
        """The full servant record (object + placement metadata)."""
        with self._lock:
            record = self._records.get(name)
        if record is None:
            raise NoSuchObjectError(name, self.node_id)
        return record

    def contains(self, name: str) -> bool:
        """Whether ``name`` is hosted in this namespace right now."""
        with self._lock:
            return name in self._records

    def is_shared(self, name: str) -> bool:
        """Public objects may be moved by other threads between invocations."""
        return self.record(name).shared

    def is_pinned(self, name: str) -> bool:
        """Pinned objects refuse migration (the RPC-denoted immobiles)."""
        return self.record(name).pinned

    def names(self) -> list[str]:
        """All hosted names (sorted)."""
        with self._lock:
            return sorted(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[ServantRecord]:
        with self._lock:
            records = list(self._records.values())
        return iter(records)
