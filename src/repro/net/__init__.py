"""Network substrate: messages, traces, delivery conditions, and transports.

Two interchangeable transports implement :class:`repro.net.transport.Transport`:

* :class:`repro.net.simnet.SimNetwork` — in-process, deterministic, with a
  virtual clock, configurable latency/loss, partitions, and full message
  tracing.  This is the default substrate for tests and benches, standing in
  for the paper's 10 Mb/s Ethernet testbed.
* :class:`repro.net.tcpnet.TcpNetwork` — real TCP sockets on loopback, used
  by integration tests to show the stack also runs over a genuine network.
"""

from repro.net.conditions import (
    BernoulliLoss,
    ConstantLatency,
    DeterministicLoss,
    LatencyModel,
    LossModel,
    NoLoss,
    PerLinkLatency,
    UniformLatency,
)
from repro.net.message import Message, MessageKind
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork
from repro.net.trace import MessageTrace, TraceEvent
from repro.net.transport import Transport

__all__ = [
    "BernoulliLoss",
    "ConstantLatency",
    "DeterministicLoss",
    "LatencyModel",
    "LossModel",
    "Message",
    "MessageKind",
    "MessageTrace",
    "NoLoss",
    "PerLinkLatency",
    "SimNetwork",
    "TcpNetwork",
    "TraceEvent",
    "Transport",
    "UniformLatency",
]
