"""Network substrate: messages, traces, delivery conditions, and transports.

Two interchangeable transports implement :class:`repro.net.transport.Transport`:

* :class:`repro.net.simnet.SimNetwork` — in-process, deterministic, with a
  virtual clock, configurable latency/loss, partitions, and full message
  tracing.  This is the default substrate for tests and benches, standing in
  for the paper's 10 Mb/s Ethernet testbed.
* :class:`repro.net.tcpnet.TcpNetwork` — real TCP sockets on loopback.  By
  default it keeps one persistent, *pipelined* connection per (src, dst)
  pair: frames carry message ids, a reader thread matches replies to
  waiting callers, and the server feeds a bounded worker pool from
  per-connection serve loops.  ``mode="per-call"`` restores early RMI's
  connection-per-call behaviour (the throughput bench's baseline) and
  ``mode="pooled"`` reuses connections without pipelining.

Shared guarantees, regardless of transport:

* **At-most-once, single-flight** — every node's dispatch runs through a
  :class:`repro.net.transport.ReplyCache`: a retransmission of an executed
  request replays its cached reply, and one arriving *while* the original
  is still executing waits for that execution instead of starting a second
  one.  Non-idempotent moves therefore never run twice for one message id.
* **Batching** — ``Transport.call_many`` ships many independent requests
  as one BATCH frame (one round trip), with each sub-request keeping its
  own message id and at-most-once slot.
* **Drop tracing** — an undeliverable one-way send is recorded in the
  :class:`repro.net.trace.MessageTrace` as a drop on both transports.
"""

from repro.net.conditions import (
    BernoulliLoss,
    ConstantLatency,
    DeterministicLoss,
    LatencyModel,
    LossModel,
    NoLoss,
    PerLinkLatency,
    UniformLatency,
)
from repro.net.message import Message, MessageKind
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork
from repro.net.trace import MessageTrace, TraceEvent
from repro.net.transport import Transport

__all__ = [
    "BernoulliLoss",
    "ConstantLatency",
    "DeterministicLoss",
    "LatencyModel",
    "LossModel",
    "Message",
    "MessageKind",
    "MessageTrace",
    "NoLoss",
    "PerLinkLatency",
    "SimNetwork",
    "TcpNetwork",
    "TraceEvent",
    "Transport",
    "UniformLatency",
]
