"""Network substrate: messages, traces, delivery conditions, and transports.

Two interchangeable transports implement :class:`repro.net.transport.Transport`:

* :class:`repro.net.simnet.SimNetwork` — in-process, deterministic, with a
  virtual clock, configurable latency/loss, partitions, and full message
  tracing.  This is the default substrate for tests and benches, standing in
  for the paper's 10 Mb/s Ethernet testbed.
* :class:`repro.net.tcpnet.TcpNetwork` — real TCP sockets on loopback.  By
  default it keeps one persistent, *pipelined* connection per (src, dst)
  pair: frames carry message ids, a reader thread matches replies to
  waiting callers, and the server feeds a bounded worker pool from
  per-connection serve loops.  ``mode="per-call"`` restores early RMI's
  connection-per-call behaviour (the throughput bench's baseline) and
  ``mode="pooled"`` reuses connections without pipelining.

Shared guarantees, regardless of transport:

* **At-most-once, single-flight** — every node's dispatch runs through a
  :class:`repro.net.transport.ReplyCache`: a retransmission of an executed
  request replays its cached reply, and one arriving *while* the original
  is still executing waits for that execution instead of starting a second
  one.  Non-idempotent moves therefore never run twice for one message id.
* **Batching** — ``Transport.call_many`` ships many independent requests
  as one BATCH frame (one round trip), with each sub-request keeping its
  own message id and at-most-once slot.
* **Drop tracing** — an undeliverable one-way send is recorded in the
  :class:`repro.net.trace.MessageTrace` as a drop on both transports.

The asynchronous invocation core
--------------------------------

``Transport.call_async`` and ``Transport.call_many_async`` are the
future-returning forms of ``call``/``call_many`` — the primitive every
multi-node runtime operation (class fan-out, load sweeps, parallel find
probes, cluster broadcast) scatters over.  They return a
:class:`repro.net.transport.CallFuture`:

``future.result(timeout_s=None)``
    Block until the exchange completes; return the reply value or re-raise
    exactly what the blocking call would have raised (marshalled handler
    exceptions, ``NodeUnreachableError``, ``CallTimeoutError``, ...).
    ``call(...)`` *is* ``call_async(...).result()``, so the forms cannot
    drift.  On the pipelined TCP transport the default timeout is the
    transport's io timeout, and an expired wait abandons the exchange
    (late replies are dropped; the future fails permanently).
``future.exception(timeout_s=None)``
    Block the same way, but *return* the failure (``None`` on success) —
    what sweeps that tolerate partial failure want.
``future.done()``
    Non-blocking completion check.
``future.cancel(reason="")`` / ``future.cancelled()``
    Abandon the exchange: the future completes with
    :class:`~repro.errors.CallCancelledError` (first-wins; a racing reply
    that already completed it makes ``cancel`` a no-op returning
    ``False``).  On the pipelined TCP transport cancellation releases the
    in-flight exchange exactly like a timed-out waiter — the late reply
    is dropped by the reader, other waiters on the shared connection are
    untouched.  On the simulated network futures are already complete
    when handed out, so ``cancel`` is a deterministic no-op there.
``future.map(fn)``
    A derived future resolving to ``fn(value)``; the mapper runs lazily on
    the collecting thread (RMI unmarshals results this way, off the
    transport's reader thread).  Cancelling the view cancels the source.
``future.add_done_callback(fn)``
    Run ``fn(future)`` on completion (immediately if already done).

:func:`repro.net.transport.gather` collects a sequence of futures in
order; ``gather(fs, return_exceptions=True)`` substitutes the exception
object for failed entries so one dead node cannot abort a sweep.
``timeout_s``/``deadline`` bound the whole gather by **one shared
deadline** (N hung futures cost one window, not N), and
``cancel_stragglers=True`` cancels whatever is still pending when the
gather returns or raises.

Deadlines
---------

:class:`repro.net.deadline.Deadline` is the end-to-end time budget of a
call chain — built with ``Deadline.after_ms(250)`` / ``after_s(...)``,
queried via ``remaining_ms()`` / ``remaining_s()`` / ``.expired``, and
accepted by every request/response form (``call``, ``call_async``,
``call_many``, ``call_many_async``) plus every runtime/cluster fan-out
built on them.  One deadline:

* rides the :class:`~repro.net.message.Message` header, re-anchoring to
  the *remaining* budget across serialization, so each hop of a
  forwarding walk or lock chase sees a shrinking allowance;
* caps the caller-side wait (below the io timeout) and the loss-retry
  loop — an expired call never touches the wire;
* is enforced at the destination: requests whose deadline expired in
  flight or in queue are dropped at dispatch with
  :class:`~repro.errors.CallTimeoutError` (admission control);
* becomes *ambient* while the handler runs
  (:func:`repro.net.deadline.current_deadline`), so nested calls the
  handler makes inherit the caller's budget with no parameter plumbing.

With no deadline set, every path — messages, traces, virtual-clock
charges — is identical to the pre-deadline behaviour, which is what
keeps the figure benches byte-stable.

Completion model: the **simulated network** completes futures eagerly on
the calling thread — deterministic messages, traces, and virtual-clock
charges, identical to the equivalent loop of blocking calls.  The
**pipelined TCP transport** implements futures natively on its waiter
mechanism: submission writes the frame, the connection's reader thread
resolves the future, so N outstanding futures overlap N round trips on
one socket.

Bulk data and link awareness
----------------------------

``Transport.stream(src, dst, requests, window=8)`` is the bulk-data
primitive: a windowed, pipelined request sequence to one destination
(each new submission first collects the oldest outstanding reply, so a
slow receiver applies backpressure).  Chunked OBJECT_TRANSFER — the
two-phase TRANSFER_PREPARE / TRANSFER_CHUNK / TRANSFER_COMMIT /
TRANSFER_ABORT migration pipeline in :mod:`repro.runtime.mover` — rides
it.

The TCP transport additionally carries a **negotiated per-frame codec**
(:mod:`repro.net.codec`): frames at or above a size threshold are
compressed (zlib by default, lz4 when importable) toward peers that
advertise the codec; everything else — all small control traffic — ships
with framing byte-identical to the pre-codec wire format, and
mixed-codec deployments degrade to raw rather than failing.
``TcpNetwork(bandwidth_mbps=...)`` emulates link throughput the way
``latency_ms`` emulates delay, so benches can price what compression
and chunking buy.

Cross-host endpoints
--------------------

:class:`repro.net.endpoint.Endpoint` is a dialable ``(host, port)``;
every transport keeps an **address book** (``connect(node_id,
endpoint)`` / ``endpoint_of`` / ``known_peers`` / ``forget_peer``) for
peers hosted by *other processes or machines*.  ``TcpNetwork(bind=...,
advertise_host=..., ports=...)`` opens the listeners beyond loopback,
and every new pooled/pipelined connection starts with a **HELLO
handshake** (:class:`repro.net.endpoint.Hello`): protocol version, node
id, and codec advertisement cross the wire, so codec negotiation no
longer needs any shared in-process registry.  No-HELLO peers, HELLO
timeouts, and protocol-version mismatches all degrade to raw framing —
never fail — and HELLO frames are invisible to message traces.  The
cluster layer's :class:`repro.cluster.discovery.Membership` service
fills the address book via seed-list JOIN and ANNOUNCE propagation and
prunes it (with the per-link EWMAs and codec advertisements) when its
heartbeat declares a peer dead.

Transports also keep **per-link latency EWMAs**
(``note_link_latency`` / ``link_latency_s`` / ``rank_by_latency``) — the
TCP transport records every reply's submission-to-resolution time, and
hedged chases (``lock``/``move``/``locate_any``) probe candidates in
expected-latency order.  The simulated network records nothing
(virtual time, not wall time), so ranking is the identity there and
deterministic traces are unchanged.  The loss-retry loop is
**deadline-aware**: retries are priced at the dearest of the link EWMA,
the observed attempt cost, and a small floor, so an almost-expired call
retries at most once instead of spending the whole fixed budget.
"""

from repro.net.conditions import (
    BernoulliLoss,
    ConstantLatency,
    DeterministicLoss,
    LatencyModel,
    LossModel,
    NoLoss,
    PerLinkLatency,
    UniformLatency,
)
from repro.net.deadline import Deadline, current_deadline
from repro.net.endpoint import PROTOCOL_VERSION, Endpoint, Hello
from repro.net.message import Message, MessageKind
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork
from repro.net.trace import MessageTrace, TraceEvent
from repro.net.transport import CallFuture, Transport, gather

__all__ = [
    "BernoulliLoss",
    "CallFuture",
    "ConstantLatency",
    "Deadline",
    "DeterministicLoss",
    "Endpoint",
    "Hello",
    "LatencyModel",
    "LossModel",
    "Message",
    "PROTOCOL_VERSION",
    "MessageKind",
    "MessageTrace",
    "NoLoss",
    "PerLinkLatency",
    "SimNetwork",
    "TcpNetwork",
    "TraceEvent",
    "Transport",
    "UniformLatency",
    "current_deadline",
    "gather",
]
