"""Wire messages.

Every interaction in the system — RMI invocations, registry lookups, object
and class transfers, lock traffic, agent hops — travels as a
:class:`Message` envelope through a transport.  This uniformity is what lets
the figure-reproduction benches read protocols straight off the message
trace: the GREV protocol of the paper's Figure 7, for instance, appears as
its literal message sequence.

Local interactions (a mobility attribute consulting the registry in its own
namespace) also travel as messages with ``src == dst``; the latency model
charges them (near-)zero time.  The paper draws these local consultations as
messages 1 and 2 of Figure 7, so modelling them uniformly keeps our traces
comparable with the paper's figures.
"""

from __future__ import annotations

import enum
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

from repro.net.deadline import Deadline
from repro.util.ids import fresh_token


class MessageKind(enum.Enum):
    """Every message type in the MAGE protocol family."""

    # --- RMI substrate -----------------------------------------------------
    INVOKE = "INVOKE"                    # method invocation on a servant
    REGISTRY_LOOKUP = "REGISTRY_LOOKUP"  # Naming.lookup against a node registry
    REGISTRY_BIND = "REGISTRY_BIND"      # Naming.bind / rebind
    REGISTRY_UNBIND = "REGISTRY_UNBIND"  # Naming.unbind
    REGISTRY_LIST = "REGISTRY_LIST"      # Naming.list_bindings

    # --- MAGE runtime ------------------------------------------------------
    FIND = "FIND"                        # forwarding-chain component lookup
    MOVE_REQUEST = "MOVE_REQUEST"        # ask the hosting node to ship an object
    OBJECT_TRANSFER = "OBJECT_TRANSFER"  # host -> target: serialized object (+class)
    TRANSFER_PREPARE = "TRANSFER_PREPARE"  # reserve a staging slot for a streamed transfer
    TRANSFER_CHUNK = "TRANSFER_CHUNK"      # one slice of a streamed transfer's state
    TRANSFER_COMMIT = "TRANSFER_COMMIT"    # atomically apply a fully staged transfer
    TRANSFER_ABORT = "TRANSFER_ABORT"      # discard a staged (or staging) transfer
    MOVE_COMPLETE = "MOVE_COMPLETE"      # host -> requester: move finished
    CLASS_REQUEST = "CLASS_REQUEST"      # pull a class definition (conditional)
    CLASS_TRANSFER = "CLASS_TRANSFER"    # push a class definition (probe or body)
    INSTANTIATE = "INSTANTIATE"          # create an object from a cached class
    LOCK_REQUEST = "LOCK_REQUEST"        # stay/move lock acquisition
    LOCK_CONFIRM = "LOCK_CONFIRM"        # acknowledge a provisional (leased) grant
    UNLOCK = "UNLOCK"                    # lock release
    AGENT_HOP = "AGENT_HOP"              # one-way mobile-agent hop
    AGENT_LAUNCH = "AGENT_LAUNCH"        # start an itinerary at the agent's host
    LOAD_QUERY = "LOAD_QUERY"            # host load for migration policies
    PING = "PING"                        # liveness probe
    JOIN = "JOIN"                        # membership: newcomer presents itself to a seed
    ANNOUNCE = "ANNOUNCE"                # membership: address-book propagation
    BATCH = "BATCH"                      # several requests riding one frame

    # --- Replies -----------------------------------------------------------
    REPLY = "REPLY"                      # response envelope for any request

    # --- Transport-internal aggregation ------------------------------------
    # (Appended last: the binary wire codec's kind table is definition-order
    # sensitive, so new members must never be inserted above.)
    AUTO_BATCH = "AUTO_BATCH"            # transport-coalesced concurrent requests


#: Kinds sent with ``Transport.cast`` — fire-and-forget, never answered.
#: Mobile-agent hops are the paper's one asynchronous interaction (§3.5).
ONEWAY_KINDS = frozenset({MessageKind.AGENT_HOP})

#: Kinds whose handlers move object state (marshalled payloads, staging
#: writes, migration commits) rather than running quick control logic.
#: The server dispatches these to a dedicated background pool so a bulk
#: transfer can never queue behind — or starve — latency-sensitive
#: request handling on the hot path.
BULK_KINDS = frozenset({
    MessageKind.OBJECT_TRANSFER,
    MessageKind.TRANSFER_PREPARE,
    MessageKind.TRANSFER_CHUNK,
    MessageKind.TRANSFER_COMMIT,
    MessageKind.TRANSFER_ABORT,
})

#: Kinds whose handlers *may* be cheap and non-blocking: the TCP server
#: dispatches these inline on the reactor loop thread (under a time-budget
#: guard), skipping the worker-pool handoff entirely — but only when the
#: registered handler itself opted in via :func:`inline_safe`.  Growing this
#: set is a contract: an opted-in handler must not perform blocking calls —
#: magelint rule MAGE009 checks the handlers these kinds dispatch to against
#: the blocking-call inference.
INLINE_KINDS = frozenset({
    MessageKind.PING,
    MessageKind.LOAD_QUERY,
})


_HandlerT = TypeVar("_HandlerT", bound=Callable[..., Any])


def inline_safe(handler: _HandlerT) -> _HandlerT:
    """Declare that ``handler`` is non-blocking for :data:`INLINE_KINDS`.

    Inline dispatch is double-gated: the *kind* must be in the allowlist
    **and** the registered handler must carry this declaration — an
    arbitrary handler (a test double that sleeps, a third-party callable)
    never runs on the reactor loop just because it serves PING.  The
    declaration is a registration contract, checked statically by
    magelint MAGE009 and dynamically by the server's per-call time
    budget (persistent overruns demote the fast path).
    """
    handler.inline_kinds = INLINE_KINDS  # type: ignore[attr-defined]
    return handler


@dataclass(frozen=True)
class Message:
    """A single message on the wire.

    ``payload`` holds a protocol dataclass from :mod:`repro.rmi.protocol`
    (or a plain value for simple kinds).  ``in_reply_to`` carries the kind of
    the request a REPLY answers so traces read like the paper's figures,
    e.g. ``REPLY(INVOKE)``.  ``reply_to_id`` carries the *message id* of the
    request a REPLY answers: transports that pipeline several concurrent
    requests over one connection (the pooled TCP transport) match replies to
    waiting callers by this id.

    ``deadline`` is the request's remaining end-to-end time budget (or
    ``None``, the unbounded default).  It rides the header so every hop of
    a multi-hop chain (forwarding walks, lock chases) sees the *shrinking*
    budget: the transport's dispatch drops requests whose deadline expired
    in flight or in queue, and makes the deadline ambient while the
    handler runs so nested calls inherit it.  Replies carry no deadline —
    the waiting caller enforces its own budget.
    """

    kind: MessageKind
    src: str
    dst: str
    payload: Any = None
    msg_id: str = field(default_factory=lambda: fresh_token("msg"))
    in_reply_to: MessageKind | None = None
    reply_to_id: str = ""
    deadline: Deadline | None = None

    def reply(self, payload: Any) -> "Message":
        """Build the response envelope for this request.

        The reply's own id is derived from the request's rather than drawn
        from the global token counter: replies are matched by
        ``reply_to_id`` and never deduplicated by id, so a derived id is
        just as unique — and skips a process-wide lock on the hot path.

        Built via ``__new__`` + one ``__dict__.update``: the frozen
        dataclass ``__init__`` pays ``object.__setattr__`` per field
        (~2 µs per reply), measurable at pipelined call rates.
        """
        message = Message.__new__(Message)
        message.__dict__.update(
            kind=MessageKind.REPLY,
            src=self.dst,
            dst=self.src,
            payload=payload,
            msg_id=f"{self.msg_id}-r",
            in_reply_to=self.kind,
            reply_to_id=self.msg_id,
            deadline=None,
        )
        return message

    @property
    def is_local(self) -> bool:
        """True when the message never leaves its namespace."""
        return self.src == self.dst

    def describe(self) -> str:
        """Human-readable one-liner used by traces and debug output."""
        kind = self.kind.value
        if self.kind is MessageKind.REPLY and self.in_reply_to is not None:
            kind = f"REPLY({self.in_reply_to.value})"
        return f"{self.src} -> {self.dst}: {kind}"


def build_message(
    kind: MessageKind,
    src: str,
    dst: str,
    payload: Any = None,
    deadline: Deadline | None = None,
) -> Message:
    """Construct a request :class:`Message` on the hot path.

    Semantically identical to ``Message(kind=..., src=..., ...)`` with a
    fresh ``msg_id``, but built via ``__new__`` + one ``__dict__.update``
    like :meth:`Message.reply`: the frozen dataclass ``__init__`` pays
    ``object.__setattr__`` per field (~2 µs per message), which the
    caller-side transmit path pays on every pipelined call.
    """
    message = Message.__new__(Message)
    message.__dict__.update(
        kind=kind,
        src=src,
        dst=dst,
        payload=payload,
        msg_id=fresh_token("msg"),
        in_reply_to=None,
        reply_to_id="",
        deadline=deadline,
    )
    return message


def to_wire(message: Message) -> bytes:
    """Flatten ``message`` to bytes for the TCP wire.

    A positional tuple with enums as their string values is roughly
    twice as cheap to serialize and a third the size of pickling the
    dataclass itself — and the envelope codec is a fixed cost on every
    hot-path call.  Payloads still pickle by their own rules.
    """
    in_reply_to = message.in_reply_to
    return pickle.dumps(
        (message.kind.value, message.src, message.dst, message.payload,
         message.msg_id,
         None if in_reply_to is None else in_reply_to.value,
         message.reply_to_id, message.deadline),
        pickle.HIGHEST_PROTOCOL,
    )


def from_wire(blob: bytes) -> object:
    """Inverse of :func:`to_wire`.

    A frame that does not hold a flattened envelope — a wire-level
    HELLO, or an envelope pickled whole by an older build — comes back
    as whatever it unpickles to; callers route on the type.
    """
    obj: object = pickle.loads(blob)
    if type(obj) is not tuple:
        return obj
    (kind, src, dst, payload, msg_id, in_reply_to, reply_to_id,
     deadline) = obj
    message = Message.__new__(Message)
    message.__dict__.update(
        kind=MessageKind(kind), src=src, dst=dst, payload=payload,
        msg_id=msg_id,
        in_reply_to=None if in_reply_to is None else MessageKind(in_reply_to),
        reply_to_id=reply_to_id, deadline=deadline,
    )
    return message


def payload_nbytes(message: "Message") -> int:
    """Approximate wire size of a message's payload.

    Blob-carrying payloads are measured by pickling (their bytes dominate);
    unpicklable payloads — which only arise for in-process-only values —
    fall back to a flat estimate.  Used by bandwidth-aware latency models
    and by the trace's bytes-on-the-wire accounting.

    The result is memoized on the (immutable) message, so the latency
    model and the trace share one measurement instead of pickling the
    payload once each.
    """
    d = message.__dict__
    cached = d.get("_nbytes_cache")
    if type(cached) is int:
        return cached
    payload = message.payload
    if payload is None:
        n = 64
    else:
        try:
            n = 64 + len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            n = 256
    d["_nbytes_cache"] = n
    return n


@dataclass(frozen=True)
class ReplyPayload:
    """Reply body: either a value or a marshalled exception.

    Exactly one of ``value``/``error`` is meaningful; ``error`` wins when
    set.  ``remote_traceback`` preserves the servant-side stack for
    :class:`repro.errors.RemoteInvocationError`.
    """

    value: Any = None
    error: BaseException | None = None
    remote_traceback: str = ""

    @property
    def is_error(self) -> bool:
        return self.error is not None
