"""Deadlines: the end-to-end time budget of a call chain.

Every layer of the stack used to carry its own ad-hoc timeout knob —
``io_timeout_s`` at the transport, ``timeout_s`` per ``gather`` wait,
``timeout_ms`` per lock request — with no *end-to-end* budget: a
forwarding-chain walk or lock chase of up to 8 hops could spend a full io
timeout at every hop.  A :class:`Deadline` replaces that plumbing with one
first-class call context:

* it is **monotonic-clock anchored** — an absolute point on
  ``time.monotonic()``, so wall-clock adjustments cannot stretch or shrink
  the budget;
* it is **carried in the message header**
  (:attr:`repro.net.message.Message.deadline`), so the remaining budget
  shrinks across hops: a server that spends 100 ms of a 500 ms budget
  forwards at most 400 ms to the next hop;
* it **re-anchors across serialization** — pickling captures the remaining
  budget and unpickling re-anchors it on the receiver's monotonic clock,
  the standard deadline-propagation treatment for clocks that do not
  transfer between processes;
* it is **ambient during dispatch** — the transport's handler execution
  wraps each request in :func:`deadline_scope`, so nested calls a handler
  makes (a FIND walking its chain, a move's OBJECT_TRANSFER) inherit the
  caller's deadline automatically via :func:`current_deadline` without
  every call site threading a parameter.

A ``Deadline`` of ``None`` everywhere means "no budget" — exactly the
pre-deadline behaviour, which keeps the figure benches' message traces
bit-identical when no deadline is set.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Any, Iterator


def _now() -> float:
    return time.monotonic()


class Deadline:
    """An absolute point on the monotonic clock by which work must finish."""

    __slots__ = ("_expires_at",)

    def __init__(self, expires_at: float) -> None:
        self._expires_at = float(expires_at)

    # -- construction ---------------------------------------------------------

    @classmethod
    def after_s(cls, budget_s: float) -> "Deadline":
        """A deadline ``budget_s`` seconds from now."""
        return cls(_now() + float(budget_s))

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls.after_s(float(budget_ms) / 1000.0)

    # -- queries --------------------------------------------------------------

    @property
    def expires_at(self) -> float:
        """The absolute monotonic-clock reading this deadline expires at."""
        return self._expires_at

    def remaining_s(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self._expires_at - _now())

    def remaining_ms(self) -> float:
        """Milliseconds of budget left (never negative)."""
        return self.remaining_s() * 1000.0

    @property
    def expired(self) -> bool:
        """Whether the budget is gone."""
        return _now() >= self._expires_at

    # -- composition ----------------------------------------------------------

    @staticmethod
    def tighter(a: "Deadline | None", b: "Deadline | None") -> "Deadline | None":
        """The earlier of two optional deadlines (``None`` = unbounded)."""
        if a is None:
            return b
        if b is None:
            return a
        return a if a._expires_at <= b._expires_at else b

    # -- serialization --------------------------------------------------------

    def __reduce__(self) -> tuple[Any, ...]:
        # Monotonic readings do not transfer between processes; ship the
        # *remaining* budget and re-anchor on the receiving clock.  Time the
        # frame spends between pickle and unpickle is therefore uncounted —
        # the standard propagation caveat; the emulated link delay and all
        # handler-side work happen after re-anchoring and are charged.
        return (Deadline.after_s, (self.remaining_s(),))

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining_ms():.1f}ms)"


#: The deadline of the request currently being dispatched on this thread
#: (or execution context), set by ``Transport.execute_handler``.
_current: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "mage_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The ambient dispatch deadline (``None`` outside a bounded dispatch)."""
    return _current.get()


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[None]:
    """Make ``deadline`` ambient for the duration of a dispatch.

    Always sets (even to ``None``): a handler serving an unbounded request
    must not inherit a stale deadline from an enclosing dispatch on the
    same thread (the simulated network delivers nested calls inline).
    """
    token = _current.set(deadline)
    try:
        yield
    finally:
        _current.reset(token)


def effective_deadline(explicit: "Deadline | None") -> "Deadline | None":
    """The deadline a new outbound call should carry.

    An explicit deadline wins; otherwise the ambient dispatch deadline
    propagates, so a server's nested calls are bounded by its caller's
    budget without per-call-site plumbing.
    """
    if explicit is not None:
        return explicit
    return _current.get()
