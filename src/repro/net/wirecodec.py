"""Schema-compiled binary wire codec for the control plane.

PR 7's reactor moved the data plane off threads; the remaining per-call
cost is serialization: every envelope and payload was a full ``pickle``
round trip over a dataclass.  This module replaces pickle on the
control-plane hot path with codecs **compiled at import time from the
payload dataclasses themselves**: for each class in
:mod:`repro.rmi.protocol` (plus :class:`~repro.net.message.ReplyPayload`)
the field list is read once via :func:`dataclasses.fields` and an
encoder/decoder pair is generated (``exec``-compiled, no per-field
dispatch loop at runtime) writing a tagged, length-prefixed binary
layout.  A whole :class:`~repro.net.message.Message` travels as a
*binary envelope*: one magic byte, a kind code, flag-gated header
fields, and the payload in the tagged value encoding.

**How negotiation works (the HELLO story, PR 5/7).**  The handshake
frame (:class:`repro.net.endpoint.Hello`) carries a free-form
``settings`` map that receivers ignore unknown keys of — the designed
growth path for wire features.  Each side advertises
``settings["wire"] = (WIRE_FORMAT,)`` where :data:`WIRE_FORMAT` is
``"bin1:<digest>"`` and the digest hashes the *entire compiled schema*
(kind table order plus every class's field layout).  A sender uses the
binary envelope only toward a peer whose HELLO carried the **same
version and the same format string**; anyone else — a legacy build, a
``handshake=False`` peer, or a build whose schema drifted — gets the
PR 7 flattened pickled-tuple envelope (or the whole-pickle legacy
format), exactly as before.  Decoding never needs negotiation at all:
the first byte of a binary envelope is :data:`MAGIC` (0xB1), which can
never open a pickle stream (protocol ≥2 pickles start with 0x80), so a
receiver routes each frame by looking at one byte.  SimNetwork never
touches this module — figure traces stay byte-identical.

**Zero-copy discipline.**  Encoders append small fields into one
``bytearray`` and *flush* large ``bytes``/``memoryview`` fields (state
blobs, chunk slices — anything ≥ :data:`OOB_THRESHOLD`) as separate
out-of-band buffers, so a streamed TRANSFER_CHUNK's data never lands in
an intermediate buffer: the frame reaches the reactor as a buffer list
and goes out through one ``socket.sendmsg`` (writev).  The pickle
fallback for unregistered values uses protocol 5 with a
``buffer_callback`` for the same reason — a ``PickleBuffer`` exported by
a payload's ``__reduce__`` ships as an out-of-band buffer straight from
the original bytes.  :class:`~repro.rmi.stub.RemoteRef` rides as a
registered class of its own, so stubs nested in payload fields (invoke
targets, registry bindings) never touch the pickle machinery.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from dataclasses import fields as dataclass_fields
from typing import Any, Callable

from repro.net.deadline import Deadline
from repro.net.endpoint import Hello
from repro.net.message import Message, MessageKind, ReplyPayload
from repro.rmi import protocol
from repro.rmi.stub import RemoteRef

#: First byte of every binary envelope.  Pickle streams of protocol ≥ 2
#: open with 0x80 (the PROTO opcode) and wire-level HELLOs are pickles,
#: so one byte routes any frame: 0xB1 → binary, anything else → pickle.
MAGIC = 0xB1

#: ``Hello.settings`` key under which wire-format capability is advertised.
WIRE_SETTING = "wire"

#: ``bytes`` fields at least this long ship as separate out-of-band
#: buffers (one iovec each) instead of being copied into the frame's
#: head buffer; below it the extra iovec costs more than the copy.
OOB_THRESHOLD = 4096

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

#: Out-of-band buffer list an encoder may flush into (``None`` = inline
#: everything into the head buffer, producing one contiguous blob).
Parts = "list[bytes | memoryview] | None"

_Encoder = Callable[[Any, bytearray, Any], None]
_Decoder = Callable[[bytes, int], "tuple[Any, int]"]


# ---------------------------------------------------------------------------
# Primitive field writers/readers (shared by generated codecs + envelope)
# ---------------------------------------------------------------------------


def _w_str(value: str, buf: bytearray) -> None:
    b = value.encode("utf-8")
    n = len(b)
    if n < 255:
        buf.append(n)
    else:
        buf.append(255)
        buf += _U32.pack(n)
    buf += b


def _r_str(b: bytes, o: int) -> tuple[str, int]:
    n = b[o]
    o += 1
    if n == 255:
        (n,) = _U32.unpack_from(b, o)
        o += 4
    end = o + n
    return b[o:end].decode("utf-8"), end


def _w_bytes(value: Any, buf: bytearray,
             parts: list[bytes | memoryview] | None) -> None:
    if type(value) is memoryview:
        if value.itemsize != 1 or not value.contiguous:
            value = bytes(value)
            n = len(value)
        else:
            n = value.nbytes
    else:
        n = len(value)
    buf += _U32.pack(n)
    if parts is not None and n >= OOB_THRESHOLD:
        # Flush: head-so-far, then the blob itself as its own buffer —
        # the blob's bytes are never copied on the send path.
        if buf:
            parts.append(bytes(buf))
            del buf[:]
        parts.append(value if type(value) is memoryview else memoryview(value))
    else:
        buf += value


def _r_bytes(b: bytes, o: int) -> tuple[bytes, int]:
    (n,) = _U32.unpack_from(b, o)
    o += 4
    end = o + n
    return b[o:end], end


def _w_strtuple(value: "tuple[str, ...]", buf: bytearray) -> None:
    n = len(value)
    if n < 255:
        buf.append(n)
    else:
        buf.append(255)
        buf += _U32.pack(n)
    for item in value:
        _w_str(item, buf)


def _r_strtuple(b: bytes, o: int) -> "tuple[tuple[str, ...], int]":
    count = b[o]
    o += 1
    if count == 255:
        (count,) = _U32.unpack_from(b, o)
        o += 4
    if not count:
        return (), o
    items = []
    for _ in range(count):
        n = b[o]
        o += 1
        if n == 255:
            (n,) = _U32.unpack_from(b, o)
            o += 4
        end = o + n
        items.append(b[o:end].decode("utf-8"))
        o = end
    return tuple(items), o


# Tagged value encoding ("any"): the payload position of the envelope and
# every field without a specialized layout.  Tags:
#   0 None | 1 True | 2 False | 3 i64 | 4 f64 | 5 str | 6 bytes
#   7 pickle (+ out-of-band buffer list) | 8 registered payload class
#   9 tuple (≤255 items, elements recursively tagged)
#   10 dict (format byte + lean-pickle or per-entry body — see _w_dict)
#   11 (str, i64) pair — the (host, port) endpoint shape that fills
#      membership payloads, written without per-element tags
#   12 embedded Message — a full envelope body (no MAGIC byte) nested as
#      a value; AUTO_BATCH frames carry a tuple of these as their payload
# Type checks are exact (``type(v) is``): subclasses keep their identity
# by falling through to the pickle tag.


def _w_any(value: Any, buf: bytearray,
           parts: list[bytes | memoryview] | None) -> None:
    if value is None:
        buf.append(0)
        return
    t = value.__class__
    if t is bool:
        buf.append(1 if value else 2)
    elif t is int:
        if _I64_MIN <= value <= _I64_MAX:
            buf.append(3)
            buf += _I64.pack(value)
        else:
            _w_pickle(value, buf, parts)
    elif t is str:
        buf.append(5)
        _w_str(value, buf)
    elif t is float:
        buf.append(4)
        buf += _F64.pack(value)
    elif t is bytes or t is memoryview:
        buf.append(6)
        _w_bytes(value, buf, parts)
    elif t is tuple:
        n = len(value)
        if n == 2:
            first, second = value
            if (type(first) is str and type(second) is int
                    and _I64_MIN <= second <= _I64_MAX):
                buf.append(11)
                _w_str(first, buf)
                buf += _I64.pack(second)
                return
        if n < 256:
            buf.append(9)
            buf.append(n)
            for item in value:
                _w_any(item, buf, parts)
        else:
            _w_pickle(value, buf, parts)
    elif t is dict:
        # Control-plane dicts (address books, registry snapshots) are
        # small maps of primitives/refs: per-entry tagging beats paying
        # the pickle machinery's fixed cost for the whole mapping.
        buf.append(10)
        _w_dict(value, buf, parts)
    elif t is Message:
        buf.append(12)
        _w_envelope(value, buf, parts)
    else:
        entry = _ENC_BY_CLASS.get(t)
        if entry is not None:
            buf.append(8)
            buf.append(entry[0])
            entry[1](value, buf, parts)
        else:
            _w_pickle(value, buf, parts)


def _w_pickle(value: Any, buf: bytearray,
              parts: list[bytes | memoryview] | None) -> None:
    out_of_band: list[pickle.PickleBuffer] = []
    blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL,
                        buffer_callback=out_of_band.append)
    if len(out_of_band) > 255:
        # One count byte caps the buffer table; beyond it (never seen in
        # practice) re-dump with every buffer in-band.
        out_of_band.clear()
        blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
    buf.append(7)
    _w_bytes(blob, buf, parts)
    buf.append(len(out_of_band))
    for pb in out_of_band:
        _w_bytes(pb.raw(), buf, parts)


def _r_pickle(b: bytes, o: int) -> tuple[Any, int]:
    blob, o = _r_bytes(b, o)
    count = b[o]
    o += 1
    value: Any
    if count:
        buffers: list[bytes] = []
        for _ in range(count):
            raw, o = _r_bytes(b, o)
            buffers.append(raw)
        value = pickle.loads(blob, buffers=buffers)
    else:
        value = pickle.loads(blob)
    return value, o


def _r_any(b: bytes, o: int) -> tuple[Any, int]:
    tag = b[o]
    o += 1
    if tag == 0:
        return None, o
    if tag == 3:
        return _I64.unpack_from(b, o)[0], o + 8
    if tag == 5:
        return _r_str(b, o)
    if tag == 8:
        return _DEC_BY_CODE[b[o]](b, o + 1)
    if tag == 6:
        return _r_bytes(b, o)
    if tag == 9:
        count = b[o]
        o += 1
        items = []
        for _ in range(count):
            item, o = _r_any(b, o)
            items.append(item)
        return tuple(items), o
    if tag == 1:
        return True, o
    if tag == 2:
        return False, o
    if tag == 4:
        return _F64.unpack_from(b, o)[0], o + 8
    if tag == 7:
        return _r_pickle(b, o)
    if tag == 10:
        return _r_dict(b, o)
    if tag == 11:
        s, o = _r_str(b, o)
        return (s, _I64.unpack_from(b, o)[0]), o + 8
    if tag == 12:
        return _r_envelope(b, o)
    raise ValueError(f"unknown wire value tag {tag}")


def _w_dict(value: "dict[Any, Any]", buf: bytearray,
            parts: list[bytes | memoryview] | None) -> None:
    """A control-plane mapping: one format byte, then one of two bodies.

    Format 0 — *lean pickle*: a u32-length plain ``pickle.dumps`` blob.
    Pickle's C loop beats any per-entry Python encoding from the very
    first entry for maps of primitives (measured: a one-entry endpoint
    map pickles in ~0.4 us against ~1 us tagged-per-entry), and skipping
    the tag-7 fallback's out-of-band buffer table matters because that
    bookkeeping costs more than the dump itself for small values.
    Control-plane maps never carry bulk blobs, so in-band loses nothing.

    Format 1 — *per-entry tagged*: u32 count, then key/value pairs,
    chosen when the map's values are registered payload classes
    (registry bindings full of :class:`RemoteRef`) — their compiled
    codecs beat re-pickling the class by reference each time.  The
    first value decides for the whole map; a mixed map stays correct
    either way because both bodies are self-contained.
    """
    if value:
        probe = next(iter(value.values()))
        if probe.__class__ in _ENC_BY_CLASS:
            buf.append(1)
            buf += _U32.pack(len(value))
            for key, item in value.items():
                if type(key) is str:
                    kb = key.encode("utf-8")
                    n = len(kb)
                    if n < 255:
                        buf.append(5)
                        buf.append(n)
                    else:
                        buf.append(5)
                        buf.append(255)
                        buf += _U32.pack(n)
                    buf += kb
                else:
                    _w_any(key, buf, parts)
                entry = _ENC_BY_CLASS.get(item.__class__)
                if entry is not None:
                    buf.append(8)
                    buf.append(entry[0])
                    entry[1](item, buf, parts)
                else:
                    _w_any(item, buf, parts)
            return
    blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
    buf.append(0)
    buf += _U32.pack(len(blob))
    buf += blob


def _r_dict(b: bytes, o: int) -> "tuple[dict[Any, Any], int]":
    """Inverse of :func:`_w_dict` (both formats)."""
    fmt = b[o]
    o += 1
    if fmt == 0:
        (n,) = _U32.unpack_from(b, o)
        o += 4
        end = o + n
        mapping: dict[Any, Any] = pickle.loads(b[o:end])
        return mapping, end
    (count,) = _U32.unpack_from(b, o)
    o += 4
    mapping = {}
    for _ in range(count):
        if b[o] == 5:
            n = b[o + 1]
            o += 2
            if n == 255:
                (n,) = _U32.unpack_from(b, o)
                o += 4
            end = o + n
            key: Any = b[o:end].decode("utf-8")
            o = end
        else:
            key, o = _r_any(b, o)
        if b[o] == 8:
            item, o = _DEC_BY_CODE[b[o + 1]](b, o + 2)
        else:
            item, o = _r_any(b, o)
        mapping[key] = item
    return mapping, o


# ---------------------------------------------------------------------------
# Schema compilation
# ---------------------------------------------------------------------------


def _field_kind(annotation: object) -> str:
    """Map a dataclass field annotation to its wire encoding.

    Annotations arrive as strings (``from __future__ import annotations``
    in the protocol module).  Exact ``str``/``bytes``/``int``/``float``/
    ``bool``/``tuple[str, ...]`` annotations get specialized compact
    layouts — the compiled code trusts the annotation, which the mypy
    strict ring enforces on every construction site; every other
    annotation — optionals, dicts, ``object`` — uses the tagged value
    encoding, which handles primitives natively and falls back to pickle
    for the rest.  The kind name is part of the schema digest, so
    changing a mapping here re-negotiates the dialect instead of
    mis-decoding against an older build.
    """
    text = annotation if isinstance(annotation, str) else str(
        getattr(annotation, "__name__", ""))
    text = text.strip().strip("\"'")
    if text in ("str", "bytes", "bool", "float", "dict"):
        return text
    if text == "int":
        return "i64"
    if text.replace(" ", "") == "tuple[str,...]":
        return "strtuple"
    return "any"


def _compile_codec(
    cls: type[Any],
) -> tuple[_Encoder, _Decoder, tuple[tuple[str, str], ...]]:
    """Generate the encoder/decoder pair for one payload dataclass.

    The generated decoder builds instances via ``__new__`` + a single
    ``__dict__.update`` — the frozen-dataclass ``__init__`` pays one
    ``object.__setattr__`` per field, which is most of pickle's decode
    cost for these records and pure overhead for wire-validated input.
    """
    spec = tuple((f.name, _field_kind(f.type)) for f in dataclass_fields(cls))
    enc_src = ["def _enc(p, buf, parts):"]
    dec_src = ["def _dec(b, o):"]
    for i, (name, kind) in enumerate(spec):
        if kind == "str":
            # Inlined rather than a _w_str/_r_str call: protocol records
            # are mostly short strings, and at ~100 ns per CPython call
            # the helper dispatch is most of a small field's cost.
            enc_src.append(f"    s{i} = p.{name}.encode('utf-8')")
            enc_src.append(f"    n{i} = len(s{i})")
            enc_src.append(f"    if n{i} < 255:")
            enc_src.append(f"        buf.append(n{i})")
            enc_src.append("    else:")
            enc_src.append(f"        buf.append(255); buf += _U32.pack(n{i})")
            enc_src.append(f"    buf += s{i}")
            dec_src.append(f"    n{i} = b[o]; o += 1")
            dec_src.append(f"    if n{i} == 255:")
            dec_src.append(f"        (n{i},) = _U32.unpack_from(b, o); o += 4")
            dec_src.append(f"    e{i} = o + n{i}")
            dec_src.append(f"    v{i} = b[o:e{i}].decode('utf-8'); o = e{i}")
        elif kind == "bytes":
            enc_src.append(f"    _w_bytes(p.{name}, buf, parts)")
            dec_src.append(f"    v{i}, o = _r_bytes(b, o)")
        elif kind == "i64":
            # Tagged fixed-width fast path: an out-of-range int (never
            # seen for counts/sizes/indices) degrades to the pickle tag,
            # which the tagged reader on the other side handles.
            enc_src.append(f"    v{i} = p.{name}")
            enc_src.append(
                f"    if {_I64_MIN} <= v{i} <= {_I64_MAX}:")
            enc_src.append(f"        buf.append(3); buf += _I64.pack(v{i})")
            enc_src.append("    else:")
            enc_src.append(f"        _w_pickle(v{i}, buf, parts)")
            dec_src.append("    if b[o] == 3:")
            dec_src.append(
                f"        v{i} = _I64.unpack_from(b, o + 1)[0]; o += 9")
            dec_src.append("    else:")
            dec_src.append(f"        v{i}, o = _r_any(b, o)")
        elif kind == "float":
            enc_src.append(f"    buf += _F64.pack(p.{name})")
            dec_src.append(
                f"    v{i} = _F64.unpack_from(b, o)[0]; o += 8")
        elif kind == "bool":
            enc_src.append(f"    buf.append(1 if p.{name} else 2)")
            dec_src.append(f"    v{i} = b[o] == 1; o += 1")
        elif kind == "strtuple":
            enc_src.append(f"    _w_strtuple(p.{name}, buf)")
            dec_src.append(f"    v{i}, o = _r_strtuple(b, o)")
        elif kind == "dict":
            enc_src.append(f"    _w_dict(p.{name}, buf, parts)")
            dec_src.append(f"    v{i}, o = _r_dict(b, o)")
        else:
            enc_src.append(f"    _w_any(p.{name}, buf, parts)")
            dec_src.append(f"    v{i}, o = _r_any(b, o)")
    if not spec:
        enc_src.append("    pass")
        dec_src.append("    return _new(_cls), o")
    else:
        dec_src.append("    obj = _new(_cls)")
        dec_src.append("    d = obj.__dict__")
        for i, (name, _k) in enumerate(spec):
            dec_src.append(f"    d['{name}'] = v{i}")
        dec_src.append("    return obj, o")
    source = "\n".join(enc_src) + "\n\n" + "\n".join(dec_src) + "\n"
    namespace: dict[str, Any] = {
        "_w_bytes": _w_bytes, "_w_any": _w_any,
        "_w_strtuple": _w_strtuple, "_w_dict": _w_dict,
        "_w_pickle": _w_pickle,
        "_r_bytes": _r_bytes, "_r_any": _r_any,
        "_r_strtuple": _r_strtuple, "_r_dict": _r_dict,
        "_I64": _I64, "_F64": _F64, "_U32": _U32,
        "_cls": cls, "_new": object.__new__,
    }
    exec(compile(source, f"<wirecodec:{cls.__name__}>", "exec"), namespace)
    return namespace["_enc"], namespace["_dec"], spec


#: Every payload dataclass with a compiled wire codec, in code order.
#: **Append-only**: the position is the on-wire class code, and the
#: schema digest (hence :data:`WIRE_FORMAT`) changes whenever this
#: tuple, a field list, or the MessageKind table changes — mismatched
#: builds then negotiate down to the pickled envelope automatically.
REGISTERED_PAYLOADS: tuple[type[Any], ...] = (
    protocol.InvokeRequest,
    protocol.LookupRequest,
    protocol.BindRequest,
    protocol.UnbindRequest,
    protocol.ListRequest,
    protocol.FindRequest,
    protocol.MoveRequest,
    protocol.ObjectTransfer,
    protocol.TransferPrepare,
    protocol.TransferChunk,
    protocol.TransferCommit,
    protocol.TransferAbort,
    protocol.MoveComplete,
    protocol.ClassRequest,
    protocol.ClassPush,
    protocol.InstantiateRequest,
    protocol.LockRequestPayload,
    protocol.UnlockPayload,
    protocol.LockConfirm,
    protocol.AgentHopPayload,
    protocol.AgentLaunch,
    protocol.LoadQuery,
    protocol.JoinRequest,
    protocol.AnnouncePayload,
    protocol.RegistrySnapshot,
    ReplyPayload,
    # Not a payload in its own right, but rides inside many of them
    # (invoke targets, registry bindings, reply values): a compiled
    # codec beats re-pickling the stub on every hop.
    RemoteRef,
)

#: Payload classes deliberately left to the pickle fallback (none today).
#: magelint's wire-codec coverage check accepts a protocol dataclass only
#: when it appears in :data:`REGISTERED_PAYLOADS` or here.
PICKLE_FALLBACK: tuple[type[Any], ...] = ()

_ENC_BY_CLASS: dict[type[Any], tuple[int, _Encoder]] = {}
_DEC_BY_CODE: list[_Decoder] = []
_SCHEMAS: list[tuple[str, tuple[tuple[str, str], ...]]] = []

for _code, _cls in enumerate(REGISTERED_PAYLOADS):
    _enc, _dec, _spec = _compile_codec(_cls)
    _ENC_BY_CLASS[_cls] = (_code, _enc)
    _DEC_BY_CODE.append(_dec)
    _SCHEMAS.append((_cls.__name__, _spec))


# ---------------------------------------------------------------------------
# The envelope
# ---------------------------------------------------------------------------

#: Kind code table: position in enum definition order (append-only, like
#: the payload registry — the digest catches any drift).
_KINDS: tuple[MessageKind, ...] = tuple(MessageKind)
_KIND_CODE: dict[MessageKind, int] = {k: i for i, k in enumerate(_KINDS)}

_FLAG_IN_REPLY_TO = 1
_FLAG_REPLY_TO_ID = 2
_FLAG_DEADLINE = 4


def _w_envelope(message: Message, buf: bytearray,
                parts: list[bytes | memoryview] | None) -> None:
    """One message's envelope body (everything after the MAGIC byte).

    Shared by :func:`encode_envelope` (top level, MAGIC-prefixed) and the
    tag-12 value encoding (an AUTO_BATCH sub-message nested as a payload
    value); both thread the same head buffer and out-of-band part list
    through, so blob flushing works at any nesting depth.
    """
    in_reply_to = message.in_reply_to
    reply_to_id = message.reply_to_id
    deadline = message.deadline
    flags = 0
    if in_reply_to is not None:
        flags |= _FLAG_IN_REPLY_TO
    if reply_to_id:
        flags |= _FLAG_REPLY_TO_ID
    if deadline is not None:
        flags |= _FLAG_DEADLINE
    buf.append(_KIND_CODE[message.kind])
    buf.append(flags)
    # Header strings (node ids, message tokens) are short; their writes
    # are inlined and unrolled because three helper calls per message
    # are measurable at pipelined call rates.
    sb = message.src.encode("utf-8")
    n = len(sb)
    if n < 255:
        buf.append(n)
    else:
        buf.append(255)
        buf += _U32.pack(n)
    buf += sb
    sb = message.dst.encode("utf-8")
    n = len(sb)
    if n < 255:
        buf.append(n)
    else:
        buf.append(255)
        buf += _U32.pack(n)
    buf += sb
    sb = message.msg_id.encode("utf-8")
    n = len(sb)
    if n < 255:
        buf.append(n)
    else:
        buf.append(255)
        buf += _U32.pack(n)
    buf += sb
    if in_reply_to is not None:
        buf.append(_KIND_CODE[in_reply_to])
    if reply_to_id:
        _w_str(reply_to_id, buf)
    if deadline is not None:
        # Ship the *remaining* budget and re-anchor on the receiving
        # clock — the exact semantics of Deadline.__reduce__.
        buf += _F64.pack(deadline.remaining_s())
    payload = message.payload
    entry = None if payload is None else _ENC_BY_CLASS.get(payload.__class__)
    if entry is not None:
        # Nearly every real message carries a registered payload:
        # dispatch straight to its compiled encoder instead of walking
        # the _w_any type chain (which tries it last).
        buf.append(8)
        buf.append(entry[0])
        entry[1](payload, buf, parts)
    else:
        _w_any(payload, buf, parts)


def encode_envelope(message: Message) -> list[bytes | memoryview]:
    """One message as an ordered buffer list (no frame header).

    Small messages come back as a single ``bytes``-equivalent chunk;
    large blob fields are flushed as their own zero-copy buffers.  The
    caller prefixes the frame header and hands the list to the reactor,
    which writes it with one ``sendmsg``.
    """
    buf = bytearray()
    parts: list[bytes | memoryview] = []
    buf.append(MAGIC)
    _w_envelope(message, buf, parts)
    if buf or not parts:
        parts.append(bytes(buf))
    return parts


def _r_envelope(b: bytes, o: int) -> tuple[Message, int]:
    """Inverse of :func:`_w_envelope`: one envelope body at offset ``o``."""
    kind = _KINDS[b[o]]
    flags = b[o + 1]
    # src, dst, msg_id — inlined and unrolled like the encoder.
    n = b[o + 2]
    o += 3
    if n == 255:
        (n,) = _U32.unpack_from(b, o)
        o += 4
    end = o + n
    src = b[o:end].decode("utf-8")
    n = b[end]
    o = end + 1
    if n == 255:
        (n,) = _U32.unpack_from(b, o)
        o += 4
    end = o + n
    dst = b[o:end].decode("utf-8")
    n = b[end]
    o = end + 1
    if n == 255:
        (n,) = _U32.unpack_from(b, o)
        o += 4
    end = o + n
    msg_id = b[o:end].decode("utf-8")
    o = end
    in_reply_to = None
    if flags & _FLAG_IN_REPLY_TO:
        in_reply_to = _KINDS[b[o]]
        o += 1
    reply_to_id = ""
    if flags & _FLAG_REPLY_TO_ID:
        reply_to_id, o = _r_str(b, o)
    deadline = None
    if flags & _FLAG_DEADLINE:
        (remaining_s,) = _F64.unpack_from(b, o)
        o += 8
        deadline = Deadline.after_s(remaining_s)
    if b[o] == 8:
        payload, o = _DEC_BY_CODE[b[o + 1]](b, o + 2)
    else:
        payload, o = _r_any(b, o)
    message = Message.__new__(Message)
    d = message.__dict__
    d["kind"] = kind
    d["src"] = src
    d["dst"] = dst
    d["payload"] = payload
    d["msg_id"] = msg_id
    d["in_reply_to"] = in_reply_to
    d["reply_to_id"] = reply_to_id
    d["deadline"] = deadline
    return message, o


def decode_envelope(b: bytes) -> Message:
    """Inverse of :func:`encode_envelope` (input: one contiguous body)."""
    return _r_envelope(b, 1)[0]


def is_binary_envelope(blob: bytes) -> bool:
    """Route one decoded frame body: binary envelope or pickle stream?"""
    return bool(blob) and blob[0] == MAGIC


# ---------------------------------------------------------------------------
# Negotiation
# ---------------------------------------------------------------------------


def _schema_digest() -> str:
    h = hashlib.sha256(b"mage-wire-bin1")
    for kind in _KINDS:
        h.update(kind.value.encode("ascii") + b"\x00")
    for name, spec in _SCHEMAS:
        h.update(name.encode("ascii") + b"\x00")
        for field_name, field_kind in spec:
            h.update(f"{field_name}:{field_kind};".encode("ascii"))
    return h.hexdigest()[:12]


#: The capability string advertised in ``Hello.settings["wire"]``.  The
#: digest covers the kind table and every compiled schema, so two builds
#: negotiate the binary envelope only when their layouts are *provably*
#: identical; any drift degrades to the pickled envelope instead of
#: mis-decoding.
WIRE_FORMAT = "bin1:" + _schema_digest()


def hello_accepts_binary(hello: Hello | None, protocol_version: int) -> bool:
    """True when ``hello`` negotiated this build's exact binary dialect."""
    if hello is None or hello.version != protocol_version:
        return False
    formats = hello.settings.get(WIRE_SETTING, ())
    return isinstance(formats, (tuple, list)) and WIRE_FORMAT in formats


# ---------------------------------------------------------------------------
# Standalone payload codec surface (tests, benches, magelint fixtures)
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> bytes:
    """One payload value as a single contiguous buffer."""
    buf = bytearray()
    _w_any(value, buf, None)
    return bytes(buf)


def decode_value(blob: bytes) -> Any:
    """Inverse of :func:`encode_value`; rejects trailing garbage."""
    value, end = _r_any(blob, 0)
    if end != len(blob):
        raise ValueError(f"trailing bytes after value: {len(blob) - end}")
    return value


def payload_code(cls: type[Any]) -> int | None:
    """The wire class code for ``cls`` (``None`` when unregistered)."""
    entry = _ENC_BY_CLASS.get(cls)
    return entry[0] if entry is not None else None
