"""Cross-host endpoints and the wire-level HELLO handshake.

Until now every layer silently assumed one process: the TCP transport
bound only loopback and resolved peers through its in-process registry of
node servers, and codec advertisement rode that same registry.  This
module is the vocabulary that lets the stack span real machines:

* :class:`Endpoint` — a ``(host, port)`` address a node can be reached
  at.  Transports keep an **address book** (``node_id -> Endpoint``,
  see :meth:`repro.net.transport.Transport.connect`) for peers that were
  never locally registered; the cluster layer's membership service
  propagates the book via JOIN/ANNOUNCE.
* :class:`Hello` — the first frame each side of a new TCP connection
  sends: protocol version, node identity, codec advertisement, and a
  free-form settings map.  Codec negotiation thereby moves **onto the
  wire**: a sender compresses toward a peer only per what that peer's
  HELLO advertised, so two processes that have never shared a registry
  still negotiate.  The handshake degrades, never fails — a peer that
  answers no HELLO within the handshake window, or one speaking a
  different protocol version, is simply written to in raw framing
  (which is byte-identical to the pre-handshake wire format).

HELLO frames are wire-level: they are not :class:`~repro.net.message.
Message` envelopes, never reach a node's dispatcher, and are invisible
to message traces — a trace-asserting bench sees the exact same message
sequence whether or not its transport handshakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError

#: Version of the frame-level wire protocol spoken after the HELLO
#: exchange.  Mismatched peers degrade to raw framing (the lowest common
#: dialect every version shares) instead of failing.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class Endpoint:
    """A network address one node listens on: ``(host, port)``.

    ``host`` is whatever the peer should dial — an IP, a hostname, or
    ``127.0.0.1`` for same-machine deployments.  Hashable and comparable,
    so address books can detect a re-joining peer's *changed* endpoint
    (the fresh entry wins; stale connections are severed).

    ``uds`` is an optional same-host facet: the *abstract* Unix-domain
    socket name (without the leading NUL byte) the node additionally
    listens on.  A peer that observes the endpoint's ``host`` matching
    its own advertised host may dial the UDS instead of TCP; everyone
    else ignores the facet.  It is advisory routing data, not identity:
    two endpoints differing only in ``uds`` address the same listener,
    so the facet is excluded from equality and hashing (address books
    must not treat a facet upgrade as a changed — severable — peer).
    """

    host: str
    port: int
    uds: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigurationError("endpoint host cannot be empty")
        if not (0 < int(self.port) < 65536):
            raise ConfigurationError(f"endpoint port out of range: {self.port}")

    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` pair ``socket.create_connection`` wants."""
        return (self.host, self.port)

    def as_tuple(self) -> "tuple[str, int] | tuple[str, int, str]":
        """The roster/JOIN wire spelling: 2-tuple, or 3-tuple with ``uds``.

        Kept a plain tuple (not the dataclass) so rosters stay readable
        by builds that predate the facet; ``Endpoint(*t)`` accepts both.
        """
        if self.uds:
            return (self.host, self.port, self.uds)
        return (self.host, self.port)

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        """Parse ``"host:port"`` (the CLI/seed-list spelling)."""
        host, sep, port = text.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"expected 'host:port', got {text!r}"
            )
        try:
            return cls(host=host, port=int(port))
        except ValueError:
            raise ConfigurationError(
                f"expected a numeric port in {text!r}"
            ) from None

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class Hello:
    """The handshake frame exchanged once per new TCP connection.

    The client sends its HELLO immediately after connecting and waits
    (briefly) for the server's; both directions carry:

    ``version``
        :data:`PROTOCOL_VERSION` of the sender.  A receiver seeing any
        other version records an empty negotiation — raw frames only —
        and keeps serving.
    ``node_id``
        Who is speaking: the client's source node, or the node the
        contacted listener serves.  Lets a server attribute a
        connection to a peer it never registered locally.
    ``codecs``
        The frame codecs the *sender* can decode — i.e. what the other
        side may compress toward it.  This is the advertisement that
        used to ride the in-process ``advertise_codecs`` registry.
    ``settings``
        Free-form sender configuration (frame bound, connection mode,
        ...).  Receivers ignore keys they do not know, which is what
        lets the handshake grow fields without a version bump.
    """

    version: int
    node_id: str
    codecs: tuple[str, ...] = ()
    settings: dict[str, Any] = field(default_factory=dict)
