"""Transport abstraction.

A transport delivers :class:`~repro.net.message.Message` envelopes between
named nodes.  Three interaction styles exist, matching the paper's
protocols:

* ``call`` — synchronous request/response, the shape of an RMI call.  All
  of RPC/REV/COD/GREV/CLE traffic is built from calls.
* ``call_many`` — a *batch* of request/response exchanges riding one
  frame (one round trip).  Multi-step runtime operations whose requests
  are independent — e.g. instantiate-then-publish — can collapse their
  round trips without changing per-request semantics: each sub-request
  keeps its own message id, its own at-most-once slot in the reply cache,
  and its own marshalled result or exception.
* ``cast`` — one-way, asynchronous.  Mobile-agent hops use casts: the
  paper's §3.5 distinguishes REV (single hop, synchronous) from MA
  (multi-hop, asynchronous).

Reliability: §4.3 requires protocols to "recover from message loss", so
``call`` retries lost transmissions up to a budget.  Because a reply can be
lost *after* the handler ran, every node's dispatch path is wrapped in a
:class:`ReplyCache` keyed by message id, giving at-most-once execution —
retries of an executed request replay the cached reply instead of
re-executing a (possibly non-idempotent) move.

The at-most-once path is *single-flight*: while a request is executing,
a concurrently arriving retransmission of the same message id blocks on
the in-flight execution and then replays its reply, rather than missing
the cache and running the handler a second time.  Control-flow exceptions
(``KeyboardInterrupt``, ``SystemExit``) are never cached as replies; they
propagate out of the dispatch path so a node can actually shut down.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Callable, Sequence

from repro.errors import MessageLostError, NodeUnreachableError
from repro.net.message import Message, MessageKind, ReplyPayload
from repro.net.trace import MessageTrace
from repro.util.clock import Clock

#: A node's message dispatcher: receives a request, returns the reply payload
#: value (or raises; the transport marshals the exception back to the caller).
MessageHandler = Callable[[Message], Any]

#: How many times ``call`` retransmits after a loss before giving up.
DEFAULT_RETRY_BUDGET = 8


class ReplyCache:
    """At-most-once execution: remembers replies by request message id.

    A bounded LRU; old entries are evicted once ``capacity`` is exceeded.
    Retries reuse the same message id, so a retransmission of an
    already-executed request returns the remembered reply.

    The cache also tracks *in-flight* executions (:meth:`begin` /
    :meth:`finish`), giving dispatchers single-flight semantics: a
    retransmission that arrives while the original request is still
    executing waits for that execution instead of starting a second one.
    In-flight slots are unbounded by ``capacity`` (they are bounded by the
    dispatcher's own concurrency) and are always released by ``finish``.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._entries: OrderedDict[str, ReplyPayload] = OrderedDict()
        self._inflight: dict[str, threading.Event] = {}
        self._lock = threading.Lock()

    def get(self, msg_id: str) -> ReplyPayload | None:
        """The cached reply for ``msg_id``, refreshing its recency."""
        with self._lock:
            payload = self._entries.get(msg_id)
            if payload is not None:
                self._entries.move_to_end(msg_id)
            return payload

    def put(self, msg_id: str, payload: ReplyPayload) -> None:
        """Remember ``payload`` as the reply for ``msg_id``."""
        with self._lock:
            self._put_locked(msg_id, payload)

    def _put_locked(self, msg_id: str, payload: ReplyPayload) -> None:
        self._entries[msg_id] = payload
        self._entries.move_to_end(msg_id)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def begin(self, msg_id: str) -> ReplyPayload | threading.Event | None:
        """Single-flight entry point for executing ``msg_id``.

        Returns the cached :class:`ReplyPayload` when the request already
        executed, a :class:`threading.Event` to wait on when another thread
        is executing it right now, or ``None`` when the caller now owns the
        execution and must eventually call :meth:`finish`.
        """
        with self._lock:
            payload = self._entries.get(msg_id)
            if payload is not None:
                self._entries.move_to_end(msg_id)
                return payload
            event = self._inflight.get(msg_id)
            if event is not None:
                return event
            self._inflight[msg_id] = threading.Event()
            return None

    def finish(self, msg_id: str, payload: ReplyPayload | None) -> None:
        """End the flight :meth:`begin` granted, waking any waiters.

        ``payload`` is cached as the reply; pass ``None`` to release the
        flight without caching (control-flow exceptions), letting a later
        retransmission execute afresh.
        """
        with self._lock:
            if payload is not None:
                self._put_locked(msg_id, payload)
            event = self._inflight.pop(msg_id, None)
        if event is not None:
            event.set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class Transport(ABC):
    """Delivers messages between registered nodes; see module docstring."""

    def __init__(self, clock: Clock, trace: MessageTrace | None = None,
                 retry_budget: int = DEFAULT_RETRY_BUDGET) -> None:
        self.clock = clock
        self.trace = trace if trace is not None else MessageTrace()
        self.retry_budget = retry_budget

    # -- node management ----------------------------------------------------

    @abstractmethod
    def register(self, node_id: str, handler: MessageHandler) -> None:
        """Attach ``handler`` as the dispatcher for ``node_id``."""

    @abstractmethod
    def unregister(self, node_id: str) -> None:
        """Detach ``node_id`` (it becomes unreachable)."""

    @abstractmethod
    def nodes(self) -> list[str]:
        """Currently registered node ids."""

    # -- delivery (one attempt; implemented per transport) -------------------

    @abstractmethod
    def _transmit(self, message: Message) -> Message:
        """Deliver one request attempt and return the reply envelope.

        Raises :class:`MessageLostError` when the loss model ate either the
        request or the reply, and :class:`NodeUnreachableError` when the
        destination is gone.
        """

    @abstractmethod
    def _transmit_oneway(self, message: Message) -> None:
        """Deliver one one-way attempt (no reply)."""

    # -- public API ----------------------------------------------------------

    def call(self, src: str, dst: str, kind: MessageKind, payload: Any = None) -> Any:
        """Request/response exchange; returns the reply payload value.

        Retries lost transmissions up to the retry budget, then surfaces
        :class:`MessageLostError`.  Exceptions raised by the remote handler
        re-raise here.
        """
        message = Message(kind=kind, src=src, dst=dst, payload=payload)
        return self._unwrap(self._transmit_with_retries(message))

    def call_many(self, src: str, dst: str,
                  requests: Sequence[tuple[MessageKind, Any]]) -> list[Any]:
        """Batched request/response: many requests, one frame, one round trip.

        Each ``(kind, payload)`` pair executes at the destination exactly as
        an individual ``call`` would — its own message id, its own
        at-most-once reply-cache slot — but the batch crosses the network as
        a single BATCH envelope, so N requests cost one round trip instead
        of N.  Results return in request order.  Sub-requests execute
        *sequentially*, and the first failure stops the batch — exactly the
        behaviour of the sequence of ``call``s the batch replaces, where a
        raised error prevents the later calls from ever being issued.  That
        first error re-raises here.
        """
        if not requests:
            return []
        subs = tuple(
            Message(kind=kind, src=src, dst=dst, payload=payload)
            for kind, payload in requests
        )
        batch = Message(kind=MessageKind.BATCH, src=src, dst=dst, payload=subs)
        payloads = self._unwrap(self._transmit_with_retries(batch))
        results = []
        for payload in payloads:
            if payload.is_error:
                raise payload.error
            results.append(payload.value)
        return results

    def _transmit_with_retries(self, message: Message) -> Message:
        """Shared retry loop for ``call`` / ``call_many``."""
        attempts = self.retry_budget + 1
        last_loss: MessageLostError | None = None
        for _ in range(attempts):
            try:
                return self._transmit(message)
            except MessageLostError as exc:
                last_loss = exc
                continue
        raise MessageLostError(
            f"{message.describe()} lost {attempts} times (retry budget exhausted)"
        ) from last_loss

    def cast(self, src: str, dst: str, kind: MessageKind, payload: Any = None) -> None:
        """One-way send; best-effort.

        Fire-and-forget semantics all the way down: a cast lost in flight
        or aimed at an unreachable node vanishes silently (the trace still
        records drops), exactly like a datagram.  Mobile-agent hops ride
        this — §3.5's asynchrony — so an agent sent into a dead node is
        lost, and the registry's verified find reports it missing.
        """
        message = Message(kind=kind, src=src, dst=dst, payload=payload)
        try:
            self._transmit_oneway(message)
        except (MessageLostError, NodeUnreachableError):
            pass

    # -- shared plumbing ------------------------------------------------------

    @staticmethod
    def _unwrap(reply: Message) -> Any:
        """Surface the reply value, re-raising marshalled handler exceptions.

        Protocol-level errors (our own :class:`~repro.errors.MageError`
        family) propagate as themselves; *servant* exceptions were already
        wrapped in :class:`~repro.errors.RemoteInvocationError` by the RMI
        invoker, traceback attached, before they reached the wire.
        """
        payload = reply.payload
        if isinstance(payload, ReplyPayload):
            if payload.is_error:
                raise payload.error
            return payload.value
        return payload

    @staticmethod
    def execute_handler(message: Message, handler: MessageHandler,
                        cache: ReplyCache) -> ReplyPayload:
        """Run ``handler`` under at-most-once semantics; shared by transports.

        Single-flight: concurrent retransmissions of one message id (a
        retry racing a still-running original) converge on one handler
        execution — the duplicates wait and replay its reply.  Handler
        exceptions are marshalled into the reply; control-flow exceptions
        (``KeyboardInterrupt``/``SystemExit``) propagate uncached so they
        can actually stop the process instead of being replayed to callers
        forever.  BATCH envelopes dispatch each sub-request through this
        same path, so sub-requests get per-id deduplication too.
        """
        while True:
            token = cache.begin(message.msg_id)
            if isinstance(token, ReplyPayload):
                return token
            if token is not None:  # another thread owns the flight
                token.wait()
                # The flight finished; loop to pick up its cached reply.
                # (A control-flow abort or eviction under capacity pressure
                # may have left no entry — then this thread claims the
                # flight and executes.)
                continue
            payload: ReplyPayload | None = None
            try:
                if message.kind is MessageKind.BATCH:
                    # Sequential, fail-fast: a failed step prevents the
                    # later steps from running, like the sequence of calls
                    # the batch replaces (an instantiate that raised must
                    # not be followed by its publish).
                    sub_payloads: list[ReplyPayload] = []
                    for sub in message.payload:
                        sub_payload = Transport.execute_handler(
                            sub, handler, cache
                        )
                        sub_payloads.append(sub_payload)
                        if sub_payload.is_error:
                            break
                    value = tuple(sub_payloads)
                else:
                    value = handler(message)
                payload = ReplyPayload(value=value)
            except Exception as exc:  # marshalled back to the caller
                payload = ReplyPayload(error=exc)
            finally:
                cache.finish(message.msg_id, payload)
            return payload
