"""Transport abstraction.

A transport delivers :class:`~repro.net.message.Message` envelopes between
named nodes.  Two interaction styles exist, matching the paper's protocols:

* ``call`` — synchronous request/response, the shape of an RMI call.  All
  of RPC/REV/COD/GREV/CLE traffic is built from calls.
* ``cast`` — one-way, asynchronous.  Mobile-agent hops use casts: the
  paper's §3.5 distinguishes REV (single hop, synchronous) from MA
  (multi-hop, asynchronous).

Reliability: §4.3 requires protocols to "recover from message loss", so
``call`` retries lost transmissions up to a budget.  Because a reply can be
lost *after* the handler ran, every node's dispatch path is wrapped in a
:class:`ReplyCache` keyed by message id, giving at-most-once execution —
retries of an executed request replay the cached reply instead of
re-executing a (possibly non-idempotent) move.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Callable

from repro.errors import MessageLostError, NodeUnreachableError
from repro.net.message import Message, MessageKind, ReplyPayload
from repro.net.trace import MessageTrace
from repro.util.clock import Clock

#: A node's message dispatcher: receives a request, returns the reply payload
#: value (or raises; the transport marshals the exception back to the caller).
MessageHandler = Callable[[Message], Any]

#: How many times ``call`` retransmits after a loss before giving up.
DEFAULT_RETRY_BUDGET = 8


class ReplyCache:
    """At-most-once execution: remembers replies by request message id.

    A bounded LRU; old entries are evicted once ``capacity`` is exceeded.
    Retries reuse the same message id, so a retransmission of an
    already-executed request returns the remembered reply.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._entries: OrderedDict[str, ReplyPayload] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, msg_id: str) -> ReplyPayload | None:
        """The cached reply for ``msg_id``, refreshing its recency."""
        with self._lock:
            payload = self._entries.get(msg_id)
            if payload is not None:
                self._entries.move_to_end(msg_id)
            return payload

    def put(self, msg_id: str, payload: ReplyPayload) -> None:
        """Remember ``payload`` as the reply for ``msg_id``."""
        with self._lock:
            self._entries[msg_id] = payload
            self._entries.move_to_end(msg_id)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class Transport(ABC):
    """Delivers messages between registered nodes; see module docstring."""

    def __init__(self, clock: Clock, trace: MessageTrace | None = None,
                 retry_budget: int = DEFAULT_RETRY_BUDGET) -> None:
        self.clock = clock
        self.trace = trace if trace is not None else MessageTrace()
        self.retry_budget = retry_budget

    # -- node management ----------------------------------------------------

    @abstractmethod
    def register(self, node_id: str, handler: MessageHandler) -> None:
        """Attach ``handler`` as the dispatcher for ``node_id``."""

    @abstractmethod
    def unregister(self, node_id: str) -> None:
        """Detach ``node_id`` (it becomes unreachable)."""

    @abstractmethod
    def nodes(self) -> list[str]:
        """Currently registered node ids."""

    # -- delivery (one attempt; implemented per transport) -------------------

    @abstractmethod
    def _transmit(self, message: Message) -> Message:
        """Deliver one request attempt and return the reply envelope.

        Raises :class:`MessageLostError` when the loss model ate either the
        request or the reply, and :class:`NodeUnreachableError` when the
        destination is gone.
        """

    @abstractmethod
    def _transmit_oneway(self, message: Message) -> None:
        """Deliver one one-way attempt (no reply)."""

    # -- public API ----------------------------------------------------------

    def call(self, src: str, dst: str, kind: MessageKind, payload: Any = None) -> Any:
        """Request/response exchange; returns the reply payload value.

        Retries lost transmissions up to the retry budget, then surfaces
        :class:`MessageLostError`.  Exceptions raised by the remote handler
        re-raise here.
        """
        message = Message(kind=kind, src=src, dst=dst, payload=payload)
        attempts = self.retry_budget + 1
        last_loss: MessageLostError | None = None
        for _ in range(attempts):
            try:
                reply = self._transmit(message)
            except MessageLostError as exc:
                last_loss = exc
                continue
            return self._unwrap(reply)
        raise MessageLostError(
            f"{message.describe()} lost {attempts} times (retry budget exhausted)"
        ) from last_loss

    def cast(self, src: str, dst: str, kind: MessageKind, payload: Any = None) -> None:
        """One-way send; best-effort.

        Fire-and-forget semantics all the way down: a cast lost in flight
        or aimed at an unreachable node vanishes silently (the trace still
        records drops), exactly like a datagram.  Mobile-agent hops ride
        this — §3.5's asynchrony — so an agent sent into a dead node is
        lost, and the registry's verified find reports it missing.
        """
        message = Message(kind=kind, src=src, dst=dst, payload=payload)
        try:
            self._transmit_oneway(message)
        except (MessageLostError, NodeUnreachableError):
            pass

    # -- shared plumbing ------------------------------------------------------

    @staticmethod
    def _unwrap(reply: Message) -> Any:
        """Surface the reply value, re-raising marshalled handler exceptions.

        Protocol-level errors (our own :class:`~repro.errors.MageError`
        family) propagate as themselves; *servant* exceptions were already
        wrapped in :class:`~repro.errors.RemoteInvocationError` by the RMI
        invoker, traceback attached, before they reached the wire.
        """
        payload = reply.payload
        if isinstance(payload, ReplyPayload):
            if payload.is_error:
                raise payload.error
            return payload.value
        return payload

    @staticmethod
    def execute_handler(message: Message, handler: MessageHandler,
                        cache: ReplyCache) -> ReplyPayload:
        """Run ``handler`` under at-most-once semantics; shared by transports."""
        cached = cache.get(message.msg_id)
        if cached is not None:
            return cached
        try:
            value = handler(message)
            payload = ReplyPayload(value=value)
        except BaseException as exc:  # marshalled back to the caller
            payload = ReplyPayload(error=exc)
        cache.put(message.msg_id, payload)
        return payload
