"""Transport abstraction.

A transport delivers :class:`~repro.net.message.Message` envelopes between
named nodes.  Three interaction styles exist, matching the paper's
protocols:

* ``call`` — synchronous request/response, the shape of an RMI call.  All
  of RPC/REV/COD/GREV/CLE traffic is built from calls.
* ``call_many`` — a *batch* of request/response exchanges riding one
  frame (one round trip).  Multi-step runtime operations whose requests
  are independent — e.g. instantiate-then-publish — can collapse their
  round trips without changing per-request semantics: each sub-request
  keeps its own message id, its own at-most-once slot in the reply cache,
  and its own marshalled result or exception.
* ``cast`` — one-way, asynchronous.  Mobile-agent hops use casts: the
  paper's §3.5 distinguishes REV (single hop, synchronous) from MA
  (multi-hop, asynchronous).

Each request/response style also exists as a *future-returning* form —
``call_async`` / ``call_many_async`` — which is the primitive every
multi-node runtime operation (class fan-out, load sweeps, parallel find
probes) scatters over.  ``call`` is literally ``call_async(...).result()``
and ``call_many`` is ``call_many_async(...).result()``, so the two forms
can never drift apart semantically.  The base implementation completes
the future *eagerly on the calling thread* — zero extra threads, fully
deterministic, which is exactly what the simulated network needs for
reproducible traces.  Transports whose wire protocol already decouples
send from receive (the pipelined TCP transport) override
:meth:`Transport._transmit_async` to return a genuinely in-flight future,
so N futures to N nodes overlap their round trips.

Reliability: §4.3 requires protocols to "recover from message loss", so
``call`` retries lost transmissions up to a budget.  Because a reply can be
lost *after* the handler ran, every node's dispatch path is wrapped in a
:class:`ReplyCache` keyed by message id, giving at-most-once execution —
retries of an executed request replay the cached reply instead of
re-executing a (possibly non-idempotent) move.

The at-most-once path is *single-flight*: while a request is executing,
a concurrently arriving retransmission of the same message id blocks on
the in-flight execution and then replays its reply, rather than missing
the cache and running the handler a second time.  Control-flow exceptions
(``KeyboardInterrupt``, ``SystemExit``) are never cached as replies; they
propagate out of the dispatch path so a node can actually shut down.

Deadlines: every request/response form accepts a
:class:`~repro.net.deadline.Deadline` — one end-to-end budget that rides
the message header, bounds the send/retry/wait path on the caller's side,
is enforced at the destination's dispatch (expired requests are dropped at
dequeue), and becomes ambient while the handler runs so nested calls
inherit the shrinking remainder.  ``CallFuture.cancel()`` is the
companion: a fan-out that already has its answer cuts its stragglers off
instead of waiting out the io timeout (see :func:`gather`'s
``cancel_stragglers``).  With no deadline set, every path is byte- and
trace-identical to the pre-deadline behaviour.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from typing import Any, Callable, Iterable, Sequence

from repro.errors import (
    CallCancelledError,
    CallTimeoutError,
    MessageLostError,
    NodeUnreachableError,
)
from repro.net.deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
    effective_deadline,
)
from repro.net.endpoint import Endpoint
from repro.net.message import (
    Message,
    MessageKind,
    ReplyPayload,
    build_message,
)
from repro.net.trace import MessageTrace
from repro.util.clock import Clock

#: A node's message dispatcher: receives a request, returns the reply payload
#: value (or raises; the transport marshals the exception back to the caller).
MessageHandler = Callable[[Message], Any]

#: How many times ``call`` retransmits after a loss before giving up.
DEFAULT_RETRY_BUDGET = 8

#: Assumed floor on one transmission attempt's cost when scaling the
#: retry loop to a request's remaining deadline budget: a call with less
#: than this much budget left is not worth another attempt.
MIN_ATTEMPT_COST_S = 0.001


class CallFuture:
    """The pending result of an asynchronous request/response exchange.

    Completion is first-wins and happens exactly once: the transport either
    resolves the future with the unwrapped reply value or fails it with the
    exception the equivalent blocking ``call`` would have raised (marshalled
    handler errors, :class:`~repro.errors.NodeUnreachableError`,
    :class:`~repro.errors.MessageLostError`, ...).

    * :meth:`result` blocks until completion, then returns the value or
      re-raises the exception — so ``call_async(...).result()`` is exactly
      ``call(...)``.
    * :meth:`exception` blocks the same way but *returns* the exception
      (``None`` on success) instead of raising it, which is what fan-out
      sweeps that tolerate partial failure want.
    * :meth:`done` never blocks.
    * :meth:`cancel` abandons the exchange: the future completes with
      :class:`~repro.errors.CallCancelledError` (first-wins — a reply that
      already resolved it makes ``cancel`` a no-op returning ``False``),
      and natively asynchronous transports release the in-flight exchange
      exactly like a timed-out waiter.  A cancelled straggler stops
      costing its caller anything; whether the request still executes at
      the destination is the destination's business.
    * :meth:`map` derives a future whose value is ``fn(value)``; the mapper
      runs lazily on the collecting thread (RMI uses this to unmarshal off
      the transport's reader thread).
    * :meth:`add_done_callback` runs ``fn(future)`` on completion (on the
      completing thread; immediately when already done).

    Futures produced by the base transport are already completed when they
    are returned (the exchange ran eagerly on the calling thread); only
    transports with a natively asynchronous wire path hand out futures that
    are still in flight.
    """

    def __init__(self, describe: str | Callable[[], str] = "call") -> None:
        # A callable defers the label's formatting to the (rare) error
        # paths — the hot path never pays for a string nobody reads.
        self._describe = describe
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._value: Any = None
        self._error: BaseException | None = None
        self._cancelled = False
        self._callbacks: list[Callable[["CallFuture"], None]] = []

    # -- completion (transport-internal; the first completion wins) ----------

    def _resolve(self, value: Any) -> None:
        self._complete(value, None)

    def _fail(self, error: BaseException) -> None:
        self._complete(None, error)

    def _complete(self, value: Any, error: BaseException | None,
                  cancelled: bool = False) -> None:
        with self._lock:
            if self._event.is_set():
                return  # a racing completion already won
            self._value = value
            self._error = error
            self._cancelled = cancelled
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _complete_from_reply(self, reply: Message, batch: bool) -> None:
        """Unwrap a reply envelope into this future's outcome.

        Mirrors what the blocking path raises/returns: a marshalled handler
        exception fails the future; a BATCH reply resolves to the list of
        sub-request values, failing on the first sub-error (the later subs
        never ran — the batch is fail-fast at the destination).
        """
        payload = reply.payload
        if isinstance(payload, ReplyPayload):
            error = payload.error
            if error is not None:
                self._fail(error)
                return
            value = payload.value
        else:
            value = payload
        if not batch:
            self._resolve(value)
            return
        results = []
        for sub_payload in value:
            sub_error = sub_payload.error
            if sub_error is not None:
                self._fail(sub_error)
                return
            results.append(sub_payload.value)
        self._resolve(results)

    # -- waiting --------------------------------------------------------------

    def done(self) -> bool:
        """Whether the exchange completed (value or exception); never blocks."""
        return self._event.is_set()

    # -- cancellation ---------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> bool:
        """Abandon the exchange; never blocks.

        Completes the future with :class:`~repro.errors.CallCancelledError`
        (first-wins: a racing reply that already completed it wins and
        ``cancel`` returns ``False``) and releases any transport resources
        the exchange holds — on the pipelined TCP transport the pending
        reply slot, exactly as a timed-out waiter, so a late reply is
        dropped by the reader and other waiters on the shared connection
        are untouched.  On the simulated network futures complete eagerly,
        so a straggler can only be "cancelled" before it is issued — the
        call is then a harmless no-op, which is what keeps deterministic
        fan-out code transport-portable.

        Returns ``True`` when the future is (now or already) cancelled.
        """
        self._abandon()
        self._complete(
            None, CallCancelledError(f"{self._label()}: {reason}"),
            cancelled=True,
        )
        return self._cancelled

    def cancelled(self) -> bool:
        """Whether :meth:`cancel` completed this future; never blocks."""
        return self._cancelled

    def _label(self) -> str:
        """The human-readable call label for error messages."""
        describe = self._describe
        return describe() if callable(describe) else describe

    def _abandon(self) -> None:
        """Release transport resources on cancel (native transports override)."""

    def _wait_bound_s(self) -> float | None:
        """Upper bound on how long this future may stay pending, or ``None``.

        Futures from the base (eager) transports are complete on arrival,
        so no bound applies; a natively asynchronous transport reports the
        remainder of its io-timeout window, which lets completion-order
        collectors (hedged chases, ``locate_any``) avoid waiting forever
        on an exchange the transport itself would have timed out.
        """
        return None

    def result(self, timeout_s: float | None = None) -> Any:
        """The reply value; blocks until completion, re-raises failures."""
        self._await(timeout_s)
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout_s: float | None = None) -> BaseException | None:
        """The failure (or ``None``); blocks until completion like ``result``."""
        self._await(timeout_s)
        return self._error

    def _await(self, timeout_s: float | None) -> None:
        if not self._event.wait(timeout_s):
            self._on_wait_timeout(timeout_s)

    def _on_wait_timeout(self, timeout_s: float | None) -> None:
        # The future may still complete later; waiting merely gave up.
        # (Natively asynchronous transports override this to abandon the
        # exchange, matching their blocking call's timeout semantics.)
        raise CallTimeoutError(
            f"{self._label()}: not completed within {timeout_s}s"
        )

    # -- composition -----------------------------------------------------------

    def add_done_callback(self, fn: Callable[["CallFuture"], None]) -> None:
        """Run ``fn(self)`` once completed (immediately if already done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def map(self, fn: Callable[[Any], Any]) -> "CallFuture":
        """A future resolving to ``fn(value)``, evaluated on the collector.

        The mapper runs at most once, lazily, on whichever thread collects
        the result first — never on the transport's reader thread.  A
        mapper that raises fails the derived future (the source future is
        unaffected).
        """
        return _MappedFuture(self, fn)

    @classmethod
    def completed(cls, value: Any, describe: str = "call") -> "CallFuture":
        """An already-resolved future (local fast paths of fan-out ops)."""
        future = cls(describe)
        future._resolve(value)
        return future


class _MappedFuture(CallFuture):
    """Lazy ``fn(value)`` view over a source future (see CallFuture.map)."""

    def __init__(self, source: CallFuture, fn: Callable[[Any], Any]) -> None:
        super().__init__(source._describe)
        self._source = source
        self._fn = fn

    def done(self) -> bool:
        return self._source.done()

    def cancel(self, reason: str = "cancelled") -> bool:
        # Cancelling the view abandons the underlying exchange; the view
        # then surfaces the source's CallCancelledError unmapped.
        return self._source.cancel(reason)

    def cancelled(self) -> bool:
        return self._source.cancelled()

    def _wait_bound_s(self) -> float | None:
        return self._source._wait_bound_s()

    def result(self, timeout_s: float | None = None) -> Any:
        value = self._source.result(timeout_s)
        with self._lock:
            if not self._event.is_set():
                try:
                    self._value = self._fn(value)
                except Exception as exc:
                    self._error = exc
                self._event.set()
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout_s: float | None = None) -> BaseException | None:
        error = self._source.exception(timeout_s)
        if error is not None:
            return error
        try:
            self.result(timeout_s)
        except Exception as exc:  # a failing mapper is this future's failure
            return exc
        return None

    def add_done_callback(self, fn: Callable[[CallFuture], None]) -> None:
        self._source.add_done_callback(lambda _source: fn(self))


def gather(futures: Sequence[CallFuture], timeout_s: float | None = None,
           return_exceptions: bool = False,
           deadline: Deadline | None = None,
           cancel_stragglers: bool = False) -> list[Any]:
    """Collect every future's result, in order.

    The scatter-gather companion: issue N ``call_async``s, then
    ``gather(futures)``.  With ``return_exceptions=True`` a failed future
    contributes its exception object instead of raising, so one dead node
    cannot abort a sweep.  Without it, the first failure (in *input* order,
    after its own wait) raises.

    ``timeout_s`` and ``deadline`` bound the **whole gather** by one shared
    deadline (``timeout_s`` anchors at entry; when both are given the
    tighter wins).  Every wait is rebased on the remaining shared budget,
    so N hung futures cost one timeout window in total — not N stacked
    windows, which is what a per-wait timeout used to cost.  A future the
    budget expires on contributes/raises :class:`CallTimeoutError`.

    ``cancel_stragglers=True`` cancels any future still pending when the
    gather returns or raises — an aborted sweep (first failure, expired
    budget) leaves no exchange silently consuming io-timeout at the
    transport.  Completed futures are untouched, so on the eagerly
    completing simulated network this mode is trace-identical to the
    default.
    """
    shared = Deadline.tighter(
        deadline,
        Deadline.after_s(timeout_s) if timeout_s is not None else None,
    )
    futures = list(futures)
    results: list[Any] = []
    try:
        for future in futures:
            try:
                wait_s = shared.remaining_s() if shared is not None else None
                if wait_s is not None:
                    # A shared budget larger than a future's own transport
                    # window must not extend that wait: the future still
                    # times out when its blocking equivalent would have.
                    bound = future._wait_bound_s()
                    if bound is not None:
                        wait_s = min(wait_s, bound)
                results.append(future.result(wait_s))
            except Exception as exc:
                if not return_exceptions:
                    raise
                results.append(exc)
    finally:
        if cancel_stragglers:
            for future in futures:
                if not future.done():
                    future.cancel("gather abandoned this straggler")
    return results


class _ReplyCacheShard:
    """One stripe of a :class:`ReplyCache`: an independent LRU + lock."""

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._entries: OrderedDict[str, ReplyPayload] = OrderedDict()
        # msg_id -> waiter event, created lazily: ``None`` marks a flight
        # nobody is waiting on yet (the common case — the Event alloc is
        # hot-path overhead only a racing retransmission needs).
        self._inflight: dict[str, threading.Event | None] = {}
        self._lock = threading.Lock()

    def get(self, msg_id: str) -> ReplyPayload | None:
        """The cached reply for ``msg_id``, refreshing its recency."""
        with self._lock:
            payload = self._entries.get(msg_id)
            if payload is not None:
                self._entries.move_to_end(msg_id)
            return payload

    def put(self, msg_id: str, payload: ReplyPayload) -> None:
        """Remember ``payload`` as the reply for ``msg_id``."""
        with self._lock:
            self._put_locked(msg_id, payload)

    def _put_locked(self, msg_id: str, payload: ReplyPayload) -> None:
        self._entries[msg_id] = payload
        self._entries.move_to_end(msg_id)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def begin(self, msg_id: str) -> ReplyPayload | threading.Event | None:
        """Single-flight entry point for executing ``msg_id``.

        Returns the cached :class:`ReplyPayload` when the request already
        executed, a :class:`threading.Event` to wait on when another thread
        is executing it right now, or ``None`` when the caller now owns the
        execution and must eventually call :meth:`finish`.
        """
        with self._lock:
            payload = self._entries.get(msg_id)
            if payload is not None:
                self._entries.move_to_end(msg_id)
                return payload
            if msg_id in self._inflight:
                event = self._inflight[msg_id]
                if event is None:
                    event = self._inflight[msg_id] = threading.Event()
                return event
            self._inflight[msg_id] = None
            return None

    def finish(self, msg_id: str, payload: ReplyPayload | None) -> None:
        """End the flight :meth:`begin` granted, waking any waiters.

        ``payload`` is cached as the reply; pass ``None`` to release the
        flight without caching (control-flow exceptions), letting a later
        retransmission execute afresh.
        """
        with self._lock:
            if payload is not None:
                self._put_locked(msg_id, payload)
            event = self._inflight.pop(msg_id, None)
        if event is not None:
            event.set()  # only a racing retransmission materialized one

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ReplyCache:
    """At-most-once execution: remembers replies by request message id.

    A bounded LRU; old entries are evicted once ``capacity`` is exceeded.
    Retries reuse the same message id, so a retransmission of an
    already-executed request returns the remembered reply.

    The cache also tracks *in-flight* executions (:meth:`begin` /
    :meth:`finish`), giving dispatchers single-flight semantics: a
    retransmission that arrives while the original request is still
    executing waits for that execution instead of starting a second one.
    In-flight slots are unbounded by ``capacity`` (they are bounded by the
    dispatcher's own concurrency) and are always released by ``finish``.

    ``shards`` stripes the cache by message-id hash so concurrent
    dispatch workers stop serializing on one mutex.  The default single
    shard preserves exact global LRU order (eviction happens per shard,
    so a sharded cache approximates LRU — ample for a retransmission
    window, which only needs *recent* ids, not a total order).  Message
    ids never repeat across shards, so single-flight semantics are
    unaffected by striping.
    """

    def __init__(self, capacity: int = 4096, shards: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if shards <= 0:
            raise ValueError("shards must be positive")
        per_shard = -(-capacity // shards)  # ceil: total capacity >= capacity
        self._shards = tuple(
            _ReplyCacheShard(per_shard) for _ in range(shards)
        )

    def _shard(self, msg_id: str) -> _ReplyCacheShard:
        return self._shards[hash(msg_id) % len(self._shards)]

    def get(self, msg_id: str) -> ReplyPayload | None:
        """The cached reply for ``msg_id``, refreshing its recency."""
        return self._shard(msg_id).get(msg_id)

    def put(self, msg_id: str, payload: ReplyPayload) -> None:
        """Remember ``payload`` as the reply for ``msg_id``."""
        self._shard(msg_id).put(msg_id, payload)

    def begin(self, msg_id: str) -> ReplyPayload | threading.Event | None:
        """Single-flight entry point; see :meth:`_ReplyCacheShard.begin`."""
        return self._shard(msg_id).begin(msg_id)

    def finish(self, msg_id: str, payload: ReplyPayload | None) -> None:
        """End the flight :meth:`begin` granted, waking any waiters."""
        self._shard(msg_id).finish(msg_id, payload)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)


class _PeerRecord:
    """Everything one transport remembers about one peer node."""

    __slots__ = ("endpoint", "ewma_s", "codecs")

    def __init__(self) -> None:
        self.endpoint: Endpoint | None = None
        self.ewma_s: float | None = None
        self.codecs: tuple[str, ...] | None = None


class _PeerShard:
    """One stripe of the per-peer state table.

    Endpoint, latency EWMA, and codec advertisement for a peer live in
    *one* record behind *one* lock, so :meth:`forget` removes all of
    them atomically — a concurrent ``note_link_latency`` or codec read
    can never resurrect half a departed peer (they either see the whole
    record or none of it).
    """

    __slots__ = ("_lock", "_peers")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._peers: dict[str, _PeerRecord] = {}

    def _record_locked(self, node_id: str) -> _PeerRecord:
        record = self._peers.get(node_id)
        if record is None:
            record = _PeerRecord()
            self._peers[node_id] = record
        return record

    def set_endpoint(self, node_id: str, endpoint: Endpoint) -> Endpoint | None:
        """Record where ``node_id`` dials; returns the previous endpoint."""
        with self._lock:
            record = self._record_locked(node_id)
            previous = record.endpoint
            record.endpoint = endpoint
        return previous

    def endpoint(self, node_id: str) -> Endpoint | None:
        with self._lock:
            record = self._peers.get(node_id)
            return record.endpoint if record is not None else None

    def note_latency(self, node_id: str, elapsed_s: float, alpha: float) -> None:
        with self._lock:
            record = self._record_locked(node_id)
            if record.ewma_s is None:
                record.ewma_s = elapsed_s
            else:
                record.ewma_s = (1 - alpha) * record.ewma_s + alpha * elapsed_s

    def latency(self, node_id: str) -> float | None:
        with self._lock:
            record = self._peers.get(node_id)
            return record.ewma_s if record is not None else None

    def set_codecs(self, node_id: str, codecs: tuple[str, ...]) -> None:
        with self._lock:
            self._record_locked(node_id).codecs = codecs

    def codecs(self, node_id: str) -> tuple[str, ...] | None:
        with self._lock:
            record = self._peers.get(node_id)
            return record.codecs if record is not None else None

    def forget(self, node_id: str) -> None:
        """Atomically drop everything remembered about ``node_id``."""
        with self._lock:
            self._peers.pop(node_id, None)

    def endpoints(self) -> dict[str, Endpoint]:
        with self._lock:
            return {
                node_id: record.endpoint
                for node_id, record in self._peers.items()
                if record.endpoint is not None
            }

    def latencies(self) -> dict[str, float]:
        with self._lock:
            return {
                node_id: record.ewma_s
                for node_id, record in self._peers.items()
                if record.ewma_s is not None
            }


#: Stripe count for per-peer transport state.  Eight keeps the worst-case
#: collision probability low for typical cluster fan-ins while costing
#: eight lock objects per transport.
_PEER_SHARDS = 8


class Transport(ABC):
    """Delivers messages between registered nodes; see module docstring."""

    #: Whether this transport records per-destination reply latencies.
    #: Off on the simulated network: its exchanges cost virtual time, not
    #: wall time, and feeding wall-clock noise into candidate ranking
    #: would perturb the deterministic traces the figure benches assert.
    track_link_latency = False

    #: Whether stubs on this transport may short-circuit invokes to
    #: colocated servants in process (the tier-1 local bypass).  Off on
    #: the simulated network: every simulated call must cross the
    #: virtual wire so figure traces stay byte-identical.
    supports_local_bypass = False

    #: EWMA smoothing factor for per-link latency estimates.
    LINK_EWMA_ALPHA = 0.2

    def __init__(self, clock: Clock, trace: MessageTrace | None = None,
                 retry_budget: int = DEFAULT_RETRY_BUDGET) -> None:
        self.clock = clock
        self.trace = trace if trace is not None else MessageTrace()
        self.retry_budget = retry_budget
        # Endpoint + latency EWMA + codec advertisement per peer, striped
        # by node-id hash: hot-path reads (every send consults codecs,
        # every reply feeds the EWMA) stop serializing on a global lock,
        # and forget_peer drops a peer's whole record in one atomic pop.
        self._peer_shards = tuple(_PeerShard() for _ in range(_PEER_SHARDS))

    # -- address book ---------------------------------------------------------

    def connect(self, node_id: str, endpoint: Endpoint | tuple[str, int]) -> None:
        """Record where ``node_id`` can be reached, without registering it.

        The cross-host primitive: a peer hosted by *another process* is
        never in this transport's local node registry, so its address
        must be learned — from a seed list, a JOIN reply, or an ANNOUNCE
        (see :class:`repro.cluster.discovery.Membership`).  Calling
        ``connect`` again with a *different* endpoint replaces the entry
        (a re-joining peer's fresh address wins over the stale one) and
        lets transports sever connections built on the old address.
        Transports that deliver in process (the simulated network) keep
        the book but never consult it — every peer is local there.
        """
        if not isinstance(endpoint, Endpoint):
            endpoint = Endpoint(*endpoint)
        previous = self._peer_shard(node_id).set_endpoint(node_id, endpoint)
        if previous is None:
            return
        if previous.address() != endpoint.address():
            # Identity is (host, port) only: the uds facet is advisory
            # routing data, and learning or shedding it must not sever
            # healthy connections built on the unchanged TCP address.
            self._peer_endpoint_changed(node_id)
        elif previous.uds and not endpoint.uds:
            # Same address, but the new entry is missing a facet the old
            # one had learned (e.g. a roster merge that predates the
            # peer's HELLO): keep the learned facet.
            self._peer_shard(node_id).set_endpoint(node_id, previous)

    def endpoint_of(self, node_id: str) -> Endpoint | None:
        """Where ``node_id`` can be dialed (``None`` when unknown).

        The base implementation answers from the address book only;
        transports with real listeners also report their local nodes'
        bound addresses.
        """
        return self._peer_shard(node_id).endpoint(node_id)

    def known_peers(self) -> dict[str, Endpoint]:
        """Copy of the address book (peers learned via :meth:`connect`)."""
        book: dict[str, Endpoint] = {}
        for shard in self._peer_shards:
            book.update(shard.endpoints())
        return book

    def _peer_shard(self, node_id: str) -> _PeerShard:
        return self._peer_shards[hash(node_id) % _PEER_SHARDS]

    def _peer_endpoint_changed(self, node_id: str) -> None:
        """Hook: ``node_id``'s endpoint was replaced (sever stale links)."""

    def forget_peer(self, node_id: str) -> None:
        """Drop every per-peer record held for ``node_id``.

        Called when a node deregisters or membership declares it dead,
        so a long-lived transport does not accumulate latency EWMAs,
        codec advertisements, and address-book entries for departed
        peers.  Idempotent; a later :meth:`connect` or fresh traffic
        rebuilds the state from scratch.  The whole record goes in one
        atomic pop, so a send racing the forget observes either the full
        peer state or none of it — never an endpoint without its codecs.
        """
        self._peer_shard(node_id).forget(node_id)

    # -- per-link latency estimation ------------------------------------------

    def note_link_latency(self, dst: str, elapsed_s: float) -> None:
        """Record one observed request->reply latency to ``dst``.

        Maintains an exponentially weighted moving average per
        destination; hedged chases and balancing policies rank candidate
        hosts by this expectation instead of by recency of contact.
        No-op unless the transport opts in via ``track_link_latency``.
        """
        if not self.track_link_latency or elapsed_s < 0:
            return
        self._peer_shard(dst).note_latency(dst, elapsed_s, self.LINK_EWMA_ALPHA)

    def link_latency_s(self, dst: str) -> float | None:
        """The expected reply latency to ``dst`` (``None`` when unknown)."""
        return self._peer_shard(dst).latency(dst)

    def rank_by_latency(self, candidates: Sequence[str]) -> list[str]:
        """``candidates`` ordered by expected reply latency, fastest first.

        The sort is *stable* and unknown links rank last-but-in-order, so
        on transports that record nothing (the simulated network) the
        input order is returned unchanged — deterministic fan-out code
        can always pass its candidate list through this.
        """
        known: dict[str, float] = {}
        for shard in self._peer_shards:
            known.update(shard.latencies())
        return sorted(candidates,
                      key=lambda node: known.get(node, float("inf")))

    # -- codec advertisements -------------------------------------------------

    def set_advertised_codecs(self, node_id: str,
                              codecs: tuple[str, ...]) -> None:
        """Record which codecs ``node_id`` accepts from its peers.

        Lives with the peer's endpoint and latency EWMA in the sharded
        per-peer record, so a :meth:`forget_peer` racing a concurrent
        send can never leave a dangling advertisement behind.
        """
        self._peer_shard(node_id).set_codecs(node_id, tuple(codecs))

    def advertised_codecs_of(self, node_id: str) -> tuple[str, ...] | None:
        """``node_id``'s advertised codecs (``None`` when never recorded).

        ``()`` is a meaningful advertisement — "accepts nothing beyond
        raw" — distinct from an absent record.
        """
        return self._peer_shard(node_id).codecs(node_id)

    # -- node management ----------------------------------------------------

    @abstractmethod
    def register(self, node_id: str, handler: MessageHandler) -> None:
        """Attach ``handler`` as the dispatcher for ``node_id``."""

    @abstractmethod
    def unregister(self, node_id: str) -> None:
        """Detach ``node_id`` (it becomes unreachable)."""

    @abstractmethod
    def nodes(self) -> list[str]:
        """Currently registered node ids."""

    def max_reply_wait_s(self) -> float | None:
        """The longest this transport lets a caller wait for one reply.

        ``None`` means unbounded (the in-process simulated network blocks
        until the handler returns).  Transports that abandon exchanges
        after an io window report it, so protocol code can avoid asking a
        *server* to keep working past the point its caller will have
        walked away — e.g. a lock request's queue wait is capped at this
        bound when the caller supplied no budget of its own.
        """
        return None

    # -- delivery (one attempt; implemented per transport) -------------------

    @abstractmethod
    def _transmit(self, message: Message) -> Message:
        """Deliver one request attempt and return the reply envelope.

        Raises :class:`MessageLostError` when the loss model ate either the
        request or the reply, and :class:`NodeUnreachableError` when the
        destination is gone.
        """

    @abstractmethod
    def _transmit_oneway(self, message: Message) -> None:
        """Deliver one one-way attempt (no reply)."""

    # -- public API ----------------------------------------------------------

    def call(self, src: str, dst: str, kind: MessageKind, payload: Any = None,
             deadline: Deadline | None = None) -> Any:
        """Request/response exchange; returns the reply payload value.

        Retries lost transmissions up to the retry budget, then surfaces
        :class:`MessageLostError`.  Exceptions raised by the remote handler
        re-raise here.  Implemented as ``call_async(...).result()`` so the
        blocking and future forms cannot diverge.

        ``deadline`` bounds the whole exchange (send, retries, and the
        reply wait) and rides the message header so the destination — and
        any nested calls its handler makes — inherits the remaining
        budget.  ``None`` inherits the ambient dispatch deadline when this
        call is made *inside* a handler, and is unbounded otherwise.
        """
        return self.call_async(src, dst, kind, payload, deadline).result()

    def call_async(self, src: str, dst: str, kind: MessageKind,
                   payload: Any = None,
                   deadline: Deadline | None = None) -> CallFuture:
        """``call`` as a :class:`CallFuture` — the scatter-gather primitive.

        The base transport completes the future eagerly on the calling
        thread (deterministic; no extra threads); natively asynchronous
        transports return a future whose round trip is genuinely in flight,
        so issuing N futures before collecting any overlaps N round trips.
        """
        message = build_message(kind, src, dst, payload,
                                effective_deadline(deadline))
        return self._transmit_async(message, batch=False)

    def call_many(self, src: str, dst: str,
                  requests: Sequence[tuple[MessageKind, Any]],
                  deadline: Deadline | None = None) -> list[Any]:
        """Batched request/response: many requests, one frame, one round trip.

        Each ``(kind, payload)`` pair executes at the destination exactly as
        an individual ``call`` would — its own message id, its own
        at-most-once reply-cache slot — but the batch crosses the network as
        a single BATCH envelope, so N requests cost one round trip instead
        of N.  Results return in request order.  Sub-requests execute
        *sequentially*, and the first failure stops the batch — exactly the
        behaviour of the sequence of ``call``s the batch replaces, where a
        raised error prevents the later calls from ever being issued.  That
        first error re-raises here.
        """
        return self.call_many_async(src, dst, requests, deadline).result()

    def call_many_async(self, src: str, dst: str,
                        requests: Sequence[tuple[MessageKind, Any]],
                        deadline: Deadline | None = None) -> CallFuture:
        """``call_many`` as a :class:`CallFuture` resolving to the result list.

        One BATCH frame, one future: combining batching (one round trip per
        destination) with scattering (futures to many destinations overlap)
        prices a multi-step fan-out at a single round-trip latency.  One
        ``deadline`` covers the whole batch; every sub-request carries it
        too, so each gets its own admission check at the destination.
        """
        if not requests:
            return CallFuture.completed([], f"{src} -> {dst}: empty BATCH")
        deadline = effective_deadline(deadline)
        subs = tuple(
            build_message(kind, src, dst, payload, deadline)
            for kind, payload in requests
        )
        batch = build_message(MessageKind.BATCH, src, dst, subs, deadline)
        return self._transmit_async(batch, batch=True)

    def stream(self, src: str, dst: str,
               requests: Iterable[tuple[MessageKind, Any]],
               window: int = 8,
               deadline: Deadline | None = None) -> list[Any]:
        """Windowed pipelined request sequence to one destination.

        The bulk-data primitive behind chunked OBJECT_TRANSFER: issues the
        ``(kind, payload)`` requests **in order**, keeping at most
        ``window`` exchanges outstanding — each new submission first
        collects the oldest outstanding reply, so a slow receiver applies
        backpressure instead of the sender buffering an unbounded frame
        queue.  Returns the reply values in request order.

        On the pipelined TCP transport the window's round trips genuinely
        overlap on the pooled socket (a stream of N chunks costs ~N/window
        round-trip latencies plus transmission); on eagerly completing
        transports (the simulated network) every exchange runs inline at
        submission, so the message sequence is the deterministic
        one-call-per-chunk loop the figure traces expect.

        One ``deadline`` bounds the whole stream.  The first failed
        exchange raises after cancelling everything still outstanding —
        the caller sees either every reply or the error, never a silently
        shortened stream.  ``requests`` may be a lazy generator; chunk
        slices are then built only as the window advances.
        """
        if window < 1:
            raise ValueError(f"stream window must be >= 1, got {window}")
        deadline = effective_deadline(deadline)
        results: list[Any] = []
        outstanding: deque[CallFuture] = deque()
        try:
            for kind, payload in requests:
                if len(outstanding) >= window:
                    results.append(outstanding.popleft().result())
                outstanding.append(
                    self.call_async(src, dst, kind, payload, deadline=deadline)
                )
            while outstanding:
                results.append(outstanding.popleft().result())
        except Exception:
            for future in outstanding:
                if not future.done():
                    future.cancel("stream aborted by an earlier failure")
            raise
        return results

    def _transmit_async(self, message: Message, batch: bool) -> CallFuture:
        """Issue one exchange as a future.

        Default: run the whole exchange (with loss retries) eagerly on the
        calling thread and return the already-completed future — the
        deterministic behaviour the simulated network's reproducible traces
        depend on.  Transports with an asynchronous wire path override this.
        """
        future = CallFuture(message.describe)
        try:
            reply = self._transmit_with_retries(message)
        except Exception as exc:
            future._fail(exc)
        else:
            future._complete_from_reply(reply, batch)
        return future

    def _transmit_with_retries(self, message: Message) -> Message:
        """Shared retry loop for ``call`` / ``call_many``.

        A deadline on the message bounds the loop twice over.  An exchange
        whose budget is gone fails fast with :class:`CallTimeoutError`
        instead of burning the rest of the retry budget on a caller that
        stopped waiting (checked before the first attempt as well, so an
        already-expired call never touches the wire).  And the retry count
        itself is **deadline-aware**: before each retransmission the loop
        asks whether the remaining budget can still afford an attempt —
        priced at the dearest of the link's latency EWMA, the mean cost of
        the attempts already made, and a small floor — so an almost-expired
        call retries at most once rather than queueing ``retry_budget``
        transmissions nobody will wait for.  Without a deadline the fixed
        budget applies unchanged.
        """
        attempts = self.retry_budget + 1
        last_loss: MessageLostError | None = None
        started = time.monotonic()
        for attempt in range(attempts):
            if message.deadline is not None and message.deadline.expired:
                raise CallTimeoutError(
                    f"{message.describe()}: deadline expired"
                ) from last_loss
            if attempt > 0 and not self._can_afford_retry(
                    message, attempt, started):
                raise CallTimeoutError(
                    f"{message.describe()}: remaining deadline budget cannot "
                    f"afford retry {attempt}"
                ) from last_loss
            attempt_started = time.monotonic()
            try:
                reply = self._transmit(message)
            except MessageLostError as exc:
                last_loss = exc
                continue
            self.note_link_latency(
                message.dst, time.monotonic() - attempt_started
            )
            return reply
        raise MessageLostError(
            f"{message.describe()} lost {attempts} times (retry budget exhausted)"
        ) from last_loss

    def _can_afford_retry(self, message: Message, attempts_done: int,
                          started_monotonic: float) -> bool:
        """Whether the remaining deadline budget covers one more attempt."""
        deadline = message.deadline
        if deadline is None:
            return True
        expected_s = (time.monotonic() - started_monotonic) / attempts_done
        ewma_s = self.link_latency_s(message.dst)
        if ewma_s is not None:
            expected_s = max(expected_s, ewma_s)
        expected_s = max(expected_s, MIN_ATTEMPT_COST_S)
        return deadline.remaining_s() >= expected_s

    def cast(self, src: str, dst: str, kind: MessageKind, payload: Any = None) -> None:
        """One-way send; best-effort.

        Fire-and-forget semantics all the way down: a cast lost in flight
        or aimed at an unreachable node vanishes silently (the trace still
        records drops), exactly like a datagram.  Mobile-agent hops ride
        this — §3.5's asynchrony — so an agent sent into a dead node is
        lost, and the registry's verified find reports it missing.
        """
        message = build_message(kind, src, dst, payload)
        try:
            self._transmit_oneway(message)
        except (MessageLostError, NodeUnreachableError):
            pass

    # -- shared plumbing ------------------------------------------------------

    @staticmethod
    def _unwrap(reply: Message) -> Any:
        """Surface the reply value, re-raising marshalled handler exceptions.

        Protocol-level errors (our own :class:`~repro.errors.MageError`
        family) propagate as themselves; *servant* exceptions were already
        wrapped in :class:`~repro.errors.RemoteInvocationError` by the RMI
        invoker, traceback attached, before they reached the wire.
        """
        payload = reply.payload
        if isinstance(payload, ReplyPayload):
            error = payload.error
            if error is not None:
                raise error
            return payload.value
        return payload

    @staticmethod
    def execute_handler(message: Message, handler: MessageHandler,
                        cache: ReplyCache) -> ReplyPayload:
        """Run ``handler`` under at-most-once semantics; shared by transports.

        Single-flight: concurrent retransmissions of one message id (a
        retry racing a still-running original) converge on one handler
        execution — the duplicates wait and replay its reply.  Handler
        exceptions are marshalled into the reply; control-flow exceptions
        (``KeyboardInterrupt``/``SystemExit``) propagate uncached so they
        can actually stop the process instead of being replayed to callers
        forever.  BATCH envelopes dispatch each sub-request through this
        same path, so sub-requests get per-id deduplication too.

        Admission control: a request whose deadline expired in flight or
        while queued behind busy workers is *dropped at dequeue* — the
        handler never runs; the reply is :class:`CallTimeoutError` (the
        same outcome the caller's own expired wait produces).  While the
        handler runs, the request's deadline is ambient
        (:func:`repro.net.deadline.deadline_scope`), so nested calls the
        handler issues inherit the caller's shrinking budget.
        """
        while True:
            token = cache.begin(message.msg_id)
            if isinstance(token, ReplyPayload):
                return token
            if token is not None:  # another thread owns the flight
                token.wait()
                # The flight finished; loop to pick up its cached reply.
                # (A control-flow abort or eviction under capacity pressure
                # may have left no entry — then this thread claims the
                # flight and executes.)
                continue
            payload: ReplyPayload | None = None
            try:
                if message.deadline is not None and message.deadline.expired:
                    # The caller's budget is gone: executing now would do
                    # work nobody is waiting for.
                    payload = ReplyPayload(error=CallTimeoutError(
                        f"{message.describe()}: deadline expired before dispatch"
                    ))
                elif message.kind is MessageKind.BATCH:
                    # Sequential, fail-fast: a failed step prevents the
                    # later steps from running, like the sequence of calls
                    # the batch replaces (an instantiate that raised must
                    # not be followed by its publish).
                    sub_payloads: list[ReplyPayload] = []
                    for sub in message.payload:
                        sub_payload = Transport.execute_handler(
                            sub, handler, cache
                        )
                        sub_payloads.append(sub_payload)
                        if sub_payload.is_error:
                            break
                    value = tuple(sub_payloads)
                    payload = ReplyPayload(value=value)
                elif message.kind is MessageKind.AUTO_BATCH:
                    # Transport-coalesced *independent* calls: unlike BATCH
                    # there is no sequencing contract between sub-calls, so
                    # a failing sub must not shadow its siblings — every
                    # sub executes and replies individually.  The reply
                    # pairs each sub's message id with its outcome so the
                    # sending transport can demultiplex replies back to
                    # the right waiting callers.
                    pairs: list[tuple[str, ReplyPayload]] = []
                    for sub in message.payload:
                        sub_payload = Transport.execute_handler(
                            sub, handler, cache
                        )
                        pairs.append((sub.msg_id, sub_payload))
                    payload = ReplyPayload(value=tuple(pairs))
                elif (message.deadline is None
                        and current_deadline() is None):
                    # Unbounded request on a thread with no ambient
                    # deadline to mask: the scope would set None over
                    # None, so skip the context manager entirely.
                    value = handler(message)
                    payload = ReplyPayload(value=value)
                else:
                    with deadline_scope(message.deadline):
                        value = handler(message)
                    payload = ReplyPayload(value=value)
            except Exception as exc:  # marshalled back to the caller
                payload = ReplyPayload(error=exc)
            finally:
                cache.finish(message.msg_id, payload)
            return payload
