"""Frame codecs: negotiated per-frame compression for the TCP transport.

Large OBJECT_TRANSFER payloads dominate the bytes a migration moves; on a
bandwidth-limited link their transmission time dwarfs the protocol's
round trips.  The TCP transport therefore supports compressing whole
frames — but only when three conditions hold:

* the frame is at least ``threshold`` bytes (small control messages are
  never touched, so their wire bytes stay identical to the pre-codec
  framing);
* the sender is configured to write the codec;
* the receiving *peer* advertises that it accepts the codec (negotiation;
  mixed-codec deployments fall back to raw rather than failing).

The codec id travels in the top three bits of the 4-byte frame length
prefix.  Raw frames use id 0, so an uncompressed frame is **byte-for-byte
identical** to the framing every earlier PR produced — a peer that
pre-dates codecs interoperates as long as nobody compresses toward it,
which is exactly what negotiation guarantees.

``zlib`` (stdlib, always available) is the default codec; ``lz4`` is
registered only when the optional ``lz4.frame`` module is importable —
the container image is not required to carry it, and the negotiation
machinery treats its absence exactly like a peer that refuses it.
"""

from __future__ import annotations

import zlib

from repro.errors import MarshalError

try:  # optional: not baked into every image; gate rather than require
    import lz4.frame as _lz4frame  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - environment-dependent
    _lz4frame = None

#: Codec ids as carried in the frame header (3 bits; 0 must stay raw).
RAW = 0
ZLIB = 1
LZ4 = 2

#: Frames below this many serialized bytes are never compressed: the CPU
#: cost outweighs the byte savings, and keeping control traffic raw keeps
#: its wire bytes identical to the pre-codec framing.
DEFAULT_COMPRESS_THRESHOLD = 16 * 1024

#: zlib level 1: on the large, structured blobs migrations ship it costs a
#: fraction of level 6 for most of the ratio — this is a latency codec,
#: not an archival one.
_ZLIB_LEVEL = 1

_NAME_TO_ID = {"raw": RAW, "zlib": ZLIB, "lz4": LZ4}
_ID_TO_NAME = {v: k for k, v in _NAME_TO_ID.items()}


def codec_id(name: str) -> int:
    """The wire id for a codec name; raises for unknown names."""
    try:
        return _NAME_TO_ID[name]
    except KeyError:
        raise MarshalError(
            f"unknown codec {name!r} (expected one of {sorted(_NAME_TO_ID)})"
        ) from None


def codec_name(ident: int) -> str:
    """The name for a wire codec id; raises for unknown ids."""
    try:
        return _ID_TO_NAME[ident]
    except KeyError:
        raise MarshalError(f"unknown codec id {ident}") from None


#: Fixed at process start: which modules imported cannot change later,
#: and this sits on the per-frame send path.
_AVAILABLE: tuple[str, ...] = ("zlib",) + (("lz4",) if _lz4frame is not None
                                           else ())


def available_codecs() -> tuple[str, ...]:
    """The compression codecs this process can *decode* (raw excluded).

    What a node advertises to its peers by default; ``zlib`` is stdlib so
    it is always present, ``lz4`` only when the optional module imports.
    """
    return _AVAILABLE


def choose_codec(nbytes: int, write_codecs: tuple[str, ...],
                 peer_codecs: tuple[str, ...], threshold: int) -> int:
    """The codec id one frame of ``nbytes`` should be written with.

    ``RAW`` unless the frame clears the size threshold and sender and
    receiver share a codec; the first shared entry of ``write_codecs``
    (sender preference order) wins.
    """
    if nbytes < threshold:
        return RAW
    for name in write_codecs:
        if name in peer_codecs and name in _AVAILABLE:
            return _NAME_TO_ID[name]
    return RAW


def encode(ident: int, blob: bytes) -> bytes:
    """Compress ``blob`` with the codec ``ident`` (``RAW`` passes through)."""
    if ident == RAW:
        return blob
    if ident == ZLIB:
        return zlib.compress(blob, _ZLIB_LEVEL)
    if ident == LZ4:
        if _lz4frame is None:
            raise MarshalError("lz4 codec requested but lz4.frame is unavailable")
        return _lz4frame.compress(blob)
    raise MarshalError(f"unknown codec id {ident}")


def decode(ident: int, blob: bytes, max_size: int) -> bytes:
    """Decompress one received frame body, bounding the inflated size.

    ``max_size`` guards against decompression bombs: a frame that inflates
    past the transport's frame bound is rejected exactly as an oversized
    raw frame would have been.
    """
    if ident == RAW:
        return blob
    if ident == ZLIB:
        decompressor = zlib.decompressobj()
        out = decompressor.decompress(blob, max_size)
        if decompressor.unconsumed_tail:
            raise MarshalError(
                f"compressed frame inflates past {max_size} bytes"
            )
        return out
    if ident == LZ4:
        if _lz4frame is None:
            raise MarshalError(
                "received an lz4 frame but lz4.frame is unavailable "
                "(peer ignored our advertised codecs)"
            )
        out = _lz4frame.decompress(blob)
        if len(out) > max_size:
            raise MarshalError(
                f"compressed frame inflates past {max_size} bytes"
            )
        return out
    raise MarshalError(f"unknown codec id {ident} in frame header")
