"""Delivery conditions: latency and loss models.

The paper's testbed was two machines on 10 Mb/s Ethernet running Sun JDK
1.2.2, where one RMI round trip costs ~20 ms amortized (Table 3).  Our
default calibration therefore charges **10 ms per one-way remote message**,
so a request/reply pair costs 20 virtual ms — lining the reproduction's
baseline up with the paper's "Java's RMI" row.

Local messages (``src == dst``) model in-namespace RMI objects (the paper's
registry lives in the caller's JVM) and cost a small processing constant.

Loss models exist because §4.3 notes that mobility-attribute protocols
"must recover from message loss": the simulated network can drop messages
and the transport layer retries.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import defaultdict

from repro.net.message import Message, payload_nbytes

#: One-way remote latency that calibrates a request/reply pair to the
#: paper's ~20 ms amortized RMI round trip.
DEFAULT_REMOTE_LATENCY_MS = 10.0

#: Cost of an in-namespace interaction (registry consultation, local lock).
DEFAULT_LOCAL_LATENCY_MS = 0.15


class LatencyModel(ABC):
    """Maps a message to the virtual milliseconds its delivery costs."""

    @abstractmethod
    def latency_ms(self, message: Message) -> float:
        """Delivery cost for one transmission of ``message``."""


class ConstantLatency(LatencyModel):
    """Fixed per-message latency, with separate local and remote costs.

    With ``bandwidth_bytes_per_ms`` set, remote messages additionally pay a
    size-proportional transmission delay — the paper's 10 Mb/s Ethernet is
    1250 bytes/ms, which makes a class-body transfer measurably dearer than
    a cache probe.
    """

    def __init__(
        self,
        remote_ms: float = DEFAULT_REMOTE_LATENCY_MS,
        local_ms: float = DEFAULT_LOCAL_LATENCY_MS,
        bandwidth_bytes_per_ms: float | None = None,
    ) -> None:
        if remote_ms < 0 or local_ms < 0:
            raise ValueError("latencies must be non-negative")
        if bandwidth_bytes_per_ms is not None and bandwidth_bytes_per_ms <= 0:
            raise ValueError("bandwidth must be positive")
        self.remote_ms = remote_ms
        self.local_ms = local_ms
        self.bandwidth_bytes_per_ms = bandwidth_bytes_per_ms

    def latency_ms(self, message: Message) -> float:
        if message.is_local:
            return self.local_ms
        latency = self.remote_ms
        if self.bandwidth_bytes_per_ms is not None:
            latency += payload_nbytes(message) / self.bandwidth_bytes_per_ms
        return latency


class PerLinkLatency(LatencyModel):
    """Latency configured per directed (src, dst) link.

    Unconfigured links fall back to a default model.  Used to model
    heterogeneous topologies, e.g. a far-away sensor field versus a
    nearby lab in the oil-exploration example.
    """

    def __init__(
        self,
        links: dict[tuple[str, str], float],
        default: LatencyModel | None = None,
    ) -> None:
        self._links = dict(links)
        self._default = default if default is not None else ConstantLatency()

    def latency_ms(self, message: Message) -> float:
        key = (message.src, message.dst)
        if key in self._links:
            return self._links[key]
        return self._default.latency_ms(message)


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from [lo, hi) ms with a seeded RNG.

    Deterministic across runs for a fixed seed, so jittered benches are
    still reproducible.
    """

    def __init__(
        self,
        lo_ms: float,
        hi_ms: float,
        seed: int = 0,
        local_ms: float = DEFAULT_LOCAL_LATENCY_MS,
    ) -> None:
        if lo_ms < 0 or hi_ms < lo_ms:
            raise ValueError(f"invalid latency range [{lo_ms}, {hi_ms})")
        self._lo = lo_ms
        self._hi = hi_ms
        self._rng = random.Random(seed)
        self._local_ms = local_ms

    def latency_ms(self, message: Message) -> float:
        if message.is_local:
            return self._local_ms
        return self._rng.uniform(self._lo, self._hi)


class LossModel(ABC):
    """Decides whether a transmission attempt is lost in flight."""

    @abstractmethod
    def should_drop(self, message: Message, attempt: int) -> bool:
        """True to drop ``message`` on this (0-based) attempt."""


class NoLoss(LossModel):
    """Perfect network."""

    def should_drop(self, message: Message, attempt: int) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Each remote transmission is independently lost with probability ``p``.

    Local messages are never lost (they never touch the wire).  Seeded for
    reproducibility.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"loss probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = random.Random(seed)

    def should_drop(self, message: Message, attempt: int) -> bool:
        if message.is_local:
            return False
        return self._rng.random() < self.p


class DeterministicLoss(LossModel):
    """Drop the first ``n`` attempts of each (kind, src, dst) flow.

    Gives tests an exact handle on retry behaviour: "the first OBJECT_TRANSFER
    on this link is lost, the retry succeeds".
    """

    def __init__(self, drops: dict[str, int]) -> None:
        """``drops`` maps a message-kind name to how many initial attempts
        of that kind (per link) should be lost."""
        self._budget: dict[tuple[str, str, str], int] = defaultdict(int)
        self._config = dict(drops)

    def should_drop(self, message: Message, attempt: int) -> bool:
        if message.is_local:
            return False
        kind = message.kind.value
        if kind not in self._config:
            return False
        key = (kind, message.src, message.dst)
        if self._budget[key] < self._config[kind]:
            self._budget[key] += 1
            return True
        return False
