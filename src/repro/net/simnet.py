"""In-process simulated network.

Stands in for the paper's testbed (two hosts on 10 Mb/s Ethernet).  Every
registered node is an in-process endpoint; message delivery is a direct
function call on the sender's thread, preceded by charging the latency
model's cost to the shared virtual clock and a loss-model check.

Properties that matter for the reproduction:

* **Determinism** — with the default ``NoLoss``/``ConstantLatency`` models
  and synchronous casts, a run produces an identical message trace every
  time, which the figure benches rely on.
* **Calibration** — the default latency (10 ms one-way) makes a
  request/reply pair cost 20 virtual ms, matching the paper's amortized
  RMI round trip, so Table 3's shape reproduces from first principles
  (message counts × latency), not from hard-coded constants.
* **Fault injection** — per-link partitions, node crashes, and pluggable
  loss models exercise the recovery paths §4.3 demands.

``Transport.call_many`` needs no code here: the base class packs the batch
into one BATCH envelope, and because this transport charges latency per
*message*, a batch of N requests costs one round trip on the virtual
clock — exactly the saving the pooled TCP transport realizes in real time.

``Transport.call_async`` likewise needs no code: the base class completes
the future *eagerly on the calling thread*, so a scatter-gather over this
transport executes its exchanges sequentially in submission order — same
messages, same trace, same virtual-clock charges as the equivalent loop of
blocking calls.  Determinism is the point: the figure benches that assert
literal message sequences keep holding for code written against the async
API, while the real TCP transport gives that same code genuinely
overlapped round trips.

Deadlines ride through unchanged: a :class:`~repro.net.deadline.Deadline`
on a call is carried in the message header, checked at dispatch by the
shared ``execute_handler`` admission path, and made ambient for nested
calls — all base-class machinery.  Because futures complete eagerly here,
an unexpired deadline leaves every message, trace, and virtual-clock
charge identical to the no-deadline run; ``CallFuture.cancel()`` on an
already-completed future is a no-op, so straggler-cancelling fan-out code
is deterministic on this transport and genuinely concurrent on TCP.

``Transport.stream`` likewise needs no code here: eager futures make a
windowed chunk stream execute as the sequential one-call-per-chunk loop,
so a chunked OBJECT_TRANSFER's trace is the literal PREPARE, CHUNK × N,
COMMIT sequence and each frame charges the latency model per message —
a bandwidth-aware model prices the chunks by their payload bytes.  Frame
codecs are a wire-bytes concern and do not exist here (payloads cross by
reference); this transport records no per-link latency EWMAs either
(``track_link_latency`` stays off), because its exchanges cost virtual
time and wall-clock noise would perturb deterministic candidate
rankings.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import MessageLostError, NodeUnreachableError, TransportError
from repro.net.conditions import ConstantLatency, LatencyModel, LossModel, NoLoss
from repro.net.message import Message
from repro.net.trace import MessageTrace
from repro.net.transport import MessageHandler, ReplyCache, Transport
from repro.util.clock import Clock, SimClock


class _Endpoint:
    """A registered node: its dispatcher plus its at-most-once reply cache."""

    def __init__(self, handler: MessageHandler) -> None:
        self.handler = handler
        self.reply_cache = ReplyCache()


class SimNetwork(Transport):
    """Deterministic in-process transport with latency, loss and partitions."""

    def __init__(
        self,
        clock: Clock | None = None,
        latency: LatencyModel | None = None,
        loss: LossModel | None = None,
        trace: MessageTrace | None = None,
        synchronous_casts: bool = False,
    ) -> None:
        super().__init__(clock=clock if clock is not None else SimClock(), trace=trace)
        self.latency = latency if latency is not None else ConstantLatency()
        self.loss = loss if loss is not None else NoLoss()
        self.synchronous_casts = synchronous_casts
        self._endpoints: dict[str, _Endpoint] = {}
        self._crashed: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        self._state_lock = threading.RLock()
        self._cast_pool: ThreadPoolExecutor | None = None
        self._attempt_counts: dict[str, int] = {}
        self._outstanding_casts: set = set()

    # -- node management ----------------------------------------------------

    def register(self, node_id: str, handler: MessageHandler) -> None:
        with self._state_lock:
            self._endpoints[node_id] = _Endpoint(handler)
            self._crashed.discard(node_id)

    def unregister(self, node_id: str) -> None:
        with self._state_lock:
            self._endpoints.pop(node_id, None)
        # Drop per-peer transport state (address-book entry, link EWMA)
        # so departed nodes leave nothing behind, matching TCP.
        self.forget_peer(node_id)

    def nodes(self) -> list[str]:
        with self._state_lock:
            return sorted(self._endpoints)

    # -- fault injection ------------------------------------------------------

    def crash(self, node_id: str) -> None:
        """Make ``node_id`` unreachable until :meth:`recover`."""
        with self._state_lock:
            self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        """Undo :meth:`crash`."""
        with self._state_lock:
            self._crashed.discard(node_id)

    def partition(self, a: str, b: str) -> None:
        """Sever the (bidirectional) link between ``a`` and ``b``."""
        with self._state_lock:
            self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Undo :meth:`partition` for one link."""
        with self._state_lock:
            self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        """Remove every partition."""
        with self._state_lock:
            self._partitions.clear()

    # -- delivery -------------------------------------------------------------

    def _endpoint_for(self, message: Message) -> _Endpoint:
        with self._state_lock:
            if message.dst in self._crashed:
                raise NodeUnreachableError(message.dst, "crashed")
            if frozenset((message.src, message.dst)) in self._partitions:
                raise NodeUnreachableError(message.dst, "partitioned from " + message.src)
            endpoint = self._endpoints.get(message.dst)
        if endpoint is None:
            raise NodeUnreachableError(message.dst, "not registered")
        return endpoint

    def _send_one(self, message: Message) -> None:
        """Charge latency and apply the loss model to one transmission."""
        with self._state_lock:
            attempt = self._attempt_counts.get(message.msg_id, 0)
            self._attempt_counts[message.msg_id] = attempt + 1
        if self.loss.should_drop(message, attempt):
            self.trace.record(message, self.clock.now_ms(), dropped=True)
            raise MessageLostError(f"lost: {message.describe()} (attempt {attempt})")
        self.trace.record(message, self.clock.now_ms())
        self.clock.advance(self.latency.latency_ms(message))

    def _forget_attempts(self, *msg_ids: str) -> None:
        with self._state_lock:
            for msg_id in msg_ids:
                self._attempt_counts.pop(msg_id, None)

    def _transmit(self, message: Message) -> Message:
        endpoint = self._endpoint_for(message)
        self._send_one(message)
        payload = self.execute_handler(message, endpoint.handler, endpoint.reply_cache)
        reply = message.reply(payload)
        # The destination may have crashed or been partitioned while the
        # handler ran; the reply is then lost in flight.
        try:
            self._endpoint_for(reply)
            self._send_one(reply)
        finally:
            self._forget_attempts(reply.msg_id)
        self._forget_attempts(message.msg_id)
        return reply

    def _transmit_oneway(self, message: Message) -> None:
        try:
            endpoint = self._endpoint_for(message)
        except NodeUnreachableError:
            # Match the TCP transport: an undeliverable one-way send is
            # recorded as a drop before it vanishes (``cast``'s contract
            # that "the trace still records drops").
            self.trace.record(message, self.clock.now_ms(), dropped=True)
            raise
        self._send_one(message)
        if self.synchronous_casts:
            self._run_cast(endpoint, message)
            return
        if self._cast_pool is None:
            with self._state_lock:
                if self._cast_pool is None:
                    self._cast_pool = ThreadPoolExecutor(
                        max_workers=8, thread_name_prefix="simnet-cast"
                    )
        future = self._cast_pool.submit(self._run_cast, endpoint, message)
        with self._state_lock:
            self._outstanding_casts.add(future)
        future.add_done_callback(self._cast_done)

    def _cast_done(self, future) -> None:
        with self._state_lock:
            self._outstanding_casts.discard(future)

    @staticmethod
    def _run_cast(endpoint: _Endpoint, message: Message) -> None:
        try:
            endpoint.handler(message)
        except Exception:
            # One-way messages have no reply channel; a failed cast is the
            # receiver's problem (mirrors a UDP datagram into a dead agent).
            pass

    def drain_casts(self, timeout_s: float = 30.0) -> None:
        """Block until all in-flight casts (and casts they spawn) finish.

        Gives tests and benches a determinism point after asynchronous
        agent tours: a hop handler enqueues its next hop before returning,
        so looping until the outstanding set empties observes whole tours.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            with self._state_lock:
                pending = list(self._outstanding_casts)
            if not pending:
                return
            if time.monotonic() > deadline:
                raise TransportError(
                    f"{len(pending)} casts still in flight after {timeout_s}s"
                )
            for future in pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    future.result(timeout=remaining)
                except Exception:
                    pass  # cast failures are the receiver's problem

    def shutdown(self) -> None:
        """Stop background cast workers (idempotent)."""
        with self._state_lock:
            pool, self._cast_pool = self._cast_pool, None
        if pool is not None:
            pool.shutdown(wait=True)
