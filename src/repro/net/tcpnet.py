"""Real TCP transport on loopback.

The simulated network answers "does the model behave as the paper says";
this transport answers "does the stack actually run over sockets".  Each
registered node owns a listening socket on ``127.0.0.1`` (ephemeral port);
messages are length-prefixed pickled envelopes; each ``call`` opens a fresh
connection, mirroring the connection-per-call behaviour of early RMI.

TCP provides reliable, ordered delivery, so no loss model applies here —
loss/retry behaviour is exercised on the simulated network.  The clock is
real time by default.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading

from repro.errors import MarshalError, NodeUnreachableError
from repro.net.message import ONEWAY_KINDS, Message
from repro.net.trace import MessageTrace
from repro.net.transport import MessageHandler, ReplyCache, Transport
from repro.util.clock import Clock, WallClock

_LENGTH_PREFIX = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024  # 64 MiB: a generous bound on one message


def _send_frame(sock: socket.socket, message: Message) -> None:
    try:
        blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise MarshalError(f"cannot pickle {message.describe()}: {exc}") from exc
    if len(blob) > _MAX_FRAME:
        raise MarshalError(f"message too large: {len(blob)} bytes")
    sock.sendall(_LENGTH_PREFIX.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Message:
    header = _recv_exact(sock, _LENGTH_PREFIX.size)
    (length,) = _LENGTH_PREFIX.unpack(header)
    if length > _MAX_FRAME:
        raise MarshalError(f"incoming frame too large: {length} bytes")
    blob = _recv_exact(sock, length)
    message = pickle.loads(blob)
    if not isinstance(message, Message):
        raise MarshalError(f"expected a Message frame, got {type(message).__name__}")
    return message


class _NodeServer:
    """Accept loop for one node: one thread per connection."""

    def __init__(self, node_id: str, handler: MessageHandler, trace: MessageTrace,
                 clock: Clock) -> None:
        self.node_id = node_id
        self.handler = handler
        self.reply_cache = ReplyCache()
        self._trace = trace
        self._clock = clock
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(64)
        self.port = self._sock.getsockname()[1]
        self._closing = False
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"tcpnet-{node_id}", daemon=True
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listening socket closed
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True,
                name=f"tcpnet-{self.node_id}-conn",
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        with conn:
            try:
                message = _recv_frame(conn)
            except (ConnectionError, MarshalError, EOFError):
                return
            self._trace.record(message, self._clock.now_ms())
            payload = Transport.execute_handler(message, self.handler, self.reply_cache)
            if message.kind in ONEWAY_KINDS:
                return  # one-way traffic carries no reply frame
            reply = message.reply(payload)
            self._trace.record(reply, self._clock.now_ms())
            try:
                _send_frame(conn, reply)
            except (ConnectionError, OSError):
                pass  # caller gave up; the reply cache covers their retry

    def close(self) -> None:
        self._closing = True
        try:
            self._sock.close()
        except OSError:
            pass


class TcpNetwork(Transport):
    """Transport over real loopback TCP sockets."""

    def __init__(self, clock: Clock | None = None, trace: MessageTrace | None = None,
                 connect_timeout_s: float = 5.0, io_timeout_s: float = 30.0) -> None:
        super().__init__(clock=clock if clock is not None else WallClock(), trace=trace)
        self._servers: dict[str, _NodeServer] = {}
        self._lock = threading.Lock()
        self.connect_timeout_s = connect_timeout_s
        self.io_timeout_s = io_timeout_s

    def register(self, node_id: str, handler: MessageHandler) -> None:
        with self._lock:
            if node_id in self._servers:
                self._servers[node_id].close()
            self._servers[node_id] = _NodeServer(
                node_id, handler, self.trace, self.clock
            )

    def unregister(self, node_id: str) -> None:
        with self._lock:
            server = self._servers.pop(node_id, None)
        if server is not None:
            server.close()

    def nodes(self) -> list[str]:
        with self._lock:
            return sorted(self._servers)

    def port_of(self, node_id: str) -> int:
        """The TCP port ``node_id`` listens on (for diagnostics)."""
        with self._lock:
            server = self._servers.get(node_id)
        if server is None:
            raise NodeUnreachableError(node_id, "not registered")
        return server.port

    def _connect(self, dst: str) -> socket.socket:
        port = self.port_of(dst)
        try:
            sock = socket.create_connection(
                ("127.0.0.1", port), timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise NodeUnreachableError(dst, f"connect failed: {exc}") from exc
        sock.settimeout(self.io_timeout_s)
        return sock

    def _transmit(self, message: Message) -> Message:
        sock = self._connect(message.dst)
        with sock:
            try:
                _send_frame(sock, message)
                return _recv_frame(sock)
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise NodeUnreachableError(message.dst, f"io failed: {exc}") from exc

    def _transmit_oneway(self, message: Message) -> None:
        sock = self._connect(message.dst)
        with sock:
            try:
                _send_frame(sock, message)
            except (ConnectionError, OSError) as exc:
                raise NodeUnreachableError(message.dst, f"io failed: {exc}") from exc

    def shutdown(self) -> None:
        """Close every listening socket (idempotent)."""
        with self._lock:
            servers = list(self._servers.values())
            self._servers.clear()
        for server in servers:
            server.close()
