"""Real TCP transport, cross-host capable, with persistent pooled connections.

The simulated network answers "does the model behave as the paper says";
this transport answers "does the stack actually run over sockets".  Each
registered node owns a listening socket on the configured ``bind``
interface (``127.0.0.1`` by default; ephemeral port unless pinned via
``ports``); messages are length-prefixed pickled envelopes.

Peers fall in two classes.  Nodes *registered on this transport* are
served in process, exactly as before.  Nodes hosted by **other
processes/machines** are reached through the transport's address book
(:meth:`~repro.net.transport.Transport.connect` records
``node_id -> Endpoint``); the cluster layer's membership service fills
the book from a seed list and JOIN/ANNOUNCE propagation.  With an empty
address book every path below is byte-identical to the single-process
transport of earlier PRs.

Every new pooled/pipelined connection opens with a **HELLO handshake**
(:mod:`repro.net.endpoint`): the client sends protocol version, node id,
codec advertisement, and settings, then waits briefly for the server's
HELLO.  Codec negotiation thereby happens **on the wire** — two
processes that never shared a registry still compress toward each other
— while a peer that answers no HELLO (a pre-handshake build, modelled by
``handshake=False``) or speaks another protocol version degrades to raw
framing, never fails.  HELLO frames are wire-level only: they are not
``Message`` envelopes, are invisible to traces, and the ``per-call``
mode (the early-RMI baseline) skips them entirely.

Three client-side connection strategies (``mode=``), slowest to fastest:

* ``"per-call"`` — a fresh connection per request, mirroring early RMI's
  connection-per-call behaviour.  Kept as the baseline the throughput
  bench measures against.
* ``"pooled"`` — one persistent connection per (src, dst) pair, reused
  across calls but carrying one exchange at a time.  Saves the connect
  handshake on every call after the first.
* ``"pipelined"`` (default) — the pooled connection additionally carries
  many concurrent exchanges at once: submission enqueues the frame on
  the reactor's per-connection write queue, and incoming reply frames
  are demultiplexed to waiting callers by ``Message.reply_to_id``.  N
  threads calling into one destination share one socket and one
  round-trip pipeline.  The same mechanism implements ``call_async``
  natively: submission writes the frame and parks a
  :class:`~repro.net.transport.CallFuture` that the reactor resolves, so
  one caller can scatter N requests (to one node or to N nodes) and
  overlap every round trip without extra threads.
  ``CallFuture.cancel()`` and deadline expiry both *abandon* an
  in-flight exchange the same way a timed-out waiter does: the pending
  reply slot is released, the late reply is dropped, and other waiters
  sharing the connection are untouched.  A request's deadline also caps
  every reply wait (io timeout or less) and is enforced server-side: a
  frame whose deadline expired in the worker queue is dropped at
  dequeue.

**Data plane.**  All pooled/pipelined sockets — client channels,
server-accepted connections, and listeners — are owned by a shared
:class:`~repro.net.reactor.Reactor`: a small pool of ``selectors`` event
loops (one by default, ``reactor_threads=`` scales it) doing
non-blocking reads through per-connection receive state machines and
coalescing queued writes into large sends
(``coalesce_max_bytes=``/``coalesce_max_delay_ms=`` shape the batching;
see the reactor module docstring).  This replaces the per-connection
reader/serve threads of earlier PRs: parked callers and thread handoffs
no longer scale with connection count, and a burst of small frames
rides one syscall.  Only the deliberately slow ``per-call`` mode still
dials blocking sockets — it exists to measure what the reactor buys.

Handler execution never runs on a reactor loop: frames are dispatched
to a bounded worker pool, and *bulk* kinds (streamed migration:
OBJECT_TRANSFER and the PREPARE/CHUNK/COMMIT/ABORT family) go to a
separate background pool so staging writes and marshalled-state applies
cannot queue behind — or starve — latency-sensitive calls.  When every
resident worker is busy a submission runs on a temporary overflow
thread, so a nested call made by a blocked handler (moves trigger
OBJECT_TRANSFER, finds walk forwarding chains) can always be dispatched
and the pool cannot deadlock on its own queue.

TCP provides reliable, ordered delivery, so no loss model applies here —
loss/retry behaviour is exercised on the simulated network.  An
undeliverable *one-way* send is recorded in the trace as a drop, matching
the simulated network's accounting of cast losses (two-way failures raise
to the caller instead).  A handler that dies with a control-flow exception
(``KeyboardInterrupt``/``SystemExit``) answers its caller with an uncached
:class:`~repro.errors.TransportError` — the interrupt itself cannot cross
the wire, and a retransmission executes afresh.  At-most-once execution holds
across reconnects: a stale pooled connection is retried only when the
frame provably never left this side; once a request is on the wire, a
connection failure surfaces as :class:`NodeUnreachableError` rather than
risking re-execution against a replaced node's fresh reply cache.  The
clock is real time by default.
"""

from __future__ import annotations

import dataclasses
import pickle
import socket
import struct
import threading
import time
from collections import deque

from repro.errors import (
    CallTimeoutError,
    ConfigurationError,
    MarshalError,
    NodeUnreachableError,
    RemoteInvocationError,
    TransportError,
)
from repro.net import codec, wirecodec
from repro.net.endpoint import PROTOCOL_VERSION, Endpoint, Hello
from repro.net.message import (
    BULK_KINDS,
    INLINE_KINDS,
    ONEWAY_KINDS,
    Message,
    MessageKind,
    ReplyPayload,
    build_message,
    from_wire,
    to_wire,
)
from repro.net.reactor import (
    Connection,
    DataPlaneStats,
    Listener,
    Reactor,
    _bucket,
)
from repro.net.trace import MessageTrace
from repro.net.transport import (
    DEFAULT_RETRY_BUDGET,
    CallFuture,
    MessageHandler,
    ReplyCache,
    Transport,
)
from repro.util.clock import Clock, WallClock

_LENGTH_PREFIX = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024  # 64 MiB: a generous bound on one message

# The frame header is one 32-bit word: the top 3 bits carry the codec id
# (see repro.net.codec), the low 29 bits the on-wire body length.  Raw
# frames use codec id 0, so an uncompressed frame is byte-for-byte the
# pre-codec framing — negotiation only ever *adds* compression toward
# peers that advertised they accept it.
_CODEC_SHIFT = 29
_LENGTH_MASK = (1 << _CODEC_SHIFT) - 1

#: Valid ``TcpNetwork(mode=...)`` values, slowest to fastest.
MODES = ("per-call", "pooled", "pipelined")

#: ``Hello.settings`` key under which auto-batch capability is advertised.
_AUTOBATCH_SETTING = "autobatch"
#: Capability token: a peer advertising exactly this value accepts
#: AUTO_BATCH envelopes (and answers them with aggregated replies).
_AUTOBATCH_TOKEN = "ab1"

#: ``Hello.settings`` key advertising a server's same-host Unix-domain
#: listener: ``(advertise_host, port, uds_name)``.  Receivers that do not
#: know the key ignore it (the HELLO extension contract), so mixed-version
#: clusters interop over plain TCP.
_UDS_SETTING = "uds"

#: Whether this platform offers Unix-domain stream sockets at all.  The
#: abstract namespace itself is probed per listener (bind may still fail
#: inside restricted sandboxes) — every failure degrades to TCP.
_UDS_SUPPORTED = hasattr(socket, "AF_UNIX")

#: Kinds the client-side auto-batcher never coalesces: bulk kinds carry
#: large zero-copy payloads and must keep their dedicated server pool;
#: one-way kinds have no reply to demultiplex; nested batches stay flat.
_UNBATCHABLE_KINDS = BULK_KINDS | ONEWAY_KINDS | frozenset({
    MessageKind.BATCH, MessageKind.AUTO_BATCH,
})

#: Consecutive over-budget inline dispatches before a server stops
#: dispatching inline for good (a misregistered slow handler must not
#: keep stalling the reactor loop).
_INLINE_DEMOTE_STRIKES = 8

#: How long a waiting caller gives the reply clock before forcing a
#: flush of the auto-batcher's queue (see ``_AutoBatcher.kick``).  Must
#: sit well above a *loaded* round trip (a deep pipeline's p99 is
#: several ms — a grace inside it would fire on every call and fragment
#: the very batches it guards), yet far below any reply-wait timeout a
#: caller could notice when the clock really is dead.
_BATCH_KICK_GRACE_S = 0.02


def _hello_accepts_autobatch(hello: Hello | None, protocol_version: int) -> bool:
    """True when ``hello`` negotiated transparent invoke coalescing.

    Mirrors :func:`wirecodec.hello_accepts_binary`: an exact version match
    plus the capability token.  Legacy peers (no HELLO, older builds whose
    settings lack the key, ``auto_batch=False`` builds) simply never see
    an AUTO_BATCH frame — per-call framing is byte-identical to before.
    """
    if hello is None or hello.version != protocol_version:
        return False
    return hello.settings.get(_AUTOBATCH_SETTING) == _AUTOBATCH_TOKEN


def _fail_sink(sink, error: Exception) -> None:
    """Fail a parked sink with ``error`` itself (not wrapped).

    ``sink.fail`` is the channel-teardown path and wraps everything in
    :class:`NodeUnreachableError`; encode failures and resolved
    unreachability want the raw error, which ``CallFuture._fail`` gives.
    """
    fail_raw = getattr(sink, "_fail", None)
    if fail_raw is not None:
        fail_raw(error)
    else:
        sink.fail(error)


def _estimate_nbytes(message: Message) -> int:
    """Cheap payload-size guess for the batch byte watermark.

    Never serializes: the watermark only decides how many frames ride one
    AUTO_BATCH envelope, so a flat estimate per payload shape is enough —
    blob-carrying invokes count their marshalled argument bytes, plain
    control payloads a fixed overhead.
    """
    payload = message.payload
    if payload is None:
        return 64
    t = payload.__class__
    if t is bytes or t is str:
        return 64 + len(payload)
    if t is int or t is float or t is bool:
        return 72
    blob = getattr(payload, "args_blob", None)
    if type(blob) is bytes:
        return 256 + len(blob)
    return 512


def _transmittable_error_payload(payload: ReplyPayload) -> ReplyPayload:
    """Guarantee an error reply survives the *unpickle* on the client side.

    Pickling an exception can succeed while unpickling fails — the default
    reduction replays ``self.args`` (the formatted message) into a
    constructor that may demand more arguments.  Such a frame would blow
    up in the client channel's reader loop and tear down the shared
    connection, failing every other in-flight waiter.  Our own error
    family defines ``__reduce__``; this guards *handler-raised* exception
    types we do not control by round-tripping once on the server and
    degrading to a :class:`~repro.errors.RemoteInvocationError` that
    carries the original type and message.
    """
    if not payload.is_error:
        # A BATCH reply nests sub-payloads; a failed sub needs the same
        # guard (the later subs never ran, so at most one is an error).
        # An AUTO_BATCH reply nests (sub_id, payload) pairs instead, and
        # *any* number of subs may have failed independently.
        value = payload.value
        if isinstance(value, tuple):
            if any(isinstance(sub, ReplyPayload) and sub.is_error
                   for sub in value):
                return ReplyPayload(value=tuple(
                    _transmittable_error_payload(sub)
                    if isinstance(sub, ReplyPayload) else sub
                    for sub in value
                ))
            if any(isinstance(sub, tuple) and len(sub) == 2
                   and isinstance(sub[1], ReplyPayload) and sub[1].is_error
                   for sub in value):
                return ReplyPayload(value=tuple(
                    (sub[0], _transmittable_error_payload(sub[1]))
                    if (isinstance(sub, tuple) and len(sub) == 2
                        and isinstance(sub[1], ReplyPayload))
                    else sub
                    for sub in value
                ))
        return payload
    try:
        pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        return payload
    except Exception:
        error = payload.error
        return ReplyPayload(
            error=RemoteInvocationError(
                f"remote raised {type(error).__name__} which cannot cross "
                f"the wire: {error}",
                remote_traceback=payload.remote_traceback,
            )
        )


def _encode_frame(message: Message, codec_for=None, flat: bool = False,
                  binary: bool = False) -> "bytes | list[bytes | memoryview]":
    """One wire-ready frame, compressing when negotiated.

    ``codec_for`` maps the serialized size to a codec id (``None`` keeps
    every frame raw).  A frame the codec fails to shrink is sent raw —
    the header is self-describing, so the receiver never needs to know
    what the sender attempted.

    Three envelope encodings, fastest first:

    * ``binary`` — the schema-compiled codec
      (:mod:`repro.net.wirecodec`), used only toward peers whose HELLO
      advertised the *identical* wire-format digest.  Large blob fields
      come back as a buffer *list* (header + head + zero-copy segments)
      that the reactor writes with one gather syscall; small frames
      collapse to contiguous bytes.
    * ``flat`` — the flattened pickled-tuple marshal, toward confirmed
      same-version peers that did not negotiate the binary dialect.
    * neither — the legacy whole-message pickle.

    Decoding is self-describing in every case: a binary envelope starts
    with :data:`wirecodec.MAGIC`, which no pickle stream can.
    """
    if binary:
        try:
            parts = wirecodec.encode_envelope(message)
        except Exception as exc:
            raise MarshalError(
                f"cannot encode {message.describe()}: {exc}") from exc
        if len(parts) == 1:
            blob = parts[0]
        else:
            nbytes = sum(len(part) for part in parts)
            if nbytes > _MAX_FRAME:
                raise MarshalError(f"message too large: {nbytes} bytes")
            ident = codec.RAW if codec_for is None else codec_for(nbytes)
            if ident != codec.RAW:
                joined = b"".join(parts)
                body = codec.encode(ident, joined)
                if len(body) < nbytes:  # compression beats zero-copy
                    return _LENGTH_PREFIX.pack(
                        len(body) | (ident << _CODEC_SHIFT)) + body
            head = _LENGTH_PREFIX.pack(nbytes)
            first = parts[0]
            if isinstance(first, bytes):
                return [head + first, *parts[1:]]
            return [head, *parts]
    else:
        try:
            blob = (to_wire(message) if flat else
                    pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception as exc:
            raise MarshalError(
                f"cannot pickle {message.describe()}: {exc}") from exc
    if len(blob) > _MAX_FRAME:
        raise MarshalError(f"message too large: {len(blob)} bytes")
    ident = codec.RAW if codec_for is None else codec_for(len(blob))
    body = blob
    if ident != codec.RAW:
        body = codec.encode(ident, blob)
        if len(body) >= len(blob):  # incompressible payload: keep raw
            ident, body = codec.RAW, blob
    return _LENGTH_PREFIX.pack(len(body) | (ident << _CODEC_SHIFT)) + body


def _frame_nbytes(wire: "bytes | list[bytes | memoryview]") -> int:
    """On-wire size of one encoded frame (header included)."""
    if isinstance(wire, bytes):
        return len(wire)
    return sum(len(part) for part in wire)


def _send_frame(sock: socket.socket, message: Message,
                codec_for=None) -> None:
    """Write one frame on a blocking socket (the per-call path)."""
    sock.sendall(_encode_frame(message, codec_for))


def _decode_frame(ident: int, body: bytes) -> object:
    """Decompress + unmarshal one reactor-delivered frame body.

    Routing is one byte: a binary envelope opens with
    :data:`wirecodec.MAGIC` (0xB1), a pickle stream with 0x80 — so the
    receiver needs no negotiation state to decode either dialect.
    """
    blob = codec.decode(ident, body, _MAX_FRAME)
    if blob and blob[0] == wirecodec.MAGIC:
        return wirecodec.decode_envelope(blob)
    return from_wire(blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _encode_hello(hello: Hello) -> bytes:
    """One HELLO frame (always raw: codecs are not yet negotiated)."""
    blob = pickle.dumps(hello, protocol=pickle.HIGHEST_PROTOCOL)
    return _LENGTH_PREFIX.pack(len(blob)) + blob


def _send_hello(sock: socket.socket, hello: Hello) -> None:
    """Write one HELLO frame on a blocking socket (client handshake)."""
    sock.sendall(_encode_hello(hello))


def _recv_any(sock: socket.socket) -> tuple[object, int]:
    """Read one frame of any type; returns ``(object, wire_bytes)``.

    ``wire_bytes`` is the on-wire size (header + possibly-compressed
    body) — what a bandwidth-emulating link charges for.  Decoding is
    self-describing from the header's codec bits: a receiver decodes any
    codec it supports regardless of what it advertised, and rejects
    unknown ids (or frames that inflate past the frame bound) with
    :class:`MarshalError`.  The frame may be a :class:`Message` envelope
    or a wire-level :class:`Hello`; callers route on the type.
    """
    header = _recv_exact(sock, _LENGTH_PREFIX.size)
    (word,) = _LENGTH_PREFIX.unpack(header)
    ident = word >> _CODEC_SHIFT
    length = word & _LENGTH_MASK
    if length > _MAX_FRAME:
        raise MarshalError(f"incoming frame too large: {length} bytes")
    body = _recv_exact(sock, length)
    blob = codec.decode(ident, body, _MAX_FRAME)
    if blob and blob[0] == wirecodec.MAGIC:
        return wirecodec.decode_envelope(blob), _LENGTH_PREFIX.size + length
    return from_wire(blob), _LENGTH_PREFIX.size + length


def _recv_frame(sock: socket.socket) -> tuple[Message, int]:
    """Read one frame that must be a :class:`Message` envelope."""
    message, nbytes = _recv_any(sock)
    if not isinstance(message, Message):
        raise MarshalError(f"expected a Message frame, got {type(message).__name__}")
    return message, nbytes


class _ChannelClosedError(ConnectionError):
    """The channel died before this frame was written (safe to retry)."""


class _HandshakeTimeout(Exception):
    """The HELLO wait expired; the socket's read stream may hold a
    half-consumed frame and cannot be trusted for framing anymore."""


class _Waiter:
    """One caller parked on an in-flight pipelined request."""

    __slots__ = ("_event", "_reply", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reply: Message | None = None
        self._error: Exception | None = None

    def resolve(self, reply: Message) -> None:
        self._reply = reply
        self._event.set()

    def fail(self, error: Exception) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout_s: float, message: Message) -> Message:
        if not self._event.wait(timeout_s):
            raise CallTimeoutError(
                f"{message.describe()}: no reply within {timeout_s}s"
            )
        if self._error is not None:
            # The frame was already on the wire, so the handler may have
            # executed; surfacing unreachability (instead of retrying into
            # a replaced node's fresh reply cache) preserves at-most-once.
            raise NodeUnreachableError(
                message.dst, f"connection lost awaiting reply: {self._error}"
            ) from self._error
        assert self._reply is not None
        return self._reply


#: Stripe count for a channel's pending-waiter table.  Eight uncontended
#: locks cover the realistic caller fan-in per destination; message-id
#: hashes spread uniformly (they embed a process-wide counter).
_WAITER_SHARDS = 8


class _WaiterShard:
    """One stripe of a channel's ``msg_id -> FIFO of waiters`` table.

    A retransmission can put two frames of one id in flight; each
    incoming reply resolves the oldest waiter.  The ``closed`` flag
    lives *inside* the shard lock so :meth:`park` and channel teardown
    serialize: a sink either parks before the drain (and is failed by
    it) or observes the closed flag — it can never be parked and then
    silently forgotten.
    """

    __slots__ = ("_lock", "_waiters", "_closed")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._waiters: dict[str, deque] = {}
        self._closed = False

    def park(self, msg_id: str, sink) -> bool:
        """Append ``sink``; False when the channel already closed."""
        with self._lock:
            if self._closed:
                return False
            self._waiters.setdefault(msg_id, deque()).append(sink)
        return True

    def pop(self, msg_id: str):
        """The oldest waiter parked under ``msg_id`` (None when absent)."""
        with self._lock:
            waiters = self._waiters.get(msg_id)
            if not waiters:
                return None
            sink = waiters.popleft()
            if not waiters:
                del self._waiters[msg_id]
        return sink

    def discard(self, msg_id: str, sink) -> None:
        with self._lock:
            waiters = self._waiters.get(msg_id)
            if waiters is None:
                return
            try:
                waiters.remove(sink)
            except ValueError:
                pass  # already resolved and popped
            if not waiters:
                del self._waiters[msg_id]

    def close_and_drain(self) -> list:
        """Refuse future parks and return everything parked; idempotent
        (a second drain returns empty)."""
        with self._lock:
            self._closed = True
            drained = [w for waiters in self._waiters.values() for w in waiters]
            self._waiters.clear()
        return drained


class _Channel:
    """One persistent client connection to a destination node.

    The socket lives on the shared reactor: submission encodes the frame
    and enqueues it on the connection's write queue (no send lock, no
    blocking), and the reactor's frame callback demultiplexes reply
    frames to parked callers by ``reply_to_id`` — the reader thread of
    earlier PRs is gone.  The waiter table is striped by message-id hash
    so concurrent pipelined callers stop serializing on one mutex.
    ``serialize=True`` ("pooled" mode) additionally holds a request lock
    across each whole exchange, keeping the connection reused but never
    pipelined.
    """

    def __init__(self, dst: str, sock: socket.socket, reactor: Reactor,
                 serialize: bool,
                 codec_for=None,
                 negotiated: tuple[str, ...] | None = None,
                 peer_hello: Hello | None = None,
                 protocol_version: int = PROTOCOL_VERSION,
                 binary_enabled: bool = True) -> None:
        self.dst = dst
        self._codec_for = codec_for
        #: What the peer's HELLO advertised (``None`` = no HELLO yet /
        #: legacy peer — raw only).  Set before the reactor adopts the
        #: socket (the frame callback may adopt a HELLO that straggles in
        #: late, so a post-adoption assignment could clobber that).
        self.negotiated_codecs = negotiated
        self.peer_hello = peer_hello
        self._protocol_version = protocol_version
        #: Binary-envelope negotiation, precomputed once per HELLO so the
        #: per-frame send path reads one attribute instead of probing the
        #: peer's settings dict on every encode.
        self._binary_enabled = binary_enabled
        self.send_binary = binary_enabled and wirecodec.hello_accepts_binary(
            peer_hello, protocol_version
        )
        #: Whether the peer's HELLO advertised AUTO_BATCH capability —
        #: gates every ``submit_auto`` so legacy peers never see a frame
        #: kind they cannot decode.
        self.peer_autobatch = _hello_accepts_autobatch(
            peer_hello, protocol_version
        )
        #: The transport attaches a :class:`_AutoBatcher` right after
        #: construction on pipelined channels with auto-batching enabled.
        self._batcher: "_AutoBatcher | None" = None
        #: batch msg_id -> its sub-call msg_ids, so a *whole-batch* error
        #: reply (server-side control-flow abort) can fail every sub
        #: sink.  Entries are removed when the aggregated reply arrives.
        self._batch_lock = threading.Lock()
        self._batch_subs: dict[str, tuple[str, ...]] = {}
        self._request_lock = threading.Lock() if serialize else None
        self._shards = tuple(_WaiterShard() for _ in range(_WAITER_SHARDS))
        self._closed = False
        self._conn: Connection = reactor.add_connection(
            sock, self._on_frame, self._on_closed
        )

    def _shard(self, msg_id: str) -> _WaiterShard:
        return self._shards[hash(msg_id) % _WAITER_SHARDS]

    def _flat_wire(self) -> bool:
        """Flattened envelopes only toward a confirmed same-version peer."""
        hello = self.peer_hello
        return hello is not None and hello.version == self._protocol_version

    @property
    def closed(self) -> bool:
        return self._closed

    def request(self, message: Message, timeout_s: float) -> Message:
        if self._request_lock is not None:
            with self._request_lock:
                return self._request(message, timeout_s)
        return self._request(message, timeout_s)

    def _request(self, message: Message, timeout_s: float) -> Message:
        waiter = _Waiter()
        self.submit(message, waiter)
        try:
            return waiter.wait(timeout_s, message)
        finally:
            self._discard_waiter(message.msg_id, waiter)

    def submit(self, message: Message, sink) -> None:
        """Park ``sink`` for the reply and enqueue the frame; never waits.

        ``sink`` is anything with ``resolve(reply)`` / ``fail(error)`` — a
        :class:`_Waiter` for the blocking path, a pipelined
        :class:`~repro.net.transport.CallFuture` for the asynchronous one.
        ``resolve`` runs on the reactor loop, ``fail`` on whichever thread
        closes the channel; neither may block.

        Encoding happens *before* parking: a :class:`MarshalError` leaves
        the channel healthy with nothing parked, while a
        :class:`_ChannelClosedError` means the frame provably never
        reached the write queue (safe to retry on a fresh channel).
        """
        wire = _encode_frame(message, self._codec_for, flat=self._flat_wire(),
                             binary=self.send_binary)
        shard = self._shard(message.msg_id)
        if not shard.park(message.msg_id, sink):
            raise _ChannelClosedError(f"channel to {self.dst!r} is closed")
        try:
            self._conn.send(wire)
        except ConnectionError as exc:
            shard.discard(message.msg_id, sink)
            self.close()
            raise _ChannelClosedError(
                f"send to {self.dst!r} failed: {exc}"
            ) from exc

    def submit_auto(self, message: Message, sink) -> None:
        """:meth:`submit` through the transparent auto-batcher.

        Routes to the coalescing layer only when the channel has one, the
        peer negotiated the capability, and the kind is batchable; every
        other frame takes the plain path unchanged.
        """
        batcher = self._batcher
        if (batcher is None or not self.peer_autobatch
                or message.kind in _UNBATCHABLE_KINDS):
            self.submit(message, sink)
            return
        batcher.submit(message, sink)

    def submit_batch(self, items: "list[tuple[Message, object]]") -> None:
        """Coalesce several submissions into one AUTO_BATCH frame.

        Same contract as :meth:`submit`, for N frames at once: the batch
        envelope is encoded *before* any sink parks (a
        :class:`MarshalError` leaves the channel clean), each sink parks
        under its own sub message id, and a send failure discards them
        all and raises :class:`_ChannelClosedError` — the whole group
        provably never left, so the caller may re-route every item.
        """
        subs = tuple(message for message, _sink in items)
        batch = build_message(
            MessageKind.AUTO_BATCH, subs[0].src, subs[0].dst, subs
        )
        wire = _encode_frame(batch, self._codec_for, flat=self._flat_wire(),
                             binary=self.send_binary)
        parked: list[tuple[Message, object]] = []
        for message, sink in items:
            if not self._shard(message.msg_id).park(message.msg_id, sink):
                for pm, psink in parked:
                    self._discard_waiter(pm.msg_id, psink)
                raise _ChannelClosedError(
                    f"channel to {self.dst!r} is closed"
                )
            parked.append((message, sink))
        with self._batch_lock:
            self._batch_subs[batch.msg_id] = tuple(s.msg_id for s in subs)
        try:
            self._conn.send(wire)
        except ConnectionError as exc:
            with self._batch_lock:
                self._batch_subs.pop(batch.msg_id, None)
            for message, sink in items:
                self._discard_waiter(message.msg_id, sink)
            self.close()
            raise _ChannelClosedError(
                f"send to {self.dst!r} failed: {exc}"
            ) from exc

    def _discard_waiter(self, msg_id: str, waiter) -> None:
        self._shard(msg_id).discard(msg_id, waiter)

    def send_oneway(self, message: Message) -> None:
        wire = _encode_frame(message, self._codec_for, flat=self._flat_wire(),
                             binary=self.send_binary)
        try:
            self._conn.send(wire)
        except ConnectionError as exc:
            self.close()
            raise _ChannelClosedError(
                f"send to {self.dst!r} failed: {exc}"
            ) from exc

    def queued_bytes(self) -> int:
        """Bytes waiting in this channel's write queue (diagnostics)."""
        return self._conn.queued_bytes()

    # -- reactor callbacks (loop thread; must not block) ----------------------

    def _on_frame(self, ident: int, body: bytes, wire_bytes: int) -> None:
        # A decode/unpickle failure propagates: the reactor tears the
        # connection down with it, and _on_closed fails every waiter —
        # the old reader loop's close(exc) path, without the thread.
        reply = _decode_frame(ident, body)
        if isinstance(reply, Hello):
            # A HELLO that outlived the handshake window (a slow
            # server): adopt the advertisement late — frames written
            # so far went raw, which is always decodable.
            self.peer_hello = reply
            self.negotiated_codecs = (
                tuple(reply.codecs)
                if reply.version == self._protocol_version
                else ()
            )
            self.send_binary = (
                self._binary_enabled
                and wirecodec.hello_accepts_binary(
                    reply, self._protocol_version)
            )
            self.peer_autobatch = _hello_accepts_autobatch(
                reply, self._protocol_version
            )
            return
        if not isinstance(reply, Message):
            raise MarshalError(
                f"expected a Message frame, got {type(reply).__name__}"
            )
        if reply.in_reply_to is MessageKind.AUTO_BATCH:
            self._on_batch_reply(reply)
        else:
            sink = self._shard(reply.reply_to_id).pop(reply.reply_to_id)
            if sink is not None:
                sink.resolve(reply)
            # An unmatched reply (its caller timed out and left) is dropped.
        batcher = self._batcher
        if batcher is not None:
            # Tick the reply clock *after* resolving: callers wake first,
            # then the queue that accumulated behind this round trip
            # flushes as the next aggregate.
            batcher.note_reply()

    def _on_batch_reply(self, reply: Message) -> None:
        """Demultiplex one aggregated reply to its parked sub-call sinks.

        The payload value is a tuple of ``(sub_msg_id, ReplyPayload)``
        pairs; each resolves its own waiter with a synthesized per-sub
        REPLY so callers observe exactly what N individual replies would
        have delivered.  A *whole-batch* error (the aggregate itself
        failed server-side before any sub ran to completion — e.g. a
        control-flow abort) fails every recorded sub sink instead.
        """
        with self._batch_lock:
            sub_ids = self._batch_subs.pop(reply.reply_to_id, ())
        payload = reply.payload
        if isinstance(payload, ReplyPayload) and payload.is_error:
            for sub_id in sub_ids:
                sink = self._shard(sub_id).pop(sub_id)
                if sink is not None:
                    sink.resolve(self._sub_reply(reply, sub_id, payload))
            return
        pairs = payload.value if isinstance(payload, ReplyPayload) else ()
        for sub_id, sub_payload in pairs:
            sink = self._shard(sub_id).pop(sub_id)
            if sink is not None:
                sink.resolve(self._sub_reply(reply, sub_id, sub_payload))

    @staticmethod
    def _sub_reply(aggregate: Message, sub_id: str,
                   payload: ReplyPayload) -> Message:
        """Synthesize the REPLY a sub-call would have received alone.

        The derived id ``<sub>-r`` is what :meth:`Message.reply` would
        have produced for the sub request, and is distinct from the
        aggregate's own ``<batch>-r`` — reply ids stay unique per
        sub-call under aggregation.
        """
        message = Message.__new__(Message)
        message.__dict__.update(
            kind=MessageKind.REPLY,
            src=aggregate.src,
            dst=aggregate.dst,
            payload=payload,
            msg_id=f"{sub_id}-r",
            in_reply_to=None,
            reply_to_id=sub_id,
            deadline=None,
        )
        return message

    def _on_closed(self, reason: Exception | None) -> None:
        self._closed = True
        self._fail_waiters(reason)

    def close(self, reason: Exception | None = None,
              rescue: bool = True) -> None:
        """Sever the connection and fail every parked waiter; idempotent.

        Waiters are failed *synchronously* — the reactor's own teardown
        notification follows asynchronously but finds the shards already
        drained, so no waiter can be left parked behind a dead socket.

        ``rescue=False`` additionally *fails* the auto-batcher's queued
        frames instead of re-routing them: a peer being deliberately
        forgotten must not be redialed by its own teardown (the rescue
        path would resurrect a fresh channel to the node membership just
        declared dead).
        """
        self._closed = True
        self._fail_waiters(reason, rescue=rescue)
        self._conn.close(graceful=False)

    def _fail_waiters(self, reason: Exception | None,
                      rescue: bool = True) -> None:
        if reason is None:
            reason = ConnectionError(f"channel to {self.dst!r} closed")
        with self._batch_lock:
            self._batch_subs.clear()
        for shard in self._shards:
            for waiter in shard.close_and_drain():
                waiter.fail(reason)
        batcher = self._batcher
        if batcher is None:
            return
        if rescue:
            # Queued-but-unsent frames provably never left: re-route them
            # instead of failing them (the parked waiters above were all
            # on the wire; these were not).
            batcher.on_channel_closed()
        else:
            batcher.fail_queued(reason)


class _CallPathMetrics:
    """Counters for the auto-batching / inline-dispatch call path.

    One instance per transport, shared by every channel's batcher
    (client side) and every node server's inline fast path (server
    side); :meth:`merge_into` folds the counters into the reactor's
    :class:`~repro.net.reactor.DataPlaneStats` snapshot so
    ``data_plane_metrics()`` stays one call.
    """

    __slots__ = ("_lock", "auto_batches", "auto_batched_msgs",
                 "auto_batch_per_frame", "inline_dispatches",
                 "inline_overruns", "inline_demotions")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.auto_batches = 0
        self.auto_batched_msgs = 0
        self.auto_batch_per_frame: dict[int, int] = {}
        self.inline_dispatches = 0
        self.inline_overruns = 0
        self.inline_demotions = 0

    def record_batch(self, n: int) -> None:
        bucket = _bucket(n)
        with self._lock:
            self.auto_batches += 1
            self.auto_batched_msgs += n
            histogram = self.auto_batch_per_frame
            histogram[bucket] = histogram.get(bucket, 0) + 1

    def record_inline(self) -> None:
        with self._lock:
            self.inline_dispatches += 1

    def record_overrun(self, demoted: bool) -> None:
        with self._lock:
            self.inline_overruns += 1
            if demoted:
                self.inline_demotions += 1

    def merge_into(self, stats: DataPlaneStats) -> DataPlaneStats:
        with self._lock:
            return dataclasses.replace(
                stats,
                auto_batches=stats.auto_batches + self.auto_batches,
                auto_batched_msgs=(
                    stats.auto_batched_msgs + self.auto_batched_msgs),
                auto_batch_per_frame=dict(self.auto_batch_per_frame),
                inline_dispatches=(
                    stats.inline_dispatches + self.inline_dispatches),
                inline_overruns=stats.inline_overruns + self.inline_overruns,
                inline_demotions=(
                    stats.inline_demotions + self.inline_demotions),
            )


class _AutoBatcher:
    """Transparent invoke coalescing on one pipelined channel.

    The PR 7 reactor coalesces queued *bytes* into one syscall; this
    layer coalesces queued *calls* into one frame, one server-side
    dispatch, and one aggregated reply — amortizing the per-message
    Python overhead that dominates once the wire itself is cheap.

    Discipline mirrors the reactor's flush coalescer, one layer up, with
    a reply-clocked twist borrowed from Nagle's algorithm: a submission
    on an *idle* channel (nothing batcher-sent awaiting its reply) is
    sent immediately on the submitting thread — **a lone call is never
    delayed** (no timers, no waiting for company).  While a frame *is*
    in flight, new submissions merely enqueue; every arriving reply
    flushes whatever accumulated as one AUTO_BATCH frame.  The flush
    clock is thus the round-trip itself: group size adapts to exactly
    how many callers submitted during one server turnaround, with zero
    added latency on an idle channel and no timer anywhere.  (If the
    clock dies — the in-flight exchange hangs past its caller's
    patience — waiting futures force a flush after a short grace:
    :meth:`kick`.)  A group is capped by ``batch_max_msgs`` /
    ``batch_max_bytes`` and always holds at least one call; a group of
    one is sent as a plain frame and never pays the aggregation
    envelope.

    Error discipline: nothing raises to the drainer, because the
    drainer is usually *not* the caller whose frame failed.  A dead
    channel strands frames that provably never left; they — and
    everything still queued — are re-routed through a fresh channel by
    the transport (asynchronously: a drain may run on the reactor loop
    thread, which must never dial).  An unmarshallable payload fails
    only its own sink: the aggregate encode falls back to per-item
    sends so one poisoned call cannot error its siblings.
    """

    __slots__ = ("_channel", "_transport", "_max_msgs", "_max_bytes",
                 "_metrics", "_lock", "_queue", "_active", "_inflight")

    def __init__(self, channel: _Channel, transport: "TcpNetwork",
                 max_msgs: int, max_bytes: int,
                 metrics: _CallPathMetrics) -> None:
        self._channel = channel
        self._transport = transport
        self._max_msgs = max_msgs
        self._max_bytes = max_bytes
        self._metrics = metrics
        self._lock = threading.Lock()
        self._queue: "deque[tuple[Message, object]]" = deque()
        self._active = False
        #: Batcher-sent frames whose replies have not yet arrived — the
        #: Nagle-style gate: > 0 means the reply clock is running and
        #: submissions may coalesce behind it.
        self._inflight = 0

    def submit(self, message: Message, sink) -> None:
        with self._lock:
            self._queue.append((message, sink))
            if self._active:
                return  # the running drain sweeps this item up
            if self._inflight > 0:
                return  # reply-clocked: the next arriving reply flushes
            self._active = True
        self._drain()

    def note_reply(self) -> None:
        """A reply frame arrived (loop thread): tick the flush clock.

        Every incoming reply decrements the in-flight gate and flushes
        the accumulated queue.  Replies to frames the batcher never sent
        (``call_many`` BATCH exchanges, pre-batcher traffic) may tick it
        early — harmless: an early flush only makes a smaller group.
        """
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1
            if self._active or not self._queue:
                return
            self._active = True
        self._drain()

    def kick(self) -> None:
        """Force a flush now (a waiting caller's stall safety valve)."""
        with self._lock:
            if self._active or not self._queue:
                return
            self._active = True
        self._drain()

    def _drain(self) -> None:
        while True:
            with self._lock:
                if not self._queue:
                    # Emptiness check and leadership handoff under one
                    # lock hold: a submitter that appends right after
                    # this sees ``_active`` False and leads itself.
                    self._active = False
                    return
                group = [self._queue.popleft()]
                nbytes = _estimate_nbytes(group[0][0])
                while (self._queue and len(group) < self._max_msgs
                       and nbytes < self._max_bytes):
                    item = self._queue.popleft()
                    group.append(item)
                    nbytes += _estimate_nbytes(item[0])
            if not self._send_group(group):
                return  # channel died; leadership already released

    def _send_group(self, group: "list[tuple[Message, object]]") -> bool:
        # The in-flight gate rises *before* the send: the reply can race
        # a post-send increment on the loop thread, and a tick lost that
        # way would leave the gate stuck high — every later call would
        # then stall into the kick grace.  Failure paths lower it again.
        if len(group) == 1:
            message, sink = group[0]
            self._note_sent()
            try:
                self._channel.submit(message, sink)
            except _ChannelClosedError:
                self._rescue(group)
                return False
            except Exception as exc:  # MarshalError while pickling
                self._note_unsent()
                _fail_sink(sink, exc)
            return True
        self._note_sent()
        try:
            self._channel.submit_batch(group)
        except _ChannelClosedError:
            self._rescue(group)
            return False
        except Exception:
            # The aggregate failed to encode; isolate the poisoned
            # payload by sending each call on its own frame.
            self._note_unsent()
            return self._submit_singly(group)
        self._metrics.record_batch(len(group))
        return True

    def _submit_singly(self, group: "list[tuple[Message, object]]") -> bool:
        for index, (message, sink) in enumerate(group):
            self._note_sent()
            try:
                self._channel.submit(message, sink)
            except _ChannelClosedError:
                self._note_unsent()
                self._rescue(group[index:])
                return False
            except Exception as exc:
                self._note_unsent()
                _fail_sink(sink, exc)
        return True

    def _note_sent(self) -> None:
        with self._lock:
            self._inflight += 1

    def _note_unsent(self) -> None:
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1

    def _rescue(self, items: "list[tuple[Message, object]]") -> None:
        """The channel died with ``items`` provably unsent.

        Hand them — and everything still queued behind them — back to
        the transport for asynchronous re-submission on a fresh channel
        (a drain may be running on the reactor loop thread, which must
        never dial a socket), and release the drain so this (dead)
        batcher goes quiet.
        """
        with self._lock:
            stranded = list(items)
            stranded.extend(self._queue)
            self._queue.clear()
            self._active = False
        self._transport._rescue_async(stranded)

    def on_channel_closed(self) -> None:
        """Channel teardown: re-route whatever never reached the wire."""
        with self._lock:
            if not self._queue:
                return
            stranded = list(self._queue)
            self._queue.clear()
        self._transport._rescue_async(stranded)

    def fail_queued(self, reason: Exception | None) -> None:
        """Deliberate teardown (peer forgotten): fail the queue, no rescue.

        The rescue path would dial the forgotten peer right back —
        resurrecting a channel membership just severed — so an eviction
        fails queued frames instead, and resets the reply clock so a
        later re-join starts the batcher from its idle state.
        """
        if reason is None:
            reason = ConnectionError(
                f"channel to {self._channel.dst!r} closed"
            )
        with self._lock:
            stranded = list(self._queue)
            self._queue.clear()
            self._active = False
            self._inflight = 0
        for _message, sink in stranded:
            # The teardown surface parked waiters see: wrapped in
            # NodeUnreachableError by the sink itself.
            sink.fail(reason)


class _PipelinedCallFuture(CallFuture):
    """A call future resolved by a pipelined channel's reader thread.

    Doubles as the channel's parked sink: the reader thread calls
    :meth:`resolve` with the matched reply frame, channel teardown calls
    :meth:`fail`.  ``result()``/``exception()`` default their timeout to
    the transport's io timeout *measured from submission* — a sweep that
    gathers N futures sequentially pays at most one io-timeout window in
    total, not one per hung host, because every future's clock has been
    running since its frame was sent.  (An explicit ``timeout_s`` stays
    relative to the ``result()`` call.)  An expired wait *abandons* the
    exchange exactly as the blocking path does — the pending slot is
    released (a late reply is dropped by the reader) and the future fails
    permanently with :class:`~repro.errors.CallTimeoutError`.
    """

    def __init__(self, message: Message, batch: bool, timeout_s: float,
                 transport: "TcpNetwork | None" = None) -> None:
        super().__init__(message.describe)
        self._message = message
        self._batch = batch
        self._timeout_s = timeout_s
        self._submitted = time.monotonic()
        self._channel: _Channel | None = None
        self._transport = transport

    # -- sink protocol (called by the channel) --------------------------------

    def resolve(self, reply: Message) -> None:
        if self._transport is not None:
            # Submission-to-reply latency feeds the per-link EWMA that
            # ranks hedge candidates; recorded before completion so a
            # collector that reacts to this future sees fresh numbers.
            self._transport.note_link_latency(
                self._message.dst, time.monotonic() - self._submitted
            )
        self._complete_from_reply(reply, self._batch)

    def fail(self, error: Exception) -> None:
        # The frame was already on the wire, so the handler may have
        # executed; surfacing unreachability (instead of retrying into a
        # replaced node's fresh reply cache) preserves at-most-once.
        wrapped = NodeUnreachableError(
            self._message.dst, f"connection lost awaiting reply: {error}"
        )
        wrapped.__cause__ = error
        self._fail(wrapped)

    # -- waiting --------------------------------------------------------------

    def _await(self, timeout_s: float | None) -> None:
        if timeout_s is None:
            # The default wait is the remainder of the submission-anchored
            # io window, capped by the call's end-to-end budget — a 200 ms
            # deadline never waits out a 30 s io timeout.
            timeout_s = self._wait_bound_s()
        channel = self._channel
        if (channel is not None and channel._batcher is not None
                and not self._event.is_set()):
            # Stall safety valve for the reply-clocked batcher: this
            # frame may still sit queued behind an in-flight exchange
            # whose reply never comes (a hung handler, an abandoned
            # sibling).  After a short grace, force the flush so a
            # queued frame can never outwait a dead clock.  Replies on
            # a healthy channel arrive well inside the grace, so the
            # kick is a no-op on the fast path.
            grace = (_BATCH_KICK_GRACE_S if timeout_s is None
                     else min(_BATCH_KICK_GRACE_S, timeout_s))
            if self._event.wait(grace):
                return
            channel._batcher.kick()
            if timeout_s is not None:
                timeout_s = max(0.0, timeout_s - grace)
        super()._await(timeout_s)

    def _on_wait_timeout(self, timeout_s: float | None) -> None:
        self._abandon()
        # First-wins: a reply racing this timeout may still resolve us.
        self._fail(CallTimeoutError(
            f"{self._message.describe()}: no reply within {timeout_s}s"
        ))

    def _abandon(self) -> None:
        """Release the pending reply slot (timeout and cancel share this):
        the reader drops the late reply; other waiters are untouched."""
        channel = self._channel
        if channel is not None:
            channel._discard_waiter(self._message.msg_id, self)

    def _wait_bound_s(self) -> float | None:
        elapsed = time.monotonic() - self._submitted
        bound = max(0.0, self._timeout_s - elapsed)
        deadline = self._message.deadline
        if deadline is not None:
            bound = min(bound, deadline.remaining_s())
        return bound


class _WorkerPool:
    """Bounded pool of reusable dispatch workers, with overflow drainers.

    Up to ``max_workers`` resident threads execute submitted jobs; when
    every resident is busy, temporary *drainer* threads pick up the
    slack: a handler blocked on a nested call (a move's OBJECT_TRANSFER,
    a find's chain walk) may need this pool to dispatch the very request
    it is waiting on, so a strictly bounded queue could deadlock the
    whole transport.

    Wakeups follow a baton discipline built on one invariant: whenever
    the queue is non-empty, at least one *armed* agent — a notified idle
    worker, or a freshly spawned resident/drainer — is en route to a pop,
    and every pop re-arms a successor while jobs remain.  A burst of fast
    jobs therefore drains on a couple of context switches instead of one
    wakeup per job, while a burst of blocking handlers still fans out to
    one thread each (the old thread-per-overflow behaviour, reached
    incrementally).
    """

    def __init__(self, max_workers: int, name: str) -> None:
        if max_workers <= 0:
            raise ConfigurationError("worker pool needs at least one worker")
        self._max = max_workers
        self._name = name
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs: deque = deque()
        self._idle = 0
        self._stirred = 0  # armed agents en route to their first pop
        self._resident = 0
        self._closed = False

    def submit(self, fn, *args) -> None:
        with self._lock:
            if self._closed:
                return
            self._jobs.append((fn, args))
            self._arm_locked()

    def _arm_locked(self) -> None:
        """Ensure one agent is on its way to pop; callers hold the lock."""
        if self._stirred > 0:
            return
        self._stirred = 1
        if self._idle > 0:
            self._wakeup.notify()
            return
        if self._resident < self._max:
            self._resident += 1
            target, name = self._worker_loop, f"{self._name}-worker-{self._resident}"
        else:
            target, name = self._overflow_drain, f"{self._name}-overflow"
        threading.Thread(target=target, name=name, daemon=True).start()

    @staticmethod
    def _run_job(fn, args) -> None:
        try:
            fn(*args)
        except Exception:
            pass  # dispatch failures are the connection's problem

    def _worker_loop(self) -> None:
        first = True
        while True:
            with self._lock:
                if first:
                    # Spawned armed (see _arm_locked): consume the arm.
                    first = False
                    if self._stirred:
                        self._stirred -= 1
                while not self._jobs and not self._closed:
                    self._idle += 1
                    self._wakeup.wait()
                    self._idle -= 1
                    # A wake consumes an arm; a spurious wake merely
                    # under-counts, which costs an extra wakeup later,
                    # never a stranded job.
                    if self._stirred:
                        self._stirred -= 1
                if self._closed:
                    self._resident -= 1
                    return
                fn, args = self._jobs.popleft()
                if self._jobs:
                    # Re-arm BEFORE running: if our job blocks, the
                    # successor keeps the queue draining.
                    self._arm_locked()
            self._run_job(fn, args)

    def _overflow_drain(self) -> None:
        """A temporary worker: drains jobs until the queue goes empty."""
        with self._lock:
            if self._stirred:
                self._stirred -= 1
            if self._closed or not self._jobs:
                return
            fn, args = self._jobs.popleft()
            if self._jobs:
                self._arm_locked()
        while True:
            self._run_job(fn, args)
            with self._lock:
                if self._closed or not self._jobs:
                    return
                fn, args = self._jobs.popleft()
                if self._jobs:
                    self._arm_locked()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._jobs.clear()
            self._wakeup.notify_all()


class _PeerState:
    """What one inbound connection's HELLO taught us about its peer."""

    __slots__ = ("codecs", "hello", "binary")

    def __init__(self) -> None:
        #: ``None`` until (unless) the peer HELLOs — reply compression
        #: then falls back to the in-process advertisement registry,
        #: which is the pre-handshake behaviour.
        self.codecs: tuple[str, ...] | None = None
        self.hello: Hello | None = None
        #: True only when the peer's HELLO advertised this build's exact
        #: binary wire-format digest — replies then use the compiled
        #: codec; everyone else keeps the pickled envelope.
        self.binary = False


class _ServerConn:
    """Reactor-side state for one accepted server connection."""

    __slots__ = ("conn", "peer", "first", "same_host")

    def __init__(self) -> None:
        self.conn: Connection | None = None
        self.peer = _PeerState()
        #: True until the first frame arrives — only a connection-opening
        #: HELLO is answered.
        self.first = True
        #: The connection arrived over the Unix-domain listener, so the
        #: peer is provably on this machine: replies skip compression
        #: (it exists to save network bandwidth, which a same-host
        #: socket does not consume — the zlib pass is pure CPU cost).
        self.same_host = False


class _NodeServer:
    """Listener for one node: reactor-delivered frames feed the pools.

    The listening socket and every accepted connection live on the
    shared reactor; the frame callback (loop thread) does only cheap
    work — decode, trace, route — and hands handler execution to a
    worker pool.  Request kinds split across two pools: *bulk* kinds
    (streamed migration frames, whose handlers do staging writes and
    marshalled-state applies) run on a dedicated background pool so they
    can never queue behind — or starve — latency-sensitive calls.
    Replies are enqueued on the connection's coalescing write queue; no
    per-connection thread or write lock exists anymore.

    A connection's first frame may be a wire-level :class:`Hello`; the
    server then records the peer's codec advertisement for that
    connection's replies and answers with this node's own HELLO before
    any request is dispatched.  A connection whose first frame is a
    plain ``Message`` belongs to a legacy (or ``per-call``) client and
    is served exactly as before.
    """

    def __init__(self, node_id: str, handler: MessageHandler, trace: MessageTrace,
                 clock: Clock, pool: _WorkerPool, bulk_pool: _WorkerPool,
                 reactor: Reactor,
                 latency_s: float = 0.0,
                 bytes_per_s: float | None = None,
                 codec_for_peer=None,
                 bind_host: str = "127.0.0.1",
                 port: int = 0,
                 handshake: bool = True,
                 hello_codecs=None,
                 codec_for_advertised=None,
                 protocol_version: int = PROTOCOL_VERSION,
                 wire_formats: tuple[str, ...] = (),
                 auto_batch: bool = True,
                 inline_dispatch: bool = True,
                 inline_budget_s: float = 0.001,
                 call_metrics: "_CallPathMetrics | None" = None,
                 uds: bool = False,
                 advertise_host: str = "127.0.0.1") -> None:
        self.node_id = node_id
        self.handler = handler
        self.reply_cache = ReplyCache(shards=8)
        self._trace = trace
        self._clock = clock
        self._pool = pool
        self._bulk_pool = bulk_pool
        self._reactor = reactor
        self._latency_s = latency_s
        self._bytes_per_s = bytes_per_s
        self._codec_for_peer = codec_for_peer
        self._handshake = handshake
        self._hello_codecs = hello_codecs
        self._codec_for_advertised = codec_for_advertised
        self._protocol_version = protocol_version
        self._wire_formats = wire_formats
        self._binary_enabled = wirecodec.WIRE_FORMAT in wire_formats
        self._auto_batch = auto_batch
        #: Inline dispatch runs INLINE_KINDS handlers straight on the
        #: reactor loop thread — only when the handler itself declared
        #: those kinds non-blocking (:func:`~repro.net.message.inline_safe`)
        #: and no emulated link latency is charged (the sleep would stall
        #: the loop for everyone).
        declared = frozenset(getattr(handler, "inline_kinds", ()))
        self._inline_kinds = (
            declared & INLINE_KINDS
            if inline_dispatch and latency_s == 0.0 else frozenset()
        )
        self._inline_budget_s = inline_budget_s
        self._inline_strikes = 0     # loop thread only
        self._inline_demoted = False
        self._call_metrics = call_metrics
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((bind_host, port))
        except OSError as exc:
            self._sock.close()
            raise ConfigurationError(
                f"cannot bind node {node_id!r} to {bind_host}:{port}: {exc}"
            ) from exc
        self._sock.listen(64)
        self.port = self._sock.getsockname()[1]
        self._advertise_host = advertise_host
        self._closing = False
        self._conn_lock = threading.Lock()
        self._conns: set[_ServerConn] = set()
        self._listener: Listener = reactor.add_listener(
            self._sock, self._on_accept
        )
        #: Abstract Unix-domain companion listener (same-host tier 2).
        #: The name is advertised (without the leading NUL) through this
        #: server's HELLO and the membership roster; a bind failure —
        #: no AF_UNIX, no abstract namespace in this sandbox — leaves
        #: ``uds_name`` empty and the node TCP-only, never broken.
        self.uds_name = ""
        self._uds_listener: Listener | None = None
        if uds and _UDS_SUPPORTED:
            name = f"mage-{self.port}-{node_id}"
            usock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                usock.bind("\0" + name)
                usock.listen(64)
            except OSError:
                usock.close()
            else:
                self.uds_name = name
                self._uds_listener = reactor.add_listener(
                    usock, self._on_accept
                )

    def _on_accept(self, sock: socket.socket) -> None:
        state = _ServerConn()
        if _UDS_SUPPORTED and sock.family == socket.AF_UNIX:
            state.same_host = True
        conn = self._reactor.add_connection(
            sock,
            lambda ident, body, wire: self._on_frame(state, ident, body, wire),
            lambda reason: self._on_conn_closed(state),
            bytes_per_s=self._bytes_per_s,
        )
        state.conn = conn
        with self._conn_lock:
            closing = self._closing
            if not closing:
                self._conns.add(state)
        if closing:
            conn.close(graceful=False)

    def _on_frame(self, state: _ServerConn, ident: int, body: bytes,
                  wire_bytes: int) -> None:
        # Loop thread: decode, trace, route — never execute handlers.
        # A decode failure propagates and the reactor closes the
        # connection, exactly as the old serve loop's bail-out did.
        # (Link *bandwidth* is already charged: the reactor defers frame
        # delivery by wire_bytes/rate, serializing per connection like a
        # physical link; dispatch *latency* stays on the workers —
        # propagation delay and transmission time are independent.)
        frame = _decode_frame(ident, body)
        if isinstance(frame, Hello):
            # Wire-level: never traced, never dispatched.  Answer only a
            # connection-opening HELLO (and only when this server
            # handshakes at all — ``handshake=False`` models a
            # pre-handshake build that ignores them).
            if state.first and self._handshake:
                state.peer.hello = frame
                state.peer.codecs = (
                    tuple(frame.codecs)
                    if frame.version == self._protocol_version
                    else ()  # mismatched dialect: degrade to raw
                )
                state.peer.binary = (
                    self._binary_enabled
                    and wirecodec.hello_accepts_binary(
                        frame, self._protocol_version)
                )
                settings: dict = {wirecodec.WIRE_SETTING: self._wire_formats}
                if self._auto_batch:
                    settings[_AUTOBATCH_SETTING] = _AUTOBATCH_TOKEN
                if self.uds_name:
                    # Same-host facet: peers whose advertised host
                    # matches dial the Unix socket instead of TCP.
                    settings[_UDS_SETTING] = (
                        self._advertise_host, self.port, self.uds_name
                    )
                reply = Hello(
                    version=self._protocol_version,
                    node_id=self.node_id,
                    codecs=(self._hello_codecs()
                            if self._hello_codecs is not None else ()),
                    settings=settings,
                )
                try:
                    state.conn.send(_encode_hello(reply))
                except ConnectionError:
                    pass  # racing teardown; the close callback cleans up
            state.first = False
            return
        if not isinstance(frame, Message):
            raise MarshalError(  # protocol violation: close the connection
                f"expected a Message frame, got {type(frame).__name__}"
            )
        state.first = False
        # The reactor measured the frame; thread that through so the
        # trace never pays a second serialization to size the payload.
        self._trace.record(frame, self._clock.now_ms(), nbytes=wire_bytes)
        if self._inline_kinds and not self._inline_demoted \
                and self._inline_eligible(frame):
            self._dispatch_inline(state, frame)
            return
        if frame.kind is MessageKind.AUTO_BATCH \
                and isinstance(frame.payload, tuple) and frame.payload:
            self._pool.submit(self._dispatch_batch, state, frame)
            return
        pool = self._bulk_pool if frame.kind in BULK_KINDS else self._pool
        pool.submit(self._dispatch, state, frame)

    def _inline_eligible(self, frame: Message) -> bool:
        """Only declared-inline kinds — or an auto-batch solely of them."""
        kinds = self._inline_kinds
        if frame.kind in kinds:
            return True
        if frame.kind is not MessageKind.AUTO_BATCH:
            return False
        subs = frame.payload
        return isinstance(subs, tuple) and all(
            sub.kind in kinds for sub in subs
        )

    def _dispatch_inline(self, state: _ServerConn, frame: Message) -> None:
        """Execute an allowlisted frame on the loop thread (no handoff).

        Guarded by a per-call time budget: a handler that keeps
        overrunning (``_INLINE_DEMOTE_STRIKES`` consecutive times)
        demotes this server's inline path permanently — the allowlist
        promised cheap and non-blocking (magelint MAGE009 checks the
        handlers statically), but a misbehaving deployment must degrade
        to the pool rather than starve every connection on the loop.
        """
        budget = self._inline_budget_s
        if frame.kind is MessageKind.AUTO_BATCH:
            budget *= len(frame.payload)
        start = time.monotonic()
        self._dispatch(state, frame)
        elapsed = time.monotonic() - start
        metrics = self._call_metrics
        if metrics is not None:
            metrics.record_inline()
        if elapsed <= budget:
            self._inline_strikes = 0
            return
        self._inline_strikes += 1
        demoted = self._inline_strikes >= _INLINE_DEMOTE_STRIKES
        if demoted:
            self._inline_demoted = True
        if metrics is not None:
            metrics.record_overrun(demoted)

    def _on_conn_closed(self, state: _ServerConn) -> None:
        with self._conn_lock:
            self._conns.discard(state)

    def _dispatch(self, state: _ServerConn, message: Message) -> None:
        if self._latency_s > 0.0:
            # Emulated link delay (tc-netem style): charged on the worker,
            # after the reactor delivered the frame, so a slow link never
            # stalls later frames arriving on the same connection.
            time.sleep(self._latency_s)
        try:
            payload = Transport.execute_handler(
                message, self.handler, self.reply_cache
            )
        except BaseException as exc:  # magelint: disable=MAGE003(deliberate: converts the abort into an uncached error reply on a worker thread; re-raising would only kill the worker without informing the caller)
            # Control-flow abort (KeyboardInterrupt/SystemExit): the
            # single-flight cache retained nothing, so a retransmission
            # executes afresh.  Answer with an *uncached* transport error
            # so the caller fails fast instead of waiting out its reply
            # timeout — a KeyboardInterrupt itself cannot cross the wire.
            payload = ReplyPayload(
                error=TransportError(
                    f"handler aborted by {type(exc).__name__}"
                )
            )
        if message.kind in ONEWAY_KINDS:
            return  # one-way traffic carries no reply frame
        self._send_reply(state, message, payload)

    def _dispatch_batch(self, state: _ServerConn, frame: Message) -> None:
        """Execute an AUTO_BATCH's sub-calls across the pool, reply once.

        The coalesced sub-calls are *independent* — each would have been
        its own frame and its own worker task without batching — so they
        must not serialize behind a slow sibling: the frame fans back out
        to the worker pool (this task keeps the first sub for itself) and
        the last sub to finish sends the single aggregated reply.  Each
        sub runs through :meth:`Transport.execute_handler` individually,
        so per-sub deadlines and the at-most-once reply cache keep the
        exact semantics of unbatched dispatch.
        """
        if self._latency_s > 0.0:
            time.sleep(self._latency_s)  # link delay: charged per frame
        subs = frame.payload
        results: list = [None] * len(subs)
        lock = threading.Lock()
        pending = [len(subs)]

        def run_sub(index: int, sub: Message) -> None:
            try:
                payload = Transport.execute_handler(
                    sub, self.handler, self.reply_cache
                )
            except BaseException as exc:  # magelint: disable=MAGE003(deliberate: same uncached-error conversion as _dispatch, per sub)
                payload = ReplyPayload(
                    error=TransportError(
                        f"handler aborted by {type(exc).__name__}"
                    )
                )
            results[index] = (sub.msg_id, payload)
            with lock:
                pending[0] -= 1
                done = pending[0] == 0
            if done:
                self._send_reply(
                    state, frame, ReplyPayload(value=tuple(results))
                )

        for index in range(1, len(subs)):
            self._pool.submit(run_sub, index, subs[index])
        run_sub(0, subs[0])

    def _send_reply(self, state: _ServerConn, message: Message,
                    payload: ReplyPayload) -> None:
        reply = message.reply(_transmittable_error_payload(payload))
        peer_codecs = state.peer.codecs
        codec_for = None
        if peer_codecs is not None and self._codec_for_advertised is not None:
            # The connection's HELLO told us what its client decodes:
            # compress replies per that wire-negotiated advertisement.
            codec_for = lambda nbytes: self._codec_for_advertised(
                peer_codecs, nbytes)
        elif self._codec_for_peer is not None:
            # Legacy (no-HELLO) connection: fall back to the in-process
            # advertisement registry keyed by the requesting node.
            codec_for = lambda nbytes: self._codec_for_peer(message.src, nbytes)
        if state.same_host:
            # Same-machine connection: bandwidth is free, CPU is not.
            codec_for = None
        hello = state.peer.hello
        flat = hello is not None and hello.version == self._protocol_version
        try:
            wire = _encode_frame(reply, codec_for, flat=flat,
                                 binary=state.peer.binary)
        except MarshalError:
            self._trace.record(reply, self._clock.now_ms())
            raise
        self._trace.record(reply, self._clock.now_ms(),
                           nbytes=_frame_nbytes(wire))
        try:
            state.conn.send(wire)
        except ConnectionError:
            pass  # caller gave up; the reply cache covers their retry

    def drop_peer(self, peer: str) -> None:
        """Sever accepted connections whose HELLO identified ``peer``.

        Eviction-time hygiene: a forgotten peer's half-open inbound
        connections — and the per-connection codec/binary negotiation
        state riding them — must not survive into its re-join, which
        starts from a fresh handshake.  Connections that never HELLOed
        cannot be attributed and are left alone (they carry no per-peer
        state to go stale).
        """
        with self._conn_lock:
            stale = [
                state for state in self._conns
                if state.peer.hello is not None
                and state.peer.hello.node_id == peer
            ]
            for state in stale:
                self._conns.discard(state)
        for state in stale:
            if state.conn is not None:
                state.conn.close(graceful=False)

    def close(self) -> None:
        """Stop listening and sever live connections, releasing the port.

        In-flight exchanges on severed connections surface to their
        callers as :class:`NodeUnreachableError` (their client channel
        sees the close and fails the parked waiters).
        """
        with self._conn_lock:
            self._closing = True
            conns = list(self._conns)
            self._conns.clear()
        self._listener.close()
        if self._uds_listener is not None:
            self._uds_listener.close()
        for state in conns:
            if state.conn is not None:
                state.conn.close(graceful=False)


class TcpNetwork(Transport):
    """Transport over real TCP sockets; see module docstring."""

    track_link_latency = True  # reply latencies feed hedge-candidate ranking

    def __init__(self, clock: Clock | None = None, trace: MessageTrace | None = None,
                 connect_timeout_s: float = 5.0, io_timeout_s: float = 30.0,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 mode: str = "pipelined", server_workers: int = 8,
                 latency_ms: float = 0.0,
                 codecs: tuple[str, ...] | None = None,
                 compress_threshold: int = codec.DEFAULT_COMPRESS_THRESHOLD,
                 bandwidth_mbps: float | None = None,
                 bind: str = "127.0.0.1",
                 advertise_host: str | None = None,
                 ports: dict[str, int] | None = None,
                 handshake: bool = True,
                 hello_timeout_s: float = 2.0,
                 protocol_version: int = PROTOCOL_VERSION,
                 reactor_threads: int = 1,
                 coalesce_max_bytes: int = 64 * 1024,
                 coalesce_max_delay_ms: float = 0.0,
                 wire_formats: tuple[str, ...] | None = None,
                 auto_batch: bool = True,
                 batch_max_msgs: int = 32,
                 batch_max_bytes: int = 64 * 1024,
                 inline_dispatch: bool = True,
                 inline_budget_ms: float = 1.0,
                 uds: bool = True,
                 local_bypass: bool = True) -> None:
        """``latency_ms`` emulates a slower link (tc-netem style): every
        request is delayed that long at the destination before dispatch.
        Loopback's ~0.1 ms round trip hides latency effects entirely;
        setting a LAN/WAN-scale delay lets benches and tests measure what
        scatter-gather and pipelining buy on a real network.

        ``bandwidth_mbps`` emulates link throughput the same way: each
        received frame charges its *on-wire* bytes against the link rate
        on the per-connection serve loop, so bulk transfers pay a
        transmission time loopback would otherwise hide (and compressed
        frames pay only for their compressed bytes).

        ``codecs`` is the sender-side compression preference order
        (default: every codec this process supports, ``()`` disables
        compression entirely).  A frame is compressed only when it
        reaches ``compress_threshold`` serialized bytes *and* the
        destination advertises a shared codec — via its connection
        HELLO, or via :meth:`advertise_codecs` for no-HELLO peers;
        everything else ships raw, with framing byte-identical to the
        pre-codec wire format.

        Cross-host knobs: ``bind`` is the interface node listeners bind
        (``"0.0.0.0"`` accepts other machines); ``advertise_host`` is
        the address *peers* should dial for nodes served here — it
        defaults to ``bind``, falling back to ``127.0.0.1`` when bind
        is a wildcard, and must be set explicitly to this machine's
        reachable address in a real multi-host deployment.  ``ports``
        optionally pins ``node_id -> listen port`` (seeds want a fixed,
        firewall-friendly port; the default remains an ephemeral one).
        ``handshake=False`` disables the HELLO exchange entirely,
        reproducing the pre-handshake wire behaviour (useful as the
        legacy peer in mixed-version tests); ``hello_timeout_s`` bounds
        how long a new connection waits for the server's HELLO before
        degrading to raw framing.

        Data-plane knobs: ``reactor_threads`` sizes the event-loop pool
        that owns every pooled/pipelined socket (one is right until it
        saturates a core); ``coalesce_max_bytes`` and
        ``coalesce_max_delay_ms`` shape adaptive frame coalescing — a
        connection's queued frames flush when the loop goes idle, the
        queue crosses the byte watermark, or the oldest frame has waited
        out the delay, whichever comes first.  The default zero delay
        flushes at the next loop round (lowest latency, batching only
        under load); a small delay (0.2–1 ms) trades that latency for
        bigger batches on throughput-bound workloads.

        ``wire_formats`` is the envelope-dialect advertisement carried in
        ``Hello.settings["wire"]`` (default: this build's schema-compiled
        binary format).  Two peers use the binary envelope only when both
        advertised the *identical* format digest; ``()`` models a
        legacy/pre-codec build, which keeps the pickled-tuple envelope in
        both directions — mixed-version clusters degrade per connection,
        never fail.

        Call-path aggregation knobs: ``auto_batch`` coalesces concurrent
        pipelined calls to one peer into single AUTO_BATCH frames
        (adaptive — a lone call is never delayed), capped per frame by
        ``batch_max_msgs`` / ``batch_max_bytes``; the capability is
        HELLO-negotiated, so a legacy peer (or ``auto_batch=False``)
        keeps the one-frame-per-call wire.  ``inline_dispatch`` lets
        allowlisted cheap kinds (:data:`~repro.net.message.INLINE_KINDS`)
        execute directly on the reactor loop thread under a per-call
        budget of ``inline_budget_ms`` — repeated overruns demote the
        fast path back to the worker pool (watch ``inline_overruns`` and
        ``loop_lag_ewma_ms`` in :meth:`data_plane_metrics`).

        Same-host fast paths: ``uds`` makes every node listener
        additionally bind an abstract Unix-domain socket, advertised
        through HELLO settings and the membership roster; a peer whose
        own ``advertise_host`` matches dials the Unix socket instead of
        loopback TCP, degrading to TCP on any mismatch or dial failure
        (and entirely on platforms without ``AF_UNIX``).
        ``local_bypass`` lets RMI stubs on this transport short-circuit
        invokes to servants hosted *in this process* without touching
        the wire at all (see :class:`repro.rmi.bypass.LocalDispatch`);
        both default on and exist as off-switches for A/B measurement
        and for modelling builds that predate the fast paths.
        """
        super().__init__(
            clock=clock if clock is not None else WallClock(),
            trace=trace,
            retry_budget=retry_budget,
        )
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown TCP mode {mode!r} (expected one of {MODES})"
            )
        if latency_ms < 0:
            raise ConfigurationError(f"latency cannot be negative: {latency_ms}")
        if bandwidth_mbps is not None and bandwidth_mbps <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive: {bandwidth_mbps}"
            )
        if compress_threshold < 0:
            raise ConfigurationError(
                f"compress threshold cannot be negative: {compress_threshold}"
            )
        if hello_timeout_s <= 0:
            raise ConfigurationError(
                f"hello timeout must be positive: {hello_timeout_s}"
            )
        if reactor_threads <= 0:
            raise ConfigurationError(
                f"reactor needs at least one thread: {reactor_threads}"
            )
        if coalesce_max_bytes <= 0:
            raise ConfigurationError(
                f"coalesce_max_bytes must be positive: {coalesce_max_bytes}"
            )
        if coalesce_max_delay_ms < 0:
            raise ConfigurationError(
                f"coalesce delay cannot be negative: {coalesce_max_delay_ms}"
            )
        if batch_max_msgs < 2:
            raise ConfigurationError(
                f"batch_max_msgs must be at least 2: {batch_max_msgs}"
            )
        if batch_max_bytes <= 0:
            raise ConfigurationError(
                f"batch_max_bytes must be positive: {batch_max_bytes}"
            )
        if inline_budget_ms <= 0:
            raise ConfigurationError(
                f"inline budget must be positive: {inline_budget_ms}"
            )
        self.mode = mode
        self.latency_ms = latency_ms
        self.connect_timeout_s = connect_timeout_s
        self.io_timeout_s = io_timeout_s
        self.bind = bind
        self.advertise_host = advertise_host if advertise_host is not None else (
            "127.0.0.1" if bind in ("", "0.0.0.0", "::") else bind
        )
        self._ports = dict(ports) if ports else {}
        self.handshake = handshake
        self.hello_timeout_s = hello_timeout_s
        self.protocol_version = protocol_version
        self.wire_formats = (
            (wirecodec.WIRE_FORMAT,) if wire_formats is None
            else tuple(wire_formats)
        )
        self._binary_enabled = wirecodec.WIRE_FORMAT in self.wire_formats
        self.auto_batch = auto_batch
        self.batch_max_msgs = batch_max_msgs
        self.batch_max_bytes = batch_max_bytes
        self.inline_dispatch = inline_dispatch
        self.inline_budget_s = inline_budget_ms / 1000.0
        self.uds = uds and _UDS_SUPPORTED
        self.supports_local_bypass = bool(local_bypass)
        self._call_metrics = _CallPathMetrics()
        write_codecs = codec.available_codecs() if codecs is None else tuple(codecs)
        for name in write_codecs:
            codec.codec_id(name)  # validate eagerly, not on the hot path
        self.write_codecs = write_codecs
        self.compress_threshold = compress_threshold
        self._bytes_per_s = (
            bandwidth_mbps * 1e6 / 8.0 if bandwidth_mbps is not None else None
        )
        self._servers: dict[str, _NodeServer] = {}
        self._lock = threading.Lock()
        self._channels: dict[tuple[str, str], _Channel] = {}
        self._chan_lock = threading.Lock()
        self._pool = _WorkerPool(server_workers, "tcpnet")
        # Bulk-kind handlers (streamed migration) run off the request
        # path: staging writes and marshalled-state applies never queue
        # behind latency-sensitive calls, and vice versa.
        self._bulk_pool = _WorkerPool(max(2, server_workers // 2), "tcpnet-bulk")
        self._reactor = Reactor(
            reactor_threads,
            max_frame=_MAX_FRAME,
            coalesce_max_bytes=coalesce_max_bytes,
            coalesce_max_delay_s=coalesce_max_delay_ms / 1000.0,
            name="tcpnet",
        )

    # -- codec negotiation ----------------------------------------------------

    def advertise_codecs(self, node_id: str, codecs: tuple[str, ...]) -> None:
        """Override which codecs ``node_id`` accepts from its peers.

        Registration advertises every locally supported codec by default;
        this models a mixed-codec deployment (a peer built without lz4, or
        pre-codec entirely via ``()``) — senders then fall back to raw
        toward that node rather than failing.

        With the HELLO handshake this registry is the *source* of what a
        local node advertises on the wire (its server's HELLO replies
        carry it) and the *fallback* for no-HELLO legacy connections;
        cross-process peers learn it from the handshake, never from this
        in-process table.  Overrides apply to connections established
        after the call.
        """
        for name in codecs:
            codec.codec_id(name)
        self.set_advertised_codecs(node_id, tuple(codecs))

    def peer_codecs(self, node_id: str) -> tuple[str, ...]:
        """The codecs ``node_id`` advertised (``()`` when unknown → raw).

        This sits on every frame-send path; the advertisement lives in
        the transport's *sharded* per-peer records, so concurrent
        channels hash to different stripes instead of serializing behind
        the node-registry mutex.  A racing (un)registration can at worst
        yield a stale tuple, which only toggles compression on one
        frame; the decoder is self-describing, so correctness is
        unaffected.
        """
        advertised = self.advertised_codecs_of(node_id)
        return advertised if advertised is not None else ()

    def _frame_codec(self, peer: str, nbytes: int) -> int:
        """The codec id for one ``nbytes`` frame toward ``peer``.

        The registry-advertisement path: used by ``per-call`` sends and
        by channels whose peer never HELLOed.  Cross-process peers are
        absent from the registry, so this degrades to raw for them.
        """
        return codec.choose_codec(
            nbytes, self.write_codecs, self.peer_codecs(peer),
            self.compress_threshold,
        )

    def _codec_for_advertised(self, advertised: tuple[str, ...],
                              nbytes: int) -> int:
        """The codec id for one frame toward a wire-negotiated peer."""
        return codec.choose_codec(
            nbytes, self.write_codecs, advertised, self.compress_threshold,
        )

    def _advertised_for(self, node_id: str) -> tuple[str, ...]:
        """What ``node_id`` tells peers it decodes (its HELLO payload).

        An :meth:`advertise_codecs` override wins (including an explicit
        empty tuple — a modelled pre-codec build advertises nothing);
        otherwise everything this process can decode.
        """
        advertised = self.advertised_codecs_of(node_id)
        return advertised if advertised is not None else codec.available_codecs()

    def negotiated_codecs(self, src: str, dst: str) -> tuple[str, ...] | None:
        """What the live ``src -> dst`` channel's peer HELLO advertised.

        ``None`` when no pooled channel exists or its peer never HELLOed
        (legacy raw framing); ``()`` when it HELLOed but nothing is
        shared (e.g. a protocol-version mismatch).  Diagnostic: lets
        tests and operators confirm negotiation happened *on the wire*
        rather than through the in-process registry.
        """
        with self._chan_lock:
            channel = self._channels.get((src, dst))
        if channel is None or channel.closed:
            return None
        return channel.negotiated_codecs

    # -- node management ----------------------------------------------------

    def register(self, node_id: str, handler: MessageHandler) -> None:
        # Build the replacement first and swap it in atomically: a call
        # racing the re-registration sees either the old or the new server,
        # never a missing node.
        server = _NodeServer(node_id, handler, self.trace, self.clock, self._pool,
                             self._bulk_pool, self._reactor,
                             latency_s=self.latency_ms / 1000.0,
                             bytes_per_s=self._bytes_per_s,
                             codec_for_peer=self._frame_codec,
                             bind_host=self.bind,
                             port=self._ports.get(node_id, 0),
                             handshake=self.handshake,
                             hello_codecs=lambda: self._advertised_for(node_id),
                             codec_for_advertised=self._codec_for_advertised,
                             protocol_version=self.protocol_version,
                             wire_formats=self.wire_formats,
                             auto_batch=self.auto_batch,
                             inline_dispatch=self.inline_dispatch,
                             inline_budget_s=self.inline_budget_s,
                             call_metrics=self._call_metrics,
                             uds=self.uds,
                             advertise_host=self.advertise_host)
        with self._lock:
            old = self._servers.get(node_id)
            self._servers[node_id] = server
        # A (re-)registering node advertises everything it can decode;
        # an explicit advertise_codecs override survives re-registration
        # only if re-issued (the node was replaced, not resumed).
        self.set_advertised_codecs(node_id, codec.available_codecs())
        if old is not None:
            # Replacing a live node: release its port and sever its
            # connections so in-flight calls fail fast instead of hanging.
            old.close()
            self._drop_channels(node_id)

    def unregister(self, node_id: str) -> None:
        with self._lock:
            server = self._servers.pop(node_id, None)
        if server is not None:
            server.close()
        # Prune everything remembered about the departed node — codec
        # advertisement, link EWMA, address-book entry, live channels —
        # so a long-lived transport carries no state for dead peers.
        self.forget_peer(node_id)

    def nodes(self) -> list[str]:
        """Locally served nodes plus address-book peers (sorted).

        With an empty address book (no cross-host configuration) this is
        exactly the registered-node list of earlier PRs.
        """
        with self._lock:
            local = set(self._servers)
        return sorted(local | set(self.known_peers()))

    def max_reply_wait_s(self) -> float | None:
        return self.io_timeout_s

    def port_of(self, node_id: str) -> int:
        """The TCP port ``node_id`` listens on (for diagnostics)."""
        with self._lock:
            server = self._servers.get(node_id)
        if server is None:
            raise NodeUnreachableError(node_id, "not registered")
        return server.port

    def endpoint_of(self, node_id: str) -> Endpoint | None:
        """Where ``node_id`` can be dialed: a local listener's advertised
        address (with its Unix-socket facet, when one is bound), else the
        address book, else ``None``."""
        with self._lock:
            server = self._servers.get(node_id)
        if server is not None:
            return Endpoint(self.advertise_host, server.port, server.uds_name)
        return super().endpoint_of(node_id)

    def forget_peer(self, node_id: str) -> None:
        # One atomic pop drops the peer's whole sharded record — address
        # book, link EWMA, and codec advertisement together.  Channels
        # are closed with ``rescue=False``: the auto-batcher's queued
        # frames fail instead of redialing the node just forgotten.
        super().forget_peer(node_id)
        self._drop_channels(node_id, rescue=False)
        # Server side of the same hygiene: sever accepted connections
        # the forgotten peer opened toward locally served nodes, so a
        # re-join starts from a fresh handshake (no stale codec/binary
        # negotiation state).
        with self._lock:
            servers = list(self._servers.values())
        for server in servers:
            server.drop_peer(node_id)

    def _peer_endpoint_changed(self, node_id: str) -> None:
        # A peer re-joined from a new endpoint: the fresh address wins,
        # and channels built on the stale one are severed (their
        # in-flight exchanges fail over to reconnect-and-retry or
        # surface as unreachability, exactly like a re-registration).
        self._drop_channels(node_id)

    # -- client-side connections ---------------------------------------------

    def _dial_address(self, dst: str) -> Endpoint:
        """Resolve ``dst`` to a dialable endpoint.

        Locally served nodes are dialed over loopback-or-bind directly
        (keeping their Unix-socket facet — same process is trivially
        same host); anything else must be in the address book, whose
        facet is kept only when the peer's advertised host matches this
        transport's own — a Unix socket on another machine is not
        reachable, whatever the roster says.
        """
        with self._lock:
            server = self._servers.get(dst)
        if server is not None:
            host = "127.0.0.1" if self.bind in ("", "0.0.0.0", "::") else self.bind
            return Endpoint(host, server.port, server.uds_name)
        endpoint = super().endpoint_of(dst)
        if endpoint is None:
            raise NodeUnreachableError(
                dst, "not registered and no known endpoint"
            )
        if endpoint.uds and endpoint.host != self.advertise_host:
            return Endpoint(endpoint.host, endpoint.port)
        return endpoint

    def _connect(self, dst: str) -> socket.socket:
        endpoint = self._dial_address(dst)
        if endpoint.uds and self.uds:
            sock = self._dial_uds(endpoint.uds)
            if sock is not None:
                return sock
            # Any failure degrades to TCP: the peer may have restarted
            # without the facet, or the abstract namespace may be
            # partitioned from this process (container boundaries).
        try:
            sock = socket.create_connection(
                endpoint.address(), timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise NodeUnreachableError(dst, f"connect failed: {exc}") from exc
        # Frames are small; Nagle-batching them against delayed ACKs stalls
        # the pipelined mode badly, so send every frame immediately.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _dial_uds(self, name: str) -> socket.socket | None:
        """Dial the abstract Unix socket ``name``; ``None`` on failure.

        No TCP_NODELAY here — Unix sockets have no Nagle to disable —
        and no exception surface: the caller always has TCP to fall
        back on, so a same-host dial can only ever *add* a fast path.
        """
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout_s)
        try:
            sock.connect("\0" + name)
        except OSError:
            sock.close()
            return None
        return sock

    def _client_handshake(
        self, sock: socket.socket, src: str
    ) -> tuple[tuple[str, ...] | None, Hello | None]:
        """Open a new connection with HELLO; returns (peer codecs, hello).

        Sends this side's HELLO and waits up to ``hello_timeout_s`` for
        the server's.  Degrades, never fails: a peer that answers no
        HELLO in time (a legacy build) or speaks another protocol
        version yields a raw-only negotiation — ``(None, None)`` and
        ``((), hello)`` respectively — and the connection proceeds.

        Raises :class:`_HandshakeTimeout` when the wait expires: the
        timeout may have struck mid-frame (a slow server's HELLO bytes
        still in flight), in which case ``_recv_exact`` has already
        consumed part of the frame and the stream can no longer be
        trusted for framing — the caller must redial rather than reuse
        this socket.
        """
        settings: dict = {"mode": self.mode, "max_frame": _MAX_FRAME,
                          wirecodec.WIRE_SETTING: self.wire_formats}
        if self.auto_batch:
            settings[_AUTOBATCH_SETTING] = _AUTOBATCH_TOKEN
        hello = Hello(
            version=self.protocol_version,
            node_id=src,
            codecs=self._advertised_for(src),
            settings=settings,
        )
        try:
            _send_hello(sock, hello)
            sock.settimeout(self.hello_timeout_s)
            frame, _nbytes = _recv_any(sock)
        except (TimeoutError, socket.timeout) as exc:
            raise _HandshakeTimeout from exc
        except (ConnectionError, MarshalError, OSError):
            # The peer hung up (or spoke garbage) on our HELLO; the
            # first real send will surface unreachability if it's dead.
            return None, None
        if not isinstance(frame, Hello):
            # A reply frame before any request can only be protocol
            # confusion; treat as un-negotiated.
            return None, None
        if frame.version != self.protocol_version:
            return (), frame  # mismatched dialect: raw, never fail
        return tuple(frame.codecs), frame

    def _channel(self, src: str, dst: str) -> _Channel:
        key = (src, dst)
        with self._chan_lock:
            channel = self._channels.get(key)
            if channel is not None and not channel.closed:
                return channel
        sock = self._connect(dst)
        negotiated: tuple[str, ...] | None = None
        peer_hello: Hello | None = None
        if self.handshake:
            try:
                negotiated, peer_hello = self._client_handshake(sock, src)
            except _HandshakeTimeout:
                # The wait may have expired mid-frame, leaving the read
                # stream desynced — redial and treat the peer as legacy
                # (no second HELLO: one slow handshake costs this
                # channel its compression, never its correctness).
                try:
                    sock.close()
                except OSError:
                    pass
                sock = self._connect(dst)
        sock.settimeout(None)  # the reactor owns it; reply timeouts are waiter-side
        self._learn_peer_uds(dst, peer_hello)
        channel = _Channel(dst, sock, self._reactor,
                           serialize=(self.mode == "pooled"),
                           negotiated=negotiated, peer_hello=peer_hello,
                           protocol_version=self.protocol_version,
                           binary_enabled=self._binary_enabled)
        # Reads the channel's live negotiation state so a HELLO that
        # straggles in after the handshake window still upgrades the
        # channel; un-negotiated channels use the registry path (which
        # is empty — hence raw — for peers this process never hosted).
        # (Assigned post-construction, but only send paths — which run
        # after this method returns — ever call it.)
        if _UDS_SUPPORTED and sock.family == socket.AF_UNIX:
            # Same-machine channel: compression saves bandwidth a Unix
            # socket does not consume, so every frame goes raw and the
            # compressor's CPU cost goes with it.
            channel._codec_for = None
        else:
            channel._codec_for = lambda nbytes: (
                self._frame_codec(dst, nbytes)
                if channel.negotiated_codecs is None
                else self._codec_for_advertised(channel.negotiated_codecs, nbytes)
            )
        if self.auto_batch and self.mode == "pipelined":
            # Same post-construction discipline as _codec_for: only
            # submit_auto — called after this method returns — reads it.
            channel._batcher = _AutoBatcher(
                channel, self, self.batch_max_msgs, self.batch_max_bytes,
                self._call_metrics,
            )
        with self._chan_lock:
            current = self._channels.get(key)
            if current is not None and not current.closed:
                channel.close()  # lost the race; reuse the winner
                return current
            self._channels[key] = channel
        return channel

    def _learn_peer_uds(self, dst: str, hello: "Hello | None") -> None:
        """Adopt the Unix-socket facet a server's HELLO advertised.

        Recorded through :meth:`connect`'s facet merge, so the address
        book remembers it for later dials (the *current* connection
        stays on whatever socket it was opened on — the upgrade applies
        from the next dial).  Ignored unless the advertised ``(host,
        port)`` agrees with what this transport already dials for
        ``dst``: adopting a mismatched advertisement would re-route —
        and sever — healthy connections on hearsay.
        """
        if hello is None or not self.uds:
            return
        spec = hello.settings.get(_UDS_SETTING)
        if (not isinstance(spec, tuple) or len(spec) != 3
                or not isinstance(spec[0], str)
                or not isinstance(spec[2], str) or not spec[2]):
            return
        host, port, uds_name = spec
        if host != self.advertise_host:
            return  # another machine's Unix socket: not reachable here
        known = super().endpoint_of(dst)
        if known is None or known.address() != (host, port):
            return
        try:
            self.connect(dst, Endpoint(host, int(port), uds_name))
        except (ConfigurationError, TypeError, ValueError):
            return  # malformed advertisement: stay on TCP

    def _drop_channels(self, dst: str, rescue: bool = True) -> None:
        with self._chan_lock:
            stale = [key for key in self._channels if key[1] == dst]
            channels = [self._channels.pop(key) for key in stale]
        for channel in channels:
            channel.close(rescue=rescue)

    def open_channels(self) -> int:
        """How many live pooled connections exist (for tests/diagnostics)."""
        with self._chan_lock:
            return sum(1 for c in self._channels.values() if not c.closed)

    def data_plane_metrics(self) -> DataPlaneStats:
        """Reactor counters: flush batching, loop lag, queue depths —
        plus the transport's own call-path aggregation counters
        (auto-batch size histogram, inline-dispatch/overrun/demotion).

        Consumed by :func:`repro.runtime.metrics.collect_data_plane` and
        the throughput bench report.
        """
        return self._call_metrics.merge_into(self._reactor.metrics())

    # -- delivery -------------------------------------------------------------

    def _record_drop(self, message: Message) -> None:
        """Trace an undeliverable *one-way* send, matching the simulated
        network's accounting (two-way failures raise instead; recording
        them here would skew cross-transport trace comparisons)."""
        if message.kind in ONEWAY_KINDS:
            self.trace.record(message, self.clock.now_ms(), dropped=True)

    def _transmit_pooled(self, message: Message, op):
        """Send via the pooled channel, with one stale-channel retry.

        A pooled connection may have died since its last use (the peer
        re-registered or unregistered).  ``_ChannelClosedError`` means the
        frame provably never left this side, so reconnecting and resending
        preserves at-most-once; any post-send failure surfaces from ``op``
        as :class:`NodeUnreachableError` instead.
        """
        for _ in range(2):
            try:
                channel = self._channel(message.src, message.dst)
            except NodeUnreachableError:
                self._record_drop(message)
                raise
            try:
                return op(channel)
            except _ChannelClosedError:
                continue
        self._record_drop(message)
        raise NodeUnreachableError(message.dst, "connection lost before send")

    def _reply_timeout_s(self, message: Message) -> float:
        """The wait budget for one exchange: io timeout capped by deadline."""
        timeout_s = self.io_timeout_s
        if message.deadline is not None:
            timeout_s = min(timeout_s, message.deadline.remaining_s())
        return timeout_s

    def _per_call_send(self, message: Message, want_reply: bool) -> Message | None:
        """One fresh-connection exchange (the early-RMI baseline mode)."""
        try:
            sock = self._connect(message.dst)
        except NodeUnreachableError:
            self._record_drop(message)
            raise
        sock.settimeout(max(self._reply_timeout_s(message), 0.001))
        with sock:
            try:
                _send_frame(sock, message,
                            lambda nbytes: self._frame_codec(message.dst, nbytes))
                if not want_reply:
                    return None
                reply, _nbytes = _recv_frame(sock)
                return reply
            except socket.timeout as exc:
                if message.deadline is not None:
                    # The caller's budget capped this wait: surface the
                    # same CallTimeoutError the pooled/pipelined waiters
                    # raise, so deadline consumers see one error type
                    # regardless of mode.
                    raise CallTimeoutError(
                        f"{message.describe()}: deadline expired awaiting reply"
                    ) from exc
                self._record_drop(message)  # one-way only; no-op for calls
                raise NodeUnreachableError(message.dst, f"io failed: {exc}") from exc
            except (ConnectionError, OSError) as exc:
                self._record_drop(message)  # one-way only; no-op for calls
                raise NodeUnreachableError(message.dst, f"io failed: {exc}") from exc

    def _transmit(self, message: Message) -> Message:
        if self.mode == "per-call":
            return self._per_call_send(message, want_reply=True)
        timeout_s = self._reply_timeout_s(message)
        return self._transmit_pooled(
            message, lambda channel: channel.request(message, timeout_s)
        )

    def _transmit_async(self, message: Message, batch: bool) -> CallFuture:
        """Native futures on the pipelined channel's waiter mechanism.

        The frame is written during submission (with the same
        provably-unsent reconnect retry as the blocking path); the returned
        future is resolved by the channel's reader thread when the matching
        reply frame arrives.  Issuing N futures before collecting any puts
        N round trips in flight on the shared connection.  The "per-call"
        and "pooled" modes keep the base class's eager exchange — their
        wire protocols carry one exchange at a time by design.
        """
        if self.mode != "pipelined":
            return super()._transmit_async(message, batch)
        future = _PipelinedCallFuture(message, batch, self.io_timeout_s,
                                      transport=self)
        if message.deadline is not None and message.deadline.expired:
            # Budget already gone: never touch the wire.
            future._fail(CallTimeoutError(
                f"{message.describe()}: deadline expired"
            ))
            return future
        for _ in range(2):
            try:
                channel = self._channel(message.src, message.dst)
            except NodeUnreachableError as exc:
                self._record_drop(message)
                future._fail(exc)
                return future
            # Channel recorded *before* submission: the auto-batcher may
            # queue the frame and send it from another caller's drain,
            # and abandon/timeout paths need the channel either way.
            future._channel = channel
            try:
                channel.submit_auto(message, future)
            except _ChannelClosedError:
                continue  # frame provably never left; reconnect and resend
            except Exception as exc:  # e.g. MarshalError while pickling
                future._fail(exc)
                return future
            return future
        self._record_drop(message)
        future._fail(NodeUnreachableError(message.dst, "connection lost before send"))
        return future

    def _rescue_async(self, items: "list[tuple[Message, object]]") -> None:
        """Queue a stranded-frame rescue on the worker pool.

        Rescue dials a fresh connection, which may block — and the
        thread asking for it may be a reactor loop (a reply-clocked
        flush), which must never block.  After shutdown the pool drops
        the job silently; the affected callers then time out against a
        transport that is gone anyway.
        """
        if items:
            self._pool.submit(self._resubmit_stranded, items)

    def _resubmit_stranded(
        self, items: "list[tuple[Message, object]]"
    ) -> None:
        """Re-route frames a dying batcher proved never left its channel.

        Each is re-submitted on a *fresh* channel (plain :meth:`submit`
        — the original coalescing opportunity is gone) with the same
        one-retry discipline as the direct path; a frame that cannot be
        placed fails its own sink, never its group.
        """
        for message, sink in items:
            failure: Exception | None = None
            for _ in range(2):
                try:
                    channel = self._channel(message.src, message.dst)
                except NodeUnreachableError as exc:
                    failure = exc
                    break
                if hasattr(sink, "_channel"):
                    sink._channel = channel
                try:
                    channel.submit(message, sink)
                except _ChannelClosedError as exc:
                    failure = exc
                    continue
                except Exception as exc:  # MarshalError while pickling
                    failure = exc
                    break
                failure = None
                break
            if failure is not None:
                self._record_drop(message)
                _fail_sink(sink, failure if not isinstance(
                    failure, _ChannelClosedError
                ) else NodeUnreachableError(
                    message.dst, "connection lost before send"
                ))

    def _transmit_oneway(self, message: Message) -> None:
        if self.mode == "per-call":
            self._per_call_send(message, want_reply=False)
            return
        self._transmit_pooled(
            message, lambda channel: channel.send_oneway(message)
        )

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Close every listening socket, connection and worker (idempotent)."""
        with self._lock:
            servers = list(self._servers.values())
            self._servers.clear()
        with self._chan_lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for channel in channels:
            channel.close()
        for server in servers:
            server.close()
        self._pool.close()
        self._bulk_pool.close()
        self._reactor.close()
