"""Message tracing.

The trace is the reproduction's instrument for the paper's protocol figures
(Figures 1, 2, 3, 7): every message a transport delivers is recorded with a
global sequence number and the virtual timestamp at which it was sent.
Benches then assert on, and pretty-print, the causal message sequences.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.net.message import Message, MessageKind, payload_nbytes


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message, as observed by the transport."""

    seq: int
    time_ms: float
    kind: str          # e.g. "INVOKE" or "REPLY(INVOKE)"
    src: str
    dst: str
    msg_id: str
    local: bool        # src == dst (in-namespace interaction)
    dropped: bool      # the loss model ate this transmission attempt
    nbytes: int        # approximate payload size on the wire

    def arrow(self) -> str:
        """Render as ``src -> dst: KIND`` (with a ✗ suffix for drops)."""
        suffix = "  [LOST]" if self.dropped else ""
        return f"{self.src} -> {self.dst}: {self.kind}{suffix}"


class MessageTrace:
    """Thread-safe, append-only record of transport activity."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        #: Recorded-but-not-yet-materialized entries: (seq, time_ms,
        #: message, dropped, nbytes).  The hot path only appends this
        #: tuple; the kind string and payload sizing (a pickle!) are
        #: deferred to the first read, off the transport's critical path.
        self._pending: list[tuple[int, float, Message, bool, int | None]] = []
        self._lock = threading.Lock()
        self._seq = 0

    def record(self, message: Message, time_ms: float, dropped: bool = False,
               nbytes: int | None = None) -> None:
        """Append an event for ``message`` (lazily materialized).

        ``nbytes`` lets a transport that already knows the frame's
        *measured* on-wire size (the TCP data plane) thread it through
        instead of paying a second serialization at materialize time;
        ``None`` keeps the :func:`payload_nbytes` estimate (the
        simulated network's figure-stable accounting).
        """
        with self._lock:
            self._seq += 1
            self._pending.append((self._seq, time_ms, message, dropped, nbytes))

    def _materialize_locked(self) -> None:
        for seq, time_ms, message, dropped, nbytes in self._pending:
            kind = message.kind.value
            if (message.kind is MessageKind.REPLY
                    and message.in_reply_to is not None):
                kind = f"REPLY({message.in_reply_to.value})"
            self._events.append(TraceEvent(
                seq=seq,
                time_ms=time_ms,
                kind=kind,
                src=message.src,
                dst=message.dst,
                msg_id=message.msg_id,
                local=message.is_local,
                dropped=dropped,
                nbytes=nbytes if nbytes is not None else payload_nbytes(message),
            ))
        self._pending.clear()

    def events(self) -> list[TraceEvent]:
        """Snapshot of all events in sequence order."""
        with self._lock:
            if self._pending:
                self._materialize_locked()
            return list(self._events)

    def clear(self) -> None:
        """Forget all recorded events."""
        with self._lock:
            self._events.clear()
            self._pending.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events) + len(self._pending)

    # -- queries used by tests and figure benches ---------------------------

    def filtered(
        self,
        kinds: Iterable[str] | None = None,
        remote_only: bool = False,
        include_dropped: bool = False,
    ) -> list[TraceEvent]:
        """Events restricted by kind / locality / drop status."""
        wanted = set(kinds) if kinds is not None else None
        result = []
        for event in self.events():
            if event.dropped and not include_dropped:
                continue
            if remote_only and event.local:
                continue
            if wanted is not None and event.kind not in wanted:
                continue
            result.append(event)
        return result

    def kinds(self, remote_only: bool = False) -> list[str]:
        """The sequence of message kinds, in order."""
        return [e.kind for e in self.filtered(remote_only=remote_only)]

    def summary(self) -> Counter:
        """Counter of delivered (non-dropped) message kinds."""
        return Counter(e.kind for e in self.events() if not e.dropped)

    def remote_message_count(self) -> int:
        """Messages that actually crossed the network (the paper's RMI cost)."""
        return sum(1 for e in self.events() if not e.local and not e.dropped)

    def remote_bytes(self) -> int:
        """Approximate payload bytes that crossed the network."""
        return sum(
            e.nbytes for e in self.events() if not e.local and not e.dropped
        )

    def arrows(self, remote_only: bool = False) -> list[str]:
        """The trace rendered as ``src -> dst: KIND`` lines (figure format)."""
        return [e.arrow() for e in self.filtered(remote_only=remote_only)]
