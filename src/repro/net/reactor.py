"""Event-loop data plane: every socket owned by a selector thread.

The thread-per-connection transport of earlier PRs spent its throughput
budget on thread handoffs and per-frame syscalls: one reader thread per
client channel, one serve thread per inbound connection, one ``sendall``
per frame.  This module replaces all of that with a small pool of
**reactor loops** (one by default), each running a ``selectors`` event
loop that owns its sockets outright:

* **Reads** are non-blocking and batched: one ``recv`` drains whatever
  burst arrived, and a per-connection receive state machine slices it
  into length-prefixed frames.  Frames are handed to the owner through
  an ``on_frame(codec_id, body, wire_bytes)`` callback on the loop
  thread — the callback must never block (hand real work to a pool).
* **Writes** go through a per-connection queue.  :meth:`Connection.send`
  only enqueues (any thread, never blocks); the loop coalesces queued
  frames into large ``send`` calls — *adaptive frame coalescing*.  A
  queue flushes when the loop goes idle (end of an event round), when it
  crosses ``coalesce_max_bytes``, or when the oldest queued frame has
  waited ``coalesce_max_delay_s`` — whichever comes first.  With the
  default zero delay every enqueue wakes the loop, so latency is one
  loop round and batching still happens whenever the loop was busy (the
  exact moments batching pays).
* **Backpressure** is native: a partial ``send`` re-queues the remainder
  and arms ``EVENT_WRITE`` interest; nothing is lost and no thread is
  parked on a full socket buffer.
* **Bandwidth emulation** moves off sleeping threads: a connection with
  ``bytes_per_s`` set *defers* each parsed frame's delivery to the time
  a link of that rate would have finished transmitting it, serializing
  per-connection like a physical wire, driven by the loop timer.

Lock discipline: the loop thread is the only thread that touches a
socket.  Every queue mutation holds the owning lock, and every syscall
happens outside any lock (magelint MAGE001/MAGE007 are clean over this
module by construction).

The module knows framing (the 32-bit header word: top
:data:`CODEC_SHIFT` bits = codec id, low bits = body length) but not
message semantics — pickling, codec negotiation, HELLOs, dispatch and
reply matching all live in :mod:`repro.net.tcpnet`.
"""

from __future__ import annotations

import heapq
import selectors
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

#: One 32-bit header word per frame: ``length | (codec_id << CODEC_SHIFT)``.
HEADER = struct.Struct(">I")
CODEC_SHIFT = 29
LENGTH_MASK = (1 << CODEC_SHIFT) - 1

#: Largest single ``recv``; big enough to drain a burst of small frames
#: in one syscall without starving the loop's other connections.
_RECV_CHUNK = 1 << 18

#: Most bytes merged into one ``send`` during a flush.
_SEND_CAP = 1 << 20

#: Most buffers handed to one ``sendmsg`` (kept safely under IOV_MAX,
#: which POSIX guarantees to be ≥ 16 and Linux sets to 1024).
_IOV_CAP = 128

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")

#: One encoded frame as accepted by :meth:`Connection.send`: a single
#: contiguous buffer, or an ordered buffer list (header + head bytes +
#: zero-copy blob segments) that goes out through one gather write.
FramePayload = "bytes | list[bytes | memoryview]"


def _send_gather(sock: socket.socket,
                 chunks: "list[bytes | memoryview]") -> int:
    """Write a buffer list with one syscall; returns bytes accepted.

    ``sendmsg`` is writev under the hood: the kernel copies straight out
    of each buffer, so large blob segments are never joined into an
    intermediate bytes object.  Platforms without it fall back to a join.
    """
    if len(chunks) == 1:
        return sock.send(chunks[0])
    if _HAS_SENDMSG:
        return sock.sendmsg(chunks)
    return sock.send(b"".join(chunks))


def _remainder(chunks: "list[bytes | memoryview]",
               sent: int) -> "list[bytes | memoryview]":
    """The tail of ``chunks`` after the kernel accepted ``sent`` bytes.

    The partially-written chunk is re-sliced as a memoryview — no copy,
    regardless of how large the interrupted blob segment was.
    """
    rest: "list[bytes | memoryview]" = []
    for chunk in chunks:
        n = len(chunk)
        if sent >= n:
            sent -= n
            continue
        if sent:
            rest.append(memoryview(chunk)[sent:])
            sent = 0
        else:
            rest.append(chunk)
    return rest

#: How long a graceful teardown keeps trying to drain queued writes.
_DRAIN_TIMEOUT_S = 1.0

#: Default size watermark for the write coalescer.
DEFAULT_COALESCE_MAX_BYTES = 64 * 1024

#: ``on_frame(codec_id, body, wire_bytes)`` — one parsed frame, on the
#: loop thread.  Raising tears the connection down with the exception as
#: the close reason.
FrameCallback = Callable[[int, bytes, int], None]
#: ``on_closed(reason)`` — exactly once, when the connection dies
#: (``None`` = orderly EOF or local close).  Runs on the closing thread.
ClosedCallback = Callable[[Exception | None], None]
#: ``on_accept(sock)`` — one accepted (already non-Nagle) socket.
AcceptCallback = Callable[[socket.socket], None]


class FrameError(Exception):
    """The byte stream violated framing (oversized or malformed frame)."""


def _bucket(n: int) -> int:
    """Power-of-two histogram bucket for a flush batch size."""
    b = 1
    while b < n:
        b <<= 1
    return b


@dataclass(frozen=True)
class DataPlaneStats:
    """Point-in-time snapshot of the reactor's data-plane counters.

    ``frames_per_flush`` is a histogram keyed by power-of-two bucket
    (how many frames each coalesced ``send`` carried — the direct
    measure of what adaptive coalescing saves).  Loop lag is how long
    one event-processing round kept the loop away from ``select`` —
    the reactor's answer to "is the loop the bottleneck".

    The ``auto_batch_*`` / ``inline_*`` fields describe the transport's
    call-path aggregation one layer up (calls coalesced per frame,
    dispatches run inline on the loop thread); the reactor itself never
    touches them — the TCP transport folds its own counters in before
    handing the snapshot out, so they default to zero here.
    """

    frames_sent: int
    flushes: int
    frames_per_flush: dict[int, int]
    mean_frames_per_flush: float
    loop_lag_ewma_ms: float
    loop_lag_max_ms: float
    max_queue_bytes: int
    queued_bytes: int
    connections: int
    auto_batches: int = 0
    auto_batched_msgs: int = 0
    auto_batch_per_frame: dict[int, int] = field(default_factory=dict)
    inline_dispatches: int = 0
    inline_overruns: int = 0
    inline_demotions: int = 0

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form for bench artifacts."""
        return {
            "frames_sent": self.frames_sent,
            "flushes": self.flushes,
            "frames_per_flush": {
                str(k): v for k, v in sorted(self.frames_per_flush.items())
            },
            "mean_frames_per_flush": round(self.mean_frames_per_flush, 3),
            "loop_lag_ewma_ms": round(self.loop_lag_ewma_ms, 4),
            "loop_lag_max_ms": round(self.loop_lag_max_ms, 3),
            "max_queue_bytes": self.max_queue_bytes,
            "queued_bytes": self.queued_bytes,
            "connections": self.connections,
            "auto_batches": self.auto_batches,
            "auto_batched_msgs": self.auto_batched_msgs,
            "auto_batch_per_frame": {
                str(k): v for k, v in sorted(self.auto_batch_per_frame.items())
            },
            "inline_dispatches": self.inline_dispatches,
            "inline_overruns": self.inline_overruns,
            "inline_demotions": self.inline_demotions,
        }


class ReactorMetrics:
    """Thread-safe counters shared by every loop of one reactor."""

    _LAG_ALPHA = 0.1

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flushes = 0
        self._frames_sent = 0
        self._flush_hist: dict[int, int] = {}
        self._lag_ewma_s = 0.0
        self._lag_max_s = 0.0
        self._lag_samples = 0
        self._max_queue_bytes = 0

    def note_flush(self, frames: int) -> None:
        """One coalesced ``send`` carried ``frames`` queued frames."""
        if frames <= 0:
            return
        bucket = _bucket(frames)
        with self._lock:
            self._flushes += 1
            self._frames_sent += frames
            self._flush_hist[bucket] = self._flush_hist.get(bucket, 0) + 1

    def note_loop_lag(self, lag_s: float) -> None:
        """One event round kept the loop busy for ``lag_s`` seconds."""
        with self._lock:
            self._lag_samples += 1
            if lag_s > self._lag_max_s:
                self._lag_max_s = lag_s
            if self._lag_samples == 1:
                self._lag_ewma_s = lag_s
            else:
                alpha = self._LAG_ALPHA
                self._lag_ewma_s = (1 - alpha) * self._lag_ewma_s + alpha * lag_s

    def note_queue_depth(self, nbytes: int) -> None:
        """A connection's write queue reached ``nbytes`` queued bytes."""
        # Unlocked peek is benign (monotonic high-water mark); the locked
        # re-check keeps the update itself race-free.
        if nbytes <= self._max_queue_bytes:
            return
        with self._lock:
            if nbytes > self._max_queue_bytes:
                self._max_queue_bytes = nbytes

    def snapshot(self, queued_bytes: int, connections: int) -> DataPlaneStats:
        with self._lock:
            flushes = self._flushes
            frames = self._frames_sent
            hist = dict(self._flush_hist)
            lag_ewma = self._lag_ewma_s
            lag_max = self._lag_max_s
            max_queue = self._max_queue_bytes
        return DataPlaneStats(
            frames_sent=frames,
            flushes=flushes,
            frames_per_flush=hist,
            mean_frames_per_flush=(frames / flushes) if flushes else 0.0,
            loop_lag_ewma_ms=lag_ewma * 1000.0,
            loop_lag_max_ms=lag_max * 1000.0,
            max_queue_bytes=max_queue,
            queued_bytes=queued_bytes,
            connections=connections,
        )


class Connection:
    """One non-blocking socket owned by a reactor loop.

    Public surface (any thread): :meth:`send`, :meth:`close`,
    :meth:`queued_bytes`.  Everything ``_``-prefixed runs on the owning
    loop thread only.
    """

    def __init__(self, loop: "_Loop", sock: socket.socket,
                 on_frame: FrameCallback, on_closed: ClosedCallback, *,
                 max_frame: int,
                 coalesce_max_bytes: int,
                 coalesce_max_delay_s: float,
                 bytes_per_s: float | None,
                 metrics: ReactorMetrics) -> None:
        self._loop = loop
        self._sock = sock
        self._on_frame = on_frame
        self._on_closed = on_closed
        self._max_frame = max_frame
        self._coalesce_max_bytes = coalesce_max_bytes
        self._coalesce_max_delay_s = coalesce_max_delay_s
        self._bytes_per_s = bytes_per_s
        self._metrics = metrics
        # Write side: guarded by ``self._lock``; socket syscalls always
        # happen outside it (the loop thread, or a sender holding the
        # direct-write right — see ``_writing``).
        self._lock = threading.Lock()
        self._out: deque[bytes | list[bytes | memoryview]] = deque()
        self._out_bytes = 0
        self._flush_at: float | None = None
        self._closed = False            # no further send() accepted
        self._writing = False           # a sender owns the socket right now
        self._registered = False
        # Read side: loop thread only.
        self._in = bytearray()
        self._rx_ready_at = 0.0         # bandwidth-emulation clock
        self._dead = False              # torn down
        self._write_interest = False
        sock.setblocking(False)

    # -- public (thread-safe) -------------------------------------------------

    def send(self, payload: bytes | list[bytes | memoryview]) -> None:
        """Queue one encoded frame for transmission; never blocks.

        ``payload`` is one frame: a contiguous buffer, or an ordered
        buffer list that reaches the wire through a single gather write
        (``sendmsg``) without ever being joined.

        Raises :class:`ConnectionError` when the connection has been
        closed — the payload then provably never touched the wire (the
        frame either completed or the connection is dead; a partial
        direct write only happens on a connection that is torn down
        before the remainder could ever be dispatched).  Once this
        returns normally, the frame is owned by the reactor and will be
        written unless the connection dies first.

        Fast path: with an empty queue, no coalescing delay configured,
        and no other sender mid-write, the frame goes out right here
        with one non-blocking ``send`` — no loop handoff, no wake
        syscall.  The loop takes over only for contention, coalescing,
        or backpressure.
        """
        if isinstance(payload, bytes):
            nbytes = len(payload)
        else:
            nbytes = 0
            for chunk in payload:
                nbytes += len(chunk)
        with self._lock:
            if self._closed:
                raise ConnectionError("connection is closed")
            direct = (self._registered and not self._writing
                      and not self._out
                      and self._coalesce_max_delay_s <= 0.0)
            if direct:
                self._writing = True
            else:
                self._out.append(payload)
                self._out_bytes += nbytes
                depth = self._out_bytes
                urgent = (self._coalesce_max_delay_s <= 0.0
                          or depth >= self._coalesce_max_bytes)
                if not urgent and self._flush_at is None:
                    self._flush_at = (time.monotonic()
                                      + self._coalesce_max_delay_s)
        if direct:
            self._direct_send(payload, nbytes)
            return
        self._metrics.note_queue_depth(depth)
        self._loop._mark_dirty(self, urgent)

    def _direct_send(self, payload: bytes | list[bytes | memoryview],
                     nbytes: int) -> None:
        # The caller holds the direct-write right (``_writing``); the
        # loop's flush path yields while it is set, so this is the only
        # thread touching the socket's send side.
        chunks: list[bytes | memoryview]
        chunks = [payload] if isinstance(payload, bytes) else payload
        try:
            sent = _send_gather(self._sock, chunks)
        except (BlockingIOError, InterruptedError):
            sent = 0
        except (ConnectionError, OSError) as exc:
            with self._lock:
                self._writing = False
                self._closed = True
            self._loop._request_close(self, graceful=False)
            raise ConnectionError(f"send failed: {exc}") from exc
        if sent:
            self._metrics.note_flush(1)
        if sent < nbytes:
            rest = _remainder(chunks, sent)
            with self._lock:
                self._writing = False
                self._out.appendleft(rest)
                self._out_bytes += nbytes - sent
                depth = self._out_bytes
            self._metrics.note_queue_depth(depth)
            self._loop._mark_dirty(self, urgent=True)
            return
        with self._lock:
            self._writing = False
            queued = bool(self._out)
        if queued:
            # Frames piled up behind us while we held the socket; the
            # loop may already have consumed their wake and yielded to
            # us, so re-arm it.
            self._loop._mark_dirty(self, urgent=True)

    def close(self, graceful: bool = True) -> None:
        """Close the connection; idempotent, never blocks.

        ``graceful`` drains already-queued writes (bounded best-effort)
        before the socket closes, so a reply enqueued just before
        shutdown is not lost; ``graceful=False`` severs immediately.
        ``on_closed`` fires once the loop completes the teardown.
        """
        with self._lock:
            if self._closed:
                already = self._dead
            else:
                already = False
            self._closed = True
        if already:
            return
        self._loop._request_close(self, graceful)

    def queued_bytes(self) -> int:
        """Bytes currently waiting in the write queue (diagnostics)."""
        with self._lock:
            return self._out_bytes

    # -- read path (loop thread only) -----------------------------------------

    def _handle_readable(self) -> None:
        while not self._dead:
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                return
            except (ConnectionError, OSError) as exc:
                self._teardown(exc)
                return
            if not chunk:
                self._teardown(None)  # orderly EOF
                return
            self._in += chunk
            self._parse_frames()
            if len(chunk) < _RECV_CHUNK:
                return  # socket drained for now

    def _parse_frames(self) -> None:
        buf = self._in
        header = HEADER.size
        offset = 0
        while not self._dead:
            if len(buf) - offset < header:
                break
            (word,) = HEADER.unpack_from(buf, offset)
            ident = word >> CODEC_SHIFT
            length = word & LENGTH_MASK
            if length > self._max_frame:
                if offset:
                    del buf[:offset]
                self._teardown(FrameError(
                    f"incoming frame too large: {length} bytes"
                ))
                return
            if len(buf) - offset < header + length:
                break
            body = bytes(buf[offset + header:offset + header + length])
            offset += header + length
            self._accept_frame(ident, body, header + length)
        if offset:
            del buf[:offset]

    def _accept_frame(self, ident: int, body: bytes, wire: int) -> None:
        if self._bytes_per_s is None:
            self._deliver(ident, body, wire)
            return
        # Emulated link bandwidth (tc-netem style): deliver when a link
        # of this rate would have finished transmitting the frame, with
        # per-connection serialization exactly like one physical wire.
        now = time.monotonic()
        ready_at = max(now, self._rx_ready_at) + wire / self._bytes_per_s
        self._rx_ready_at = ready_at
        self._loop._defer(ready_at, self, ident, body, wire)

    def _deliver(self, ident: int, body: bytes, wire: int) -> None:
        try:
            self._on_frame(ident, body, wire)
        except Exception as exc:
            self._teardown(exc)

    # -- write path (loop thread only) ----------------------------------------

    def _flush_due(self, now: float) -> bool:
        with self._lock:
            if not self._out:
                return False
            if self._coalesce_max_delay_s <= 0.0:
                return True
            if self._out_bytes >= self._coalesce_max_bytes:
                return True
            return self._flush_at is not None and now >= self._flush_at

    def _pending_flush_at(self) -> float | None:
        with self._lock:
            return self._flush_at if self._out else None

    def _handle_flush(self) -> None:
        """Write queued bytes until drained or the socket pushes back."""
        while not self._dead:
            with self._lock:
                if self._writing:
                    # A direct writer owns the socket; it re-marks this
                    # connection dirty on exit if frames queued behind it.
                    return
                if not self._out:
                    self._flush_at = None
                    break
                chunks: list[bytes | memoryview] = []
                frames = 0
                total = 0
                while (self._out and total < _SEND_CAP
                       and len(chunks) < _IOV_CAP):
                    item = self._out.popleft()
                    if isinstance(item, bytes):
                        chunks.append(item)
                        total += len(item)
                    else:
                        for chunk in item:
                            chunks.append(chunk)
                            total += len(chunk)
                    frames += 1
                self._out_bytes -= total
            try:
                sent = _send_gather(self._sock, chunks)
            except (BlockingIOError, InterruptedError):
                sent = 0
            except (ConnectionError, OSError) as exc:
                self._teardown(exc)
                return
            if sent:
                self._metrics.note_flush(frames)
            if sent < total:
                # Backpressure: keep the remainder at the queue head and
                # let EVENT_WRITE drive the rest out.  Disarm the flush
                # deadline — retrying before the socket drains would just
                # spin; writability is now the only useful signal.
                rest = _remainder(chunks, sent)
                with self._lock:
                    self._out.appendleft(rest)
                    self._out_bytes += total - sent
                    self._flush_at = None
                self._set_write_interest(True)
                return
        self._set_write_interest(False)

    def _set_write_interest(self, wanted: bool) -> None:
        if self._dead or not self._registered or wanted == self._write_interest:
            return
        events = selectors.EVENT_READ
        if wanted:
            events |= selectors.EVENT_WRITE
        try:
            self._loop._selector.modify(self._sock, events, self)
            self._write_interest = wanted
        except (KeyError, ValueError, OSError):
            pass

    # -- teardown (loop thread only) ------------------------------------------

    def _drain_blocking(self) -> None:
        """Best-effort bounded drain of queued writes (teardown path)."""
        with self._lock:
            if self._writing:
                return  # a direct writer owns the socket; don't interleave
            queued = list(self._out)
            self._out.clear()
            self._out_bytes = 0
        if not queued:
            return
        flat: list[bytes | memoryview] = []
        for item in queued:
            if isinstance(item, bytes):
                flat.append(item)
            else:
                flat.extend(item)
        try:
            self._sock.settimeout(_DRAIN_TIMEOUT_S)
            self._sock.sendall(b"".join(flat))
        except OSError:
            pass

    def _teardown(self, reason: Exception | None) -> None:
        if self._dead:
            return
        self._dead = True
        with self._lock:
            self._closed = True
            self._out.clear()
            self._out_bytes = 0
        self._loop._forget(self)
        try:
            self._sock.close()
        except OSError:
            pass
        try:
            self._on_closed(reason)
        except Exception:
            pass  # a close callback must never kill the loop


class Listener:
    """A listening socket whose ``accept`` runs on the reactor loop."""

    def __init__(self, loop: "_Loop", sock: socket.socket,
                 on_accept: AcceptCallback) -> None:
        self._loop = loop
        self._sock = sock
        self._on_accept = on_accept
        self._dead = False
        sock.setblocking(False)

    def close(self) -> None:
        """Stop accepting and close the listening socket; idempotent.

        Waits briefly for the loop to release the port so a caller can
        rebind it; falls back to an inline close when the loop is gone.
        """
        if self._dead:
            return
        if not self._loop.alive:
            self._close_now()
            return
        done = threading.Event()

        def _task() -> None:
            self._loop._close_listener(self)
            done.set()

        self._loop._call_soon(_task)
        if threading.current_thread() is not self._loop.thread:
            done.wait(timeout=1.0)

    def _close_now(self) -> None:
        self._dead = True
        try:
            self._sock.close()
        except OSError:
            pass

    def _handle_readable(self) -> None:  # loop thread only
        while not self._dead:
            try:
                sock, _addr = self._sock.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._loop._close_listener(self)
                return
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # non-TCP sockets (tests use socketpairs)
            try:
                self._on_accept(sock)
            except Exception:
                try:
                    sock.close()
                except OSError:
                    pass


#: A bandwidth-deferred frame: (ready_at, seq, connection, codec, body, wire).
_Deferred = tuple[float, int, Connection, int, bytes, int]


class _Loop:
    """One selector thread; owns a disjoint subset of the reactor's FDs."""

    def __init__(self, name: str, metrics: ReactorMetrics) -> None:
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._wake_pending = False
        self._tasks: deque[Callable[[], None]] = deque()
        self._dirty: set[Connection] = set()
        self._closing = False
        # Loop-thread-only state.
        self._timed: set[Connection] = set()
        self._deferred: list[_Deferred] = []
        self._defer_seq = 0
        # Shared rosters (guarded by self._lock; mutated on the loop).
        self._conns: set[Connection] = set()
        self._listeners: set[Listener] = set()
        self.thread = threading.Thread(target=self._run, name=name, daemon=True)
        self.thread.start()

    @property
    def alive(self) -> bool:
        return self.thread.is_alive()

    # -- cross-thread entry points --------------------------------------------

    def _call_soon(self, fn: Callable[[], None]) -> None:
        with self._lock:
            self._tasks.append(fn)
            wake = not self._wake_pending
            if wake:
                self._wake_pending = True
        if wake:
            self._wake()

    def _mark_dirty(self, conn: Connection, urgent: bool) -> None:
        with self._lock:
            new = conn not in self._dirty
            if new:
                self._dirty.add(conn)
            wake = (new or urgent) and not self._wake_pending
            if wake:
                self._wake_pending = True
        if wake:
            self._wake()

    def _request_close(self, conn: Connection, graceful: bool) -> None:
        if not self.alive:
            conn._teardown(None)  # loop gone: no concurrent owner remains
            return
        self._call_soon(lambda: self._finish_close(conn, graceful))

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass

    def close(self) -> None:
        with self._lock:
            if self._closing:
                wake = False
            else:
                self._closing = True
                wake = not self._wake_pending
                if wake:
                    self._wake_pending = True
        if wake:
            self._wake()
        if threading.current_thread() is not self.thread:
            self.thread.join(timeout=5.0)

    # -- loop internals (loop thread only) ------------------------------------

    def _attach(self, conn: Connection) -> None:
        if self._closing or conn._dead:
            conn._teardown(ConnectionError("reactor is closed")
                           if self._closing else None)
            return
        with self._lock:
            self._conns.add(conn)
        try:
            self._selector.register(conn._sock, selectors.EVENT_READ, conn)
            with conn._lock:
                conn._registered = True
        except (KeyError, ValueError, OSError) as exc:
            conn._teardown(ConnectionError(f"cannot register socket: {exc}"))

    def _attach_listener(self, listener: Listener) -> None:
        if self._closing or listener._dead:
            listener._close_now()
            return
        with self._lock:
            self._listeners.add(listener)
        try:
            self._selector.register(
                listener._sock, selectors.EVENT_READ, listener
            )
        except (KeyError, ValueError, OSError):
            self._close_listener(listener)

    def _forget(self, conn: Connection) -> None:
        with self._lock:
            self._conns.discard(conn)
            self._dirty.discard(conn)
        self._timed.discard(conn)
        if conn._registered:
            with conn._lock:
                conn._registered = False
            try:
                self._selector.unregister(conn._sock)
            except (KeyError, ValueError, OSError):
                pass

    def _finish_close(self, conn: Connection, graceful: bool) -> None:
        if conn._dead:
            return
        if graceful:
            conn._drain_blocking()
        conn._teardown(None)

    def _close_listener(self, listener: Listener) -> None:
        if listener._dead:
            return
        listener._dead = True
        with self._lock:
            self._listeners.discard(listener)
        try:
            self._selector.unregister(listener._sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            listener._sock.close()
        except OSError:
            pass

    def _defer(self, ready_at: float, conn: Connection, ident: int,
               body: bytes, wire: int) -> None:
        self._defer_seq += 1
        heapq.heappush(
            self._deferred, (ready_at, self._defer_seq, conn, ident, body, wire)
        )

    def _drain_wake(self) -> None:
        while True:
            try:
                if not self._wake_r.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return

    def _next_timeout(self) -> float | None:
        candidates: list[float] = []
        for conn in self._timed:
            flush_at = conn._pending_flush_at()
            if flush_at is not None:
                candidates.append(flush_at)
        if self._deferred:
            candidates.append(self._deferred[0][0])
        if not candidates:
            return None
        return max(0.0, min(candidates) - time.monotonic())

    def _deliver_deferred(self, now: float) -> None:
        while self._deferred and self._deferred[0][0] <= now:
            _at, _seq, conn, ident, body, wire = heapq.heappop(self._deferred)
            if not conn._dead:
                conn._deliver(ident, body, wire)

    def _flush_round(self, dirty: list[Connection], now: float) -> None:
        pending = set(dirty)
        pending.update(self._timed)
        self._timed.clear()
        for conn in pending:
            if conn._dead:
                continue
            if conn._flush_due(now):
                conn._handle_flush()
            if not conn._dead and conn._pending_flush_at() is not None:
                self._timed.add(conn)  # deadline still armed: keep a timer

    def _run(self) -> None:
        while True:
            timeout = self._next_timeout()
            try:
                events = self._selector.select(timeout)
            except OSError:
                events = []
            started = time.monotonic()
            # Drain the wake pipe BEFORE resetting the pending flag: this
            # preserves the invariant "flag set => a byte is still in the
            # pipe", so a wake sent between the drain and the snapshot
            # either lands in this round's snapshot (same lock) or leaves
            # its byte for the next select.  Draining after the reset
            # could swallow a byte whose work missed the snapshot — a
            # lost wakeup that leaves frames queued forever.  Only drain
            # when the selector actually reported the pipe readable: a
            # round woken purely by socket traffic has no byte to read,
            # and the speculative recv is a wasted syscall on every such
            # round.  An undrained byte can only over-wake (the next
            # select returns immediately once), never under-wake.
            if any(key.data is None for key, _mask in events):
                self._drain_wake()
            with self._lock:
                self._wake_pending = False
                tasks = list(self._tasks)
                self._tasks.clear()
                dirty = list(self._dirty)
                self._dirty.clear()
                closing = self._closing
            for fn in tasks:
                fn()
            for key, mask in events:
                target = key.data
                if target is None:
                    continue  # the wake pipe
                if isinstance(target, Listener):
                    if not target._dead:
                        target._handle_readable()
                    continue
                if target._dead:
                    continue
                if mask & selectors.EVENT_WRITE:
                    target._handle_flush()
                if mask & selectors.EVENT_READ and not target._dead:
                    target._handle_readable()
            now = time.monotonic()
            self._deliver_deferred(now)
            self._flush_round(dirty, now)
            if closing:
                self._finalize()
                return
            self._metrics.note_loop_lag(time.monotonic() - started)

    def _finalize(self) -> None:
        with self._lock:
            conns = list(self._conns)
            listeners = list(self._listeners)
        for listener in listeners:
            self._close_listener(listener)
        for conn in conns:
            if not conn._dead:
                conn._drain_blocking()
                conn._teardown(None)
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass

    def _queue_census(self) -> tuple[int, int]:
        """(queued write bytes, connection count) across this loop."""
        with self._lock:
            conns = list(self._conns)
        return sum(conn.queued_bytes() for conn in conns), len(conns)


class Reactor:
    """A pool of selector loops plus the knobs that shape coalescing.

    ``threads`` sizes the loop pool (connections are spread round-robin;
    one loop is right for almost every deployment — a loop saturating a
    core is the signal to add another).  ``coalesce_max_bytes`` /
    ``coalesce_max_delay_s`` set the flush watermarks described in the
    module docstring.
    """

    def __init__(self, threads: int = 1, *, max_frame: int,
                 coalesce_max_bytes: int = DEFAULT_COALESCE_MAX_BYTES,
                 coalesce_max_delay_s: float = 0.0,
                 name: str = "reactor") -> None:
        if threads <= 0:
            raise ValueError(f"reactor needs at least one thread: {threads}")
        if max_frame <= 0:
            raise ValueError(f"max_frame must be positive: {max_frame}")
        if coalesce_max_bytes <= 0:
            raise ValueError(
                f"coalesce_max_bytes must be positive: {coalesce_max_bytes}"
            )
        if coalesce_max_delay_s < 0:
            raise ValueError(
                f"coalesce_max_delay_s cannot be negative: {coalesce_max_delay_s}"
            )
        self._max_frame = max_frame
        self._coalesce_max_bytes = coalesce_max_bytes
        self._coalesce_max_delay_s = coalesce_max_delay_s
        self._metrics = ReactorMetrics()
        self._loops = [
            _Loop(f"{name}-loop-{i}", self._metrics) for i in range(threads)
        ]
        self._pick_lock = threading.Lock()
        self._next_loop = 0
        self._closed = False

    def _pick_loop(self) -> _Loop:
        with self._pick_lock:
            loop = self._loops[self._next_loop % len(self._loops)]
            self._next_loop += 1
        return loop

    def add_connection(self, sock: socket.socket, on_frame: FrameCallback,
                       on_closed: ClosedCallback, *,
                       bytes_per_s: float | None = None) -> Connection:
        """Adopt ``sock``; frames flow through the callbacks immediately.

        The returned connection accepts :meth:`Connection.send` at once
        (writes queue until the loop registers the socket, preserving
        order).  ``bytes_per_s`` enables bandwidth-emulated delivery.
        """
        loop = self._pick_loop()
        conn = Connection(
            loop, sock, on_frame, on_closed,
            max_frame=self._max_frame,
            coalesce_max_bytes=self._coalesce_max_bytes,
            coalesce_max_delay_s=self._coalesce_max_delay_s,
            bytes_per_s=bytes_per_s,
            metrics=self._metrics,
        )
        loop._call_soon(lambda: loop._attach(conn))
        return conn

    def add_listener(self, sock: socket.socket,
                     on_accept: AcceptCallback) -> Listener:
        """Adopt a bound+listening ``sock``; accepts run on a loop."""
        loop = self._pick_loop()
        listener = Listener(loop, sock, on_accept)
        loop._call_soon(lambda: loop._attach_listener(listener))
        return listener

    def metrics(self) -> DataPlaneStats:
        """Snapshot flush batching, loop lag, and queue depths."""
        queued = 0
        connections = 0
        for loop in self._loops:
            loop_queued, loop_conns = loop._queue_census()
            queued += loop_queued
            connections += loop_conns
        return self._metrics.snapshot(
            queued_bytes=queued, connections=connections
        )

    def close(self) -> None:
        """Stop every loop, draining queued writes; idempotent."""
        if self._closed:
            return
        self._closed = True
        for loop in self._loops:
            loop.close()
