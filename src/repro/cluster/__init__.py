"""Cluster harness: nodes, bring-up, discovery, load modelling/balancing."""

from repro.cluster.cluster import Cluster
from repro.cluster.discovery import DiscoveryService, Membership
from repro.cluster.load import (
    LoadBalancer,
    LoadMonitor,
    OscillatingProfile,
    RampProfile,
)
from repro.cluster.node import Node

__all__ = [
    "Cluster",
    "DiscoveryService",
    "Membership",
    "LoadBalancer",
    "LoadMonitor",
    "Node",
    "OscillatingProfile",
    "RampProfile",
]
