"""Cluster harness: nodes, bring-up, discovery, and load modelling."""

from repro.cluster.cluster import Cluster
from repro.cluster.discovery import DiscoveryService
from repro.cluster.load import LoadMonitor, OscillatingProfile, RampProfile
from repro.cluster.node import Node

__all__ = [
    "Cluster",
    "DiscoveryService",
    "LoadMonitor",
    "Node",
    "OscillatingProfile",
    "RampProfile",
]
