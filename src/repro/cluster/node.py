"""A node: one namespace plus its operational trimmings.

:class:`~repro.runtime.namespace.Namespace` is the pure runtime;
:class:`Node` adds what a deployed MAGE host carries — a load monitor
answering LOAD_QUERY, a discovery service, an attached agent manager —
and the ``with node.activate():`` sugar that makes the paper's
runtime-implicit code read naturally.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.discovery import Membership
from repro.cluster.load import LoadMonitor
from repro.core.agents import AgentManager, agent_manager_for
from repro.core.context import use_runtime
from repro.net.transport import Transport
from repro.runtime.namespace import Namespace


class Node:
    """One MAGE host: namespace + load monitor + discovery + agents."""

    def __init__(
        self,
        node_id: str,
        transport: Transport,
        fair_locks: bool = False,
        class_cache: bool = True,
        path_collapsing: bool = True,
        always_ship_class: bool = False,
        probe_classes: bool = False,
        stream_threshold: int | None = None,
        chunk_bytes: int | None = None,
        initial_load: float = 0.0,
    ) -> None:
        self.load_monitor = LoadMonitor(initial_load)
        self.namespace = Namespace(
            node_id,
            transport,
            fair_locks=fair_locks,
            class_cache=class_cache,
            path_collapsing=path_collapsing,
            always_ship_class=always_ship_class,
            probe_classes=probe_classes,
            stream_threshold=stream_threshold,
            chunk_bytes=chunk_bytes,
            load_provider=self.load_monitor.get_load,
        )
        #: Membership service: discovery queries, seed-list join, and the
        #: heartbeat failure detector (opt-in via ``start_heartbeat``).
        #: ``discovery`` is the same object under its historical name.
        self.membership = Membership(self.namespace)
        self.discovery = self.membership
        self.agents: AgentManager = agent_manager_for(self.namespace)

    # -- identity ------------------------------------------------------------

    @property
    def node_id(self) -> str:
        return self.namespace.node_id

    def activate(self):
        """Make this node the ambient runtime: ``with node.activate(): …``"""
        return use_runtime(self.namespace)

    # -- convenience delegation to the namespace -------------------------------

    def register(self, name: str, obj: Any, shared: bool = True,
                 pinned: bool = False):
        """Host ``obj`` here under ``name`` (see :meth:`Namespace.register`)."""
        return self.namespace.register(name, obj, shared=shared, pinned=pinned)

    def register_class(self, cls: type):
        """Publish a class definition this node can serve."""
        return self.namespace.register_class(cls)

    def find(self, name: str, origin_hint: str | None = None,
             verify: bool = True, candidates=None) -> str:
        """Node id currently hosting ``name``."""
        return self.namespace.find(name, origin_hint, verify=verify,
                                   candidates=candidates)

    def stub(self, name: str, location: str | None = None):
        """A live proxy for ``name``."""
        return self.namespace.stub(name, location)

    def move(self, name: str, target: str, origin_hint: str | None = None,
             hedge: bool = False, alternates=()) -> str:
        """Weakly migrate ``name`` to ``target`` (see :meth:`Namespace.move`)."""
        return self.namespace.move(name, target, origin_hint,
                                   hedge=hedge, alternates=alternates)

    def set_load(self, value: float) -> None:
        """Pin this host's advertised load (examples, tests, benches)."""
        self.load_monitor.set_load(value)

    def join(self, seed: str, seed_endpoint=None) -> list[str]:
        """Join a cluster through ``seed`` (see :meth:`Membership.join`)."""
        return self.membership.join(seed, seed_endpoint)

    def shutdown(self) -> None:
        """Detach this node from the transport."""
        self.membership.stop()
        self.namespace.shutdown()

    def __repr__(self) -> str:
        return f"Node({self.node_id!r})"
