"""Membership: host discovery, address-book propagation, and liveness.

The introduction requires distributed systems to "support host and
resource discovery, incorporate new hardware and robustly cope with
changing network conditions".  For a single process that reduced to
asking the transport which nodes are registered; spanning real machines
needs three more things, which this service provides:

* **Seed-list join** — a newcomer dials one known member
  (:meth:`Membership.join`), presents its own endpoint, and receives the
  seed's roster (``node_id -> endpoint``) in return; both sides merge
  into their transports' address books.
* **JOIN/ANNOUNCE propagation** — the seed pushes the updated roster to
  the other members it knows, so one join teaches the whole cluster the
  newcomer's address.  Merging is idempotent and last-write-wins per
  node: a peer re-joining from a *new* endpoint replaces its stale entry
  everywhere (and stale connections are severed by the transport).
* **Heartbeat failure detection** — a periodic PING sweep
  (:meth:`Membership.heartbeat_once`, optionally on a background thread
  via :meth:`Membership.start_heartbeat`); ``suspect_after`` consecutive
  misses declare a host **dead**.  The verdict feeds everything that
  routes work: dead hosts drop out of :meth:`hosts`/:meth:`peers` (so a
  :class:`~repro.cluster.load.LoadBalancer` given this membership never
  picks one as a migration target), their forwarding hints are evicted
  from the local registry, and the transport prunes their per-peer state
  (latency EWMAs, codec advertisements, address-book entry, channels).

Nothing here runs unless asked: with no joins and no heartbeat the
service answers exactly like the PR-4 ``DiscoveryService`` it grew from
— ``hosts()`` is the transport's node list — which keeps every
simulated-network trace byte-identical.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.cluster.load import least_loaded
from repro.errors import MageError, TransportError
from repro.net.deadline import Deadline
from repro.net.endpoint import Endpoint
from repro.net.message import MessageKind
from repro.net.transport import gather
from repro.rmi.protocol import AnnouncePayload, JoinRequest
from repro.runtime.namespace import Namespace


class Membership:
    """Cluster membership as seen from (and served by) one namespace.

    Every query sweep takes one optional
    :class:`~repro.net.deadline.Deadline` for the *whole* fan-out:
    membership answers are only useful fresh, so a sweep should spend
    one bounded window total — not one io timeout per unresponsive host
    — and probes still pending at expiry are cancelled.
    """

    def __init__(self, namespace: Namespace,
                 heartbeat_interval_s: float = 1.0,
                 heartbeat_timeout_ms: float = 750.0,
                 suspect_after: int = 3,
                 announce_timeout_ms: float = 2000.0) -> None:
        if suspect_after < 1:
            raise MageError(f"suspect_after must be >= 1, got {suspect_after}")
        self.ns = namespace
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_ms = heartbeat_timeout_ms
        self.suspect_after = suspect_after
        self.announce_timeout_ms = announce_timeout_ms
        self._lock = threading.Lock()
        #: Members learned via JOIN/ANNOUNCE (beyond the transport's own
        #: node list): ``node_id -> (host, port[, uds]) | None``.  The
        #: roster spelling stays a plain tuple so builds predating the
        #: Unix-socket facet read it unchanged.
        self._members: dict[str, tuple | None] = {}
        self._dead: set[str] = set()
        self._misses: dict[str, int] = {}
        self._death_callbacks: list[Callable[[str], None]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        external = getattr(namespace, "external", None)
        if external is not None and hasattr(external,
                                            "install_membership_handlers"):
            external.install_membership_handlers(self.handle_join,
                                                 self.handle_announce)

    # -- membership queries ---------------------------------------------------

    def hosts(self) -> list[str]:
        """Every member this namespace currently believes alive (sorted).

        The transport's node list (local nodes plus address-book peers)
        merged with members learned via JOIN/ANNOUNCE, minus hosts the
        heartbeat declared dead.
        """
        with self._lock:
            learned = set(self._members)
            dead = set(self._dead)
        return sorted((set(self.ns.transport.nodes()) | learned) - dead)

    def peers(self) -> list[str]:
        """Every live member except this one."""
        return [n for n in self.hosts() if n != self.ns.node_id]

    def is_alive(self, node_id: str,
                 deadline: Deadline | None = None) -> bool:
        """Liveness probe: a PING answered within the retry budget
        (and within ``deadline``, when one is given)."""
        try:
            return self.ns.server.ping(node_id, deadline=deadline)
        except (TransportError, MageError):
            return False

    def alive_peers(self, deadline: Deadline | None = None) -> list[str]:
        """Peers that answer a PING right now (one parallel sweep,
        one shared deadline)."""
        answers = self.ns.server.ping_many(self.peers(), deadline=deadline)
        return [n for n in self.peers() if answers.get(n)]

    def loads(self, candidates: list[str] | None = None,
              deadline: Deadline | None = None) -> dict[str, float]:
        """Current load of each candidate (default: all alive peers).

        A scatter-gather LOAD_QUERY sweep: a host that vanished mid-query
        simply drops out, and on the pipelined TCP transport N candidates
        cost one round-trip latency, not N.  With a ``deadline`` the ping
        and load sweeps share it (one budget for the whole decision).
        """
        nodes = candidates if candidates is not None else self.alive_peers(deadline)
        return self.ns.server.query_load_many(nodes, skip_unreachable=True,
                                              deadline=deadline)

    def least_loaded(self, candidates: list[str] | None = None,
                     deadline: Deadline | None = None) -> str:
        """The least-loaded candidate (ties broken by name).

        Raises :class:`MageError` when no candidate answered.
        """
        return least_loaded(self.loads(candidates, deadline=deadline))

    # -- join / announce ------------------------------------------------------

    def _my_endpoint(self) -> tuple | None:
        endpoint_of = getattr(self.ns.transport, "endpoint_of", None)
        if endpoint_of is None:
            return None
        endpoint = endpoint_of(self.ns.node_id)
        return endpoint.as_tuple() if endpoint is not None else None

    def roster(self) -> dict[str, tuple | None]:
        """This namespace's membership view: ``node_id -> endpoint``.

        What a JOIN reply and an ANNOUNCE carry.  Entries are plain
        tuples — ``(host, port)``, or ``(host, port, uds)`` when the
        node also listens on a same-host Unix socket — so the roster
        stays readable by builds that predate the facet.  Dead members
        are excluded — propagating a corpse's address would resurrect
        it in every address book the announcement reaches.
        """
        transport = self.ns.transport
        entries: dict[str, tuple | None] = {}
        for node in transport.nodes():
            endpoint = transport.endpoint_of(node)
            entries[node] = endpoint.as_tuple() if endpoint is not None else None
        with self._lock:
            for node, address in self._members.items():
                entries.setdefault(node, address)
            for node in self._dead:
                entries.pop(node, None)
        return entries

    def join(self, seed: str,
             seed_endpoint: Endpoint | tuple[str, int] | None = None,
             deadline: Deadline | None = None) -> list[str]:
        """Join the cluster through ``seed``; returns the learned hosts.

        ``seed_endpoint`` bootstraps the address book when the seed is in
        another process (the usual cross-host case: all a newcomer knows
        is one ``host:port`` from its seed list); omit it when the seed
        is already reachable.  The JOIN carries this node's own endpoint;
        the seed records it, answers with its roster, and announces the
        newcomer to the other members.
        """
        if seed_endpoint is not None:
            self.ns.transport.connect(seed, seed_endpoint)
        roster = self.ns.transport.call(
            self.ns.node_id, seed, MessageKind.JOIN,
            JoinRequest(node_id=self.ns.node_id, endpoint=self._my_endpoint()),
            deadline=deadline,
        )
        self._merge(roster)
        return self.hosts()

    def handle_join(self, request: JoinRequest) -> dict:
        """Seed side of JOIN: record the newcomer, announce, answer.

        The announce fan-out runs *before* the reply deliberately: when
        ``join`` returns, every reachable member already knows the
        newcomer — the deterministic guarantee the tests and operators
        lean on.  The price is that a hung (not yet declared dead)
        member can delay a join by up to ``announce_timeout_ms``; tune
        that knob down where join latency matters more than the
        synchronous-propagation guarantee.
        """
        others = [n for n in self.peers() if n != request.node_id]
        self._merge({request.node_id: request.endpoint})
        roster = self.roster()
        if others:
            # Teach the rest of the cluster the newcomer's address.  One
            # bounded fan-out, failures tolerated: a member that misses
            # the announcement still learns the address on first contact
            # or at the next join's roster push.
            deadline = Deadline.after_ms(self.announce_timeout_ms)
            futures = self.ns.server.scatter(
                others, MessageKind.ANNOUNCE, AnnouncePayload(members=roster),
                deadline=deadline,
            )
            gather(futures.values(), return_exceptions=True,
                   deadline=deadline, cancel_stragglers=True)
        return roster

    def handle_announce(self, payload: AnnouncePayload) -> bool:
        """Peer side of ANNOUNCE: merge the pushed roster."""
        self._merge(payload.members)
        return True

    def _merge(self, members: dict) -> None:
        """Fold a received roster into the local view (idempotent).

        New members join the address book; a *changed* endpoint replaces
        the stale entry (``Transport.connect`` severs connections built
        on the old address); a member previously declared dead is
        revived — a re-join is positive evidence of life.
        """
        for node, address in members.items():
            if node == self.ns.node_id:
                continue
            if address is not None:
                self.ns.transport.connect(node, Endpoint(*address))
            with self._lock:
                self._members[node] = address
                self._dead.discard(node)
                self._misses.pop(node, None)

    def leave(self, node_id: str) -> None:
        """Forget ``node_id`` entirely (clean departure, not death)."""
        with self._lock:
            self._members.pop(node_id, None)
            self._dead.discard(node_id)
            self._misses.pop(node_id, None)
        self.ns.transport.forget_peer(node_id)

    # -- heartbeat failure detection ------------------------------------------

    def heartbeat_once(self) -> dict[str, bool]:
        """One PING sweep over the live peers; returns ``{peer: answered}``.

        ``suspect_after`` consecutive misses declare a peer dead (see
        :meth:`declare_dead`).  Deterministic building block: tests and
        controllers can drive the detector without the background
        thread's timing.
        """
        peers = self.peers()
        if not peers:
            return {}
        answers = self.ns.server.ping_many(
            peers, deadline=Deadline.after_ms(self.heartbeat_timeout_ms)
        )
        for node, answered in answers.items():
            if answered:
                with self._lock:
                    self._misses.pop(node, None)
                continue
            with self._lock:
                misses = self._misses.get(node, 0) + 1
                self._misses[node] = misses
            if misses >= self.suspect_after:
                self.declare_dead(node)
        return answers

    def start_heartbeat(self, interval_s: float | None = None) -> None:
        """Run :meth:`heartbeat_once` periodically on a daemon thread."""
        if interval_s is not None:
            self.heartbeat_interval_s = interval_s
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"mage-heartbeat-{self.ns.node_id}", daemon=True,
            )
            self._thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval_s):
            try:
                self.heartbeat_once()
            except Exception:
                # A sweep that dies (transport torn down mid-shutdown)
                # must not kill the detector; the next tick retries.
                pass

    def stop(self) -> None:
        """Stop the heartbeat thread (idempotent; safe if never started)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._thread = None

    def declare_dead(self, node_id: str) -> None:
        """Record a failure verdict for ``node_id`` and act on it.

        The host leaves :meth:`hosts`/:meth:`peers` (so balancing never
        targets it), its forwarding hints are evicted from this
        namespace's registry, the transport prunes its per-peer state,
        and every :meth:`on_death` callback fires.  Idempotent; a later
        JOIN/ANNOUNCE naming the host revives it.
        """
        with self._lock:
            if node_id in self._dead:
                return
            self._dead.add(node_id)
            self._misses.pop(node_id, None)
            callbacks = list(self._death_callbacks)
        self.ns.transport.forget_peer(node_id)
        self.ns.registry.evict_hints(node_id)
        for callback in callbacks:
            try:
                callback(node_id)
            except Exception:
                pass  # one observer's bug must not mask the verdict

    def dead(self) -> set[str]:
        """Hosts the failure detector has declared dead."""
        with self._lock:
            return set(self._dead)

    def is_dead(self, node_id: str) -> bool:
        with self._lock:
            return node_id in self._dead

    def on_death(self, callback: Callable[[str], None]) -> None:
        """Register ``callback(node_id)`` to run on each death verdict."""
        with self._lock:
            self._death_callbacks.append(callback)


class DiscoveryService(Membership):
    """Backward-compatible name for :class:`Membership`.

    Earlier PRs exposed discovery-only queries under this name; the
    membership refactor grew it join/announce/heartbeat machinery
    without changing any existing method's behaviour.
    """
