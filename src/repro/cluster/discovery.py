"""Host discovery.

The introduction requires distributed systems to "support host and
resource discovery, incorporate new hardware and robustly cope with
changing network conditions".  This service answers: which namespaces
exist, which are alive, and where should work go — the primitive the
load-balancing policy and the examples' controllers build on.
"""

from __future__ import annotations

from repro.cluster.load import least_loaded
from repro.errors import MageError, TransportError
from repro.runtime.namespace import Namespace


class DiscoveryService:
    """Cluster-membership queries issued from one namespace."""

    def __init__(self, namespace: Namespace) -> None:
        self.ns = namespace

    def hosts(self) -> list[str]:
        """Every node currently registered with the transport (sorted)."""
        return self.ns.transport.nodes()

    def peers(self) -> list[str]:
        """Every node except this one."""
        return [n for n in self.hosts() if n != self.ns.node_id]

    def is_alive(self, node_id: str) -> bool:
        """Liveness probe: a PING answered within the retry budget."""
        try:
            return self.ns.server.ping(node_id)
        except (TransportError, MageError):
            return False

    def alive_peers(self) -> list[str]:
        """Peers that answer a PING right now (one parallel sweep)."""
        answers = self.ns.server.ping_many(self.peers())
        return [n for n in self.peers() if answers.get(n)]

    def loads(self, candidates: list[str] | None = None) -> dict[str, float]:
        """Current load of each candidate (default: all alive peers).

        A scatter-gather LOAD_QUERY sweep: a host that vanished mid-query
        simply drops out, and on the pipelined TCP transport N candidates
        cost one round-trip latency, not N.
        """
        nodes = candidates if candidates is not None else self.alive_peers()
        return self.ns.server.query_load_many(nodes, skip_unreachable=True)

    def least_loaded(self, candidates: list[str] | None = None) -> str:
        """The least-loaded candidate (ties broken by name).

        Raises :class:`MageError` when no candidate answered.
        """
        return least_loaded(self.loads(candidates))
