"""Host discovery.

The introduction requires distributed systems to "support host and
resource discovery, incorporate new hardware and robustly cope with
changing network conditions".  This service answers: which namespaces
exist, which are alive, and where should work go — the primitive the
load-balancing policy and the examples' controllers build on.
"""

from __future__ import annotations

from repro.cluster.load import least_loaded
from repro.errors import MageError, TransportError
from repro.net.deadline import Deadline
from repro.runtime.namespace import Namespace


class DiscoveryService:
    """Cluster-membership queries issued from one namespace.

    Every sweep takes one optional :class:`~repro.net.deadline.Deadline`
    for the *whole* fan-out: membership answers are only useful fresh, so
    a sweep should spend one bounded window total — not one io timeout
    per unresponsive host — and probes still pending at expiry are
    cancelled.
    """

    def __init__(self, namespace: Namespace) -> None:
        self.ns = namespace

    def hosts(self) -> list[str]:
        """Every node currently registered with the transport (sorted)."""
        return self.ns.transport.nodes()

    def peers(self) -> list[str]:
        """Every node except this one."""
        return [n for n in self.hosts() if n != self.ns.node_id]

    def is_alive(self, node_id: str,
                 deadline: Deadline | None = None) -> bool:
        """Liveness probe: a PING answered within the retry budget
        (and within ``deadline``, when one is given)."""
        try:
            return self.ns.server.ping(node_id, deadline=deadline)
        except (TransportError, MageError):
            return False

    def alive_peers(self, deadline: Deadline | None = None) -> list[str]:
        """Peers that answer a PING right now (one parallel sweep,
        one shared deadline)."""
        answers = self.ns.server.ping_many(self.peers(), deadline=deadline)
        return [n for n in self.peers() if answers.get(n)]

    def loads(self, candidates: list[str] | None = None,
              deadline: Deadline | None = None) -> dict[str, float]:
        """Current load of each candidate (default: all alive peers).

        A scatter-gather LOAD_QUERY sweep: a host that vanished mid-query
        simply drops out, and on the pipelined TCP transport N candidates
        cost one round-trip latency, not N.  With a ``deadline`` the ping
        and load sweeps share it (one budget for the whole decision).
        """
        nodes = candidates if candidates is not None else self.alive_peers(deadline)
        return self.ns.server.query_load_many(nodes, skip_unreachable=True,
                                              deadline=deadline)

    def least_loaded(self, candidates: list[str] | None = None,
                     deadline: Deadline | None = None) -> str:
        """The least-loaded candidate (ties broken by name).

        Raises :class:`MageError` when no candidate answered.
        """
        return least_loaded(self.loads(candidates, deadline=deadline))
