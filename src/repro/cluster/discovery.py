"""Host discovery.

The introduction requires distributed systems to "support host and
resource discovery, incorporate new hardware and robustly cope with
changing network conditions".  This service answers: which namespaces
exist, which are alive, and where should work go — the primitive the
load-balancing policy and the examples' controllers build on.
"""

from __future__ import annotations

from repro.errors import MageError, TransportError
from repro.runtime.namespace import Namespace


class DiscoveryService:
    """Cluster-membership queries issued from one namespace."""

    def __init__(self, namespace: Namespace) -> None:
        self.ns = namespace

    def hosts(self) -> list[str]:
        """Every node currently registered with the transport (sorted)."""
        return self.ns.transport.nodes()

    def peers(self) -> list[str]:
        """Every node except this one."""
        return [n for n in self.hosts() if n != self.ns.node_id]

    def is_alive(self, node_id: str) -> bool:
        """Liveness probe: a PING answered within the retry budget."""
        try:
            return self.ns.server.ping(node_id)
        except (TransportError, MageError):
            return False

    def alive_peers(self) -> list[str]:
        """Peers that answer a PING right now."""
        return [n for n in self.peers() if self.is_alive(n)]

    def loads(self, candidates: list[str] | None = None) -> dict[str, float]:
        """Current load of each candidate (default: all alive peers)."""
        nodes = candidates if candidates is not None else self.alive_peers()
        result: dict[str, float] = {}
        for node in nodes:
            try:
                result[node] = self.ns.query_load(node)
            except (TransportError, MageError):
                continue  # a host that vanished mid-query simply drops out
        return result

    def least_loaded(self, candidates: list[str] | None = None) -> str:
        """The least-loaded candidate (ties broken by name).

        Raises :class:`MageError` when no candidate answered.
        """
        loads = self.loads(candidates)
        if not loads:
            raise MageError("no candidate host answered a load query")
        return min(loads.items(), key=lambda item: (item[1], item[0]))[0]
