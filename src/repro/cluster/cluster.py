"""Cluster bring-up: N cooperating namespaces over one transport.

The paper's Figure 6 system — "Cooperating Java virtual machines comprise
MAGE; these JVMs layer a homogeneous and consistent programming
environment over the underlying heterogeneous network hardware" — reduced
to one call::

    with Cluster(["lab", "sensor1", "sensor2"]) as cluster:
        lab = cluster["lab"]
        ...

The default substrate is the deterministic simulated network; pass
``transport="tcp"`` to run the same topology over real loopback sockets.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.cluster.node import Node
from repro.net.conditions import LatencyModel, LossModel
from repro.net.deadline import Deadline
from repro.net.message import MessageKind
from repro.net.simnet import SimNetwork
from repro.net.tcpnet import TcpNetwork
from repro.net.trace import MessageTrace
from repro.net.transport import Transport, gather
from repro.util.clock import Clock


class Cluster:
    """A set of nodes sharing one transport, brought up and torn down together."""

    def __init__(
        self,
        node_ids: list[str] | tuple[str, ...],
        transport: str | Transport = "sim",
        latency: LatencyModel | None = None,
        loss: LossModel | None = None,
        clock: Clock | None = None,
        fair_locks: bool = False,
        class_cache: bool = True,
        path_collapsing: bool = True,
        always_ship_class: bool = False,
        probe_classes: bool = False,
        stream_threshold: int | None = None,
        chunk_bytes: int | None = None,
        synchronous_casts: bool = False,
    ) -> None:
        if not node_ids:
            raise ConfigurationError("a cluster needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise ConfigurationError(f"duplicate node ids: {sorted(node_ids)}")
        self.transport = self._build_transport(
            transport, latency, loss, clock, synchronous_casts
        )
        self._nodes: dict[str, Node] = {}
        for node_id in node_ids:
            self._nodes[node_id] = Node(
                node_id,
                self.transport,
                fair_locks=fair_locks,
                class_cache=class_cache,
                path_collapsing=path_collapsing,
                always_ship_class=always_ship_class,
                probe_classes=probe_classes,
                stream_threshold=stream_threshold,
                chunk_bytes=chunk_bytes,
            )

    @staticmethod
    def _build_transport(
        transport: str | Transport,
        latency: LatencyModel | None,
        loss: LossModel | None,
        clock: Clock | None,
        synchronous_casts: bool,
    ) -> Transport:
        if isinstance(transport, Transport):
            if latency is not None or loss is not None or clock is not None:
                raise ConfigurationError(
                    "pass latency/loss/clock to the transport you construct, "
                    "not to Cluster"
                )
            return transport
        if transport == "sim":
            return SimNetwork(
                clock=clock, latency=latency, loss=loss,
                synchronous_casts=synchronous_casts,
            )
        if transport == "tcp":
            if latency is not None or loss is not None:
                raise ConfigurationError(
                    "latency/loss models apply to the simulated network only"
                )
            return TcpNetwork(clock=clock)
        raise ConfigurationError(
            f"unknown transport {transport!r} (expected 'sim', 'tcp', or an instance)"
        )

    # -- access -------------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        """The named node; raises for unknown ids."""
        node = self._nodes.get(node_id)
        if node is None:
            raise ConfigurationError(
                f"no node {node_id!r} in cluster {sorted(self._nodes)}"
            )
        return node

    def __getitem__(self, node_id: str) -> Node:
        return self.node(node_id)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def node_ids(self) -> list[str]:
        """Node ids in creation order."""
        return list(self._nodes)

    @property
    def clock(self) -> Clock:
        return self.transport.clock

    @property
    def trace(self) -> MessageTrace:
        return self.transport.trace

    # -- orchestration ----------------------------------------------------------------

    def add_node(self, node_id: str, **node_kwargs) -> Node:
        """Grow the cluster ("systems joining", §1)."""
        if node_id in self._nodes:
            raise ConfigurationError(f"node {node_id!r} already exists")
        node = Node(node_id, self.transport, **node_kwargs)
        self._nodes[node_id] = node
        return node

    def quiesce(self, timeout_s: float = 30.0) -> None:
        """Wait for in-flight asynchronous work (agent tours) to settle."""
        if isinstance(self.transport, SimNetwork):
            self.transport.drain_casts(timeout_s)

    # -- scatter-gather fan-out ----------------------------------------------------

    def issuer(self, src: str | None = None) -> Node:
        """The node a cluster-wide operation is issued from.

        ``None`` picks the first node (creation order); shared by every
        fan-out helper and by :class:`~repro.cluster.load.LoadBalancer`,
        so the default-issuer rule lives in exactly one place.
        """
        if src is not None:
            return self.node(src)
        return next(iter(self._nodes.values()))

    def broadcast(
        self,
        kind: MessageKind,
        payload: Any = None,
        src: str | None = None,
        targets: Sequence[str] | None = None,
        return_exceptions: bool = False,
        deadline: Deadline | None = None,
    ) -> dict[str, Any]:
        """One request to every node, all round trips in flight at once.

        Scatters ``kind``/``payload`` from ``src`` (default: the first
        node) to ``targets`` (default: every node, the issuer included)
        and gathers ``{node: reply}``.  With ``return_exceptions=True`` a
        failed target maps to its exception instead of aborting the
        sweep; otherwise every future is still collected before the first
        failure re-raises, so no round trip is left dangling.

        One ``deadline`` bounds the *whole* fan-out (not one per node): a
        node that cannot answer in time contributes/raises
        :class:`~repro.errors.CallTimeoutError` and its probe is
        cancelled rather than left consuming io-timeout.
        """
        issuer = self.issuer(src)
        ids = list(targets) if targets is not None else self.node_ids()
        futures = issuer.namespace.server.scatter(ids, kind, payload,
                                                  deadline=deadline)
        outcomes = dict(zip(futures, gather(
            futures.values(), return_exceptions=True, deadline=deadline,
            cancel_stragglers=deadline is not None,
        )))
        if not return_exceptions:
            for value in outcomes.values():
                if isinstance(value, Exception):
                    raise value
        return outcomes

    def push_class_everywhere(self, class_name: str,
                              from_node: str | None = None,
                              deadline: Deadline | None = None) -> dict[str, str]:
        """Distribute a class to every node in parallel; ``{node: hash}``.

        ``from_node`` names the serving node (default: the first node
        whose cache holds the class).  The pushes are one batched frame
        per target, all overlapped — at 8 nodes this is the scatter-gather
        fan-out the async benchmark measures against the sequential loop.
        ``deadline`` bounds the whole fan-out with one shared budget.
        """
        if from_node is None:
            for node in self._nodes.values():
                if node.namespace.classcache.has_class(class_name):
                    from_node = node.node_id
                    break
            if from_node is None:
                raise ConfigurationError(
                    f"no node in the cluster caches class {class_name!r}"
                )
        source = self.node(from_node)
        targets = [n for n in self.node_ids() if n != from_node]
        hashes = source.namespace.server.push_class_many(class_name, targets,
                                                         deadline=deadline)
        hashes[from_node] = source.namespace.classcache.descriptor(
            class_name
        ).source_hash
        return hashes

    def query_all_loads(self, src: str | None = None,
                        deadline: Deadline | None = None,
                        timeout_load: float | None = None,
                        targets: Sequence[str] | None = None) -> dict[str, float]:
        """Every live node's load from one parallel sweep.

        Hosts that fail to answer drop out (a vanished host is not a
        balancing candidate) — the cluster-size-independent primitive
        :class:`~repro.cluster.load.LoadBalancer` decisions are built on.
        One ``deadline`` bounds the whole sweep; ``timeout_load`` prices
        deadline-expired probes at that value instead of dropping them
        (the balancer's overloaded-by-silence signal).

        ``targets`` overrides the swept hosts (default: this cluster's
        own nodes) — a membership-fed balancer passes its live-host view,
        which may include peers hosted by *other processes* reachable
        through the transport's address book.
        """
        issuer = self.issuer(src)
        swept = list(targets) if targets is not None else self.node_ids()
        return issuer.namespace.server.query_load_many(
            swept, skip_unreachable=True, deadline=deadline,
            timeout_load=timeout_load,
        )

    def locate(self, name: str, src: str | None = None,
               deadline: Deadline | None = None) -> str:
        """Find a component by probing every node's registry in parallel.

        The first probe to resolve wins and the stragglers are cancelled,
        so one hung registry cannot stall a locate that already succeeded;
        ``deadline`` bounds the whole fan-out.
        """
        issuer = self.issuer(src)
        return issuer.namespace.server.locate_any(name, self.node_ids(),
                                                  deadline=deadline)

    # -- fault injection (simulated network only) ----------------------------------------

    def _simnet(self) -> SimNetwork:
        if not isinstance(self.transport, SimNetwork):
            raise ConfigurationError(
                "fault injection requires the simulated network"
            )
        return self.transport

    def crash(self, node_id: str) -> None:
        """Make a node unreachable (simulated network only)."""
        self._simnet().crash(node_id)

    def recover(self, node_id: str) -> None:
        """Undo :meth:`crash`."""
        self._simnet().recover(node_id)

    def partition(self, a: str, b: str) -> None:
        """Sever the link between two nodes (bidirectional)."""
        self._simnet().partition(a, b)

    def heal(self, a: str, b: str) -> None:
        """Undo :meth:`partition`."""
        self._simnet().heal(a, b)

    # -- lifecycle ----------------------------------------------------------------------

    def shutdown(self) -> None:
        """Tear everything down (idempotent)."""
        for node in self._nodes.values():
            node.shutdown()
        shutdown = getattr(self.transport, "shutdown", None)
        if callable(shutdown):
            shutdown()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        kind = type(self.transport).__name__
        return f"Cluster({self.node_ids()}, transport={kind})"
