"""MAGE: Mobility Attributes Guide Execution — a full Python reproduction.

Reproduces *"MAGE: A Distributed Programming Model"* (Barr, Pandey,
Haungs; ICDCS 2001): mobility attributes as first-class distribution
policies over a from-scratch RMI substrate with weak object migration,
forwarding-chain registries, class cloning/caching, and stay/move locking.

Quickstart::

    from repro import Cluster, REV

    with Cluster(["lab", "sensor1"]) as cluster:
        lab = cluster["lab"]
        lab.register_class(GeoDataFilterImpl)
        rev = REV("GeoDataFilterImpl", "geoData", "sensor1",
                  runtime=lab.namespace)
        geo_filter = rev.bind()       # class ships to sensor1, instantiates
        geo_filter.filter_data()      # runs on sensor1

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro import errors
from repro.cluster import Cluster, DiscoveryService, LoadMonitor, Membership, Node
from repro.core import (
    CLE,
    COD,
    GREV,
    LPC,
    Agent,
    AgentContext,
    AgentManager,
    Combined,
    FactoryMode,
    LoadBalancing,
    Locus,
    MAgent,
    MobilityAttribute,
    MobilityTriple,
    REV,
    RPC,
    Restricted,
    ResumableAgent,
    current_runtime,
    launch_resumable,
    use_runtime,
)
from repro.net import (
    BernoulliLoss,
    ConstantLatency,
    PerLinkLatency,
    SimNetwork,
    TcpNetwork,
    UniformLatency,
)
from repro.runtime import Namespace
from repro.util import MageUrl, SimClock, WallClock

__version__ = "1.0.0"

__all__ = [
    "Agent",
    "AgentContext",
    "AgentManager",
    "BernoulliLoss",
    "CLE",
    "COD",
    "Cluster",
    "Combined",
    "ConstantLatency",
    "DiscoveryService",
    "Membership",
    "FactoryMode",
    "GREV",
    "LPC",
    "LoadBalancing",
    "LoadMonitor",
    "Locus",
    "MAgent",
    "MageUrl",
    "MobilityAttribute",
    "MobilityTriple",
    "Namespace",
    "Node",
    "PerLinkLatency",
    "REV",
    "RPC",
    "Restricted",
    "ResumableAgent",
    "SimClock",
    "SimNetwork",
    "TcpNetwork",
    "UniformLatency",
    "WallClock",
    "current_runtime",
    "errors",
    "launch_resumable",
    "use_runtime",
]
