"""``Naming`` — the client API onto RMI registries.

The analogue of Java's ``java.rmi.Naming``: URL-addressed lookup, bind,
rebind, unbind, and listing against any node's registry.  The paper's
mobility attributes "boil down to RMI calls … in essence, a complex wrapper
for RMI's ``Naming.lookup``" (§4.2); this is the wrapped layer.
"""

from __future__ import annotations

from repro.net.message import MessageKind
from repro.net.transport import Transport
from repro.rmi.protocol import BindRequest, ListRequest, LookupRequest, UnbindRequest
from repro.rmi.stub import RemoteRef, Stub
from repro.util.ids import MageUrl


class Naming:
    """Registry operations issued from one namespace."""

    def __init__(self, node_id: str, transport: Transport, client) -> None:
        self.node_id = node_id
        self._transport = transport
        self._client = client  # RmiClient; provides stub_for

    def _resolve(self, url: str | MageUrl) -> MageUrl:
        if isinstance(url, MageUrl):
            return url
        return MageUrl.parse(url)

    def lookup(self, url: str | MageUrl) -> Stub:
        """Resolve a ``mage://node/name`` URL to a live stub.

        Raises :class:`~repro.errors.NotBoundError` when the name has no
        binding at that node.
        """
        where = self._resolve(url)
        ref = self._transport.call(
            self.node_id, where.node_id,
            MessageKind.REGISTRY_LOOKUP, LookupRequest(name=where.name),
        )
        return self._client.stub_for(ref)

    def lookup_ref(self, url: str | MageUrl) -> RemoteRef:
        """Like :meth:`lookup` but returns the raw reference, not a stub."""
        where = self._resolve(url)
        return self._transport.call(
            self.node_id, where.node_id,
            MessageKind.REGISTRY_LOOKUP, LookupRequest(name=where.name),
        )

    def bind(self, url: str | MageUrl, ref: RemoteRef) -> None:
        """Publish ``ref`` at the URL's node; refuses to overwrite."""
        where = self._resolve(url)
        self._transport.call(
            self.node_id, where.node_id,
            MessageKind.REGISTRY_BIND,
            BindRequest(name=where.name, ref=ref, replace=False),
        )

    def rebind(self, url: str | MageUrl, ref: RemoteRef) -> None:
        """Publish ``ref`` at the URL's node, replacing any binding."""
        where = self._resolve(url)
        self._transport.call(
            self.node_id, where.node_id,
            MessageKind.REGISTRY_BIND,
            BindRequest(name=where.name, ref=ref, replace=True),
        )

    def unbind(self, url: str | MageUrl) -> None:
        """Remove the binding at the URL's node."""
        where = self._resolve(url)
        self._transport.call(
            self.node_id, where.node_id,
            MessageKind.REGISTRY_UNBIND, UnbindRequest(name=where.name),
        )

    def list_bindings(self, node_id: str) -> list[str]:
        """All names bound in ``node_id``'s registry."""
        return self._transport.call(
            self.node_id, node_id, MessageKind.REGISTRY_LIST, ListRequest()
        )
