"""Remote references and stubs.

A :class:`RemoteRef` names a servant: which node exports it and under what
name.  A :class:`Stub` is the client-side proxy around a ref — the paper's
"handles, or Java interfaces, that point to stubs" (§4.2).  Calling a method
on a stub marshals the arguments, sends an INVOKE message, and unmarshals
the result.

Stubs travel **by reference**: the marshalling layer pickles only the ref
and the receiving namespace re-attaches a live stub bound to its own
transport (see :mod:`repro.rmi.marshal`).  This mirrors Java RMI, where a
stub crossing the wire arrives connected to the receiver's runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, NoReturn

from repro.errors import CallTimeoutError, ConfigurationError
from repro.net.deadline import Deadline
from repro.net.transport import CallFuture
from repro.util.ids import validate_component_name, validate_node_id

#: Client-side invocation function a stub delegates to:
#: ``(ref, method, args, kwargs) -> result``.
InvokeFn = Callable[["RemoteRef", str, "tuple[Any, ...]", "dict[str, Any]"], Any]

#: Future-returning variant: ``(ref, method, args, kwargs) -> CallFuture``.
#: May additionally accept a fifth ``deadline`` argument; the stub passes
#: it positionally only when one is bound, so four-argument invokers
#: (hand-rolled test doubles, detached stubs) keep working.
AsyncInvokeFn = Callable[
    ["RemoteRef", str, "tuple[Any, ...]", "dict[str, Any]"], CallFuture
]


@dataclass(frozen=True)
class RemoteRef:
    """A location-addressed name for a servant.

    ``methods`` optionally restricts the stub to an interface's method set
    (empty tuple = open proxy, any method name forwards).
    """

    node_id: str
    name: str
    methods: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        validate_node_id(self.node_id)
        validate_component_name(self.name)

    def moved_to(self, node_id: str) -> "RemoteRef":
        """The same servant, now hosted by ``node_id``."""
        return RemoteRef(node_id=node_id, name=self.name, methods=self.methods)

    def __str__(self) -> str:
        return f"mage://{self.node_id}/{self.name}"


def interface_methods(iface: type) -> tuple[str, ...]:
    """Public method names of ``iface``, for restricting a stub to an interface."""
    names: list[str] = []
    for attr in dir(iface):
        if attr.startswith("_"):
            continue
        if callable(getattr(iface, attr, None)):
            names.append(attr)
    return tuple(sorted(names))


def _bound_remote_method(ref: RemoteRef, method: str,
                         call_fn: Callable[..., Any],
                         deadline: Deadline | None = None) -> Callable[..., Any]:
    """One rule for turning attribute access into a bound remote method.

    Shared by the stub's blocking view and its ``futures`` view, so the
    dunder guard (keeps pickle/copy protocols sane) and the interface
    restriction cannot drift between them.  A bound ``deadline`` is passed
    through to the invoker as a fifth argument; without one the invoker is
    called with the classic four, so simple test-double invokers need not
    grow a parameter.
    """
    if method.startswith("__") and method.endswith("__"):
        raise AttributeError(method)
    if ref.methods and method not in ref.methods:
        raise AttributeError(f"{ref} exposes {ref.methods}, not {method!r}")

    def remote_method(*args: Any, **kwargs: Any) -> Any:
        if deadline is not None:
            return call_fn(ref, method, args, kwargs, deadline)
        return call_fn(ref, method, args, kwargs)

    remote_method.__name__ = method
    return remote_method


class _FutureCaller:
    """The ``stub.futures`` view: methods return :class:`CallFuture`\\ s.

    ``stub.futures.work(x)`` issues the invocation and returns immediately;
    collecting ``.result()`` later lets a caller overlap several remote
    invocations (scatter-gather at the proxy level).  Honours the same
    interface restriction as the stub itself.

    The view is also *callable*: ``stub.futures(deadline=d).work(x)``
    binds an end-to-end :class:`~repro.net.deadline.Deadline` to every
    invocation it issues — the budget rides the INVOKE message, bounds the
    reply wait, and propagates to calls the servant makes in turn.
    """

    __slots__ = ("_ref", "_invoke_async_fn", "_deadline")

    def __init__(self, ref: RemoteRef, invoke_async_fn: AsyncInvokeFn,
                 deadline: Deadline | None = None) -> None:
        self._ref = ref
        self._invoke_async_fn = invoke_async_fn
        self._deadline = deadline

    def __call__(self, deadline: Deadline | None = None) -> "_FutureCaller":
        return _FutureCaller(self._ref, self._invoke_async_fn, deadline)

    def __getattr__(self, method: str) -> Callable[..., CallFuture]:
        return _bound_remote_method(self._ref, method, self._invoke_async_fn,
                                    self._deadline)

    def __repr__(self) -> str:
        return f"Stub({self._ref}).futures"


class Stub:
    """Dynamic proxy: attribute access yields bound remote methods.

    Uses ``__getattr__`` rather than generated classes so any interface works
    without code generation; Python needs no casts (the paper's Java
    implementation "must always cast bind invocations").

    The :attr:`futures` view exposes the same methods returning
    :class:`CallFuture`\\ s, so independent invocations can overlap.
    """

    # Everything the proxy itself owns must be listed here, so __setattr__
    # can distinguish internals from (disallowed) remote field writes.
    _INTERNALS = frozenset({"_ref", "_invoke_fn", "_invoke_async_fn"})

    # Declared so the internals keep their real types even though the
    # fallback __getattr__ types every unknown attribute as a remote
    # method; assignment happens via object.__setattr__ in __init__.
    _ref: RemoteRef
    _invoke_fn: InvokeFn
    _invoke_async_fn: AsyncInvokeFn | None

    def __init__(self, ref: RemoteRef, invoke_fn: InvokeFn,
                 invoke_async_fn: AsyncInvokeFn | None = None) -> None:
        object.__setattr__(self, "_ref", ref)
        object.__setattr__(self, "_invoke_fn", invoke_fn)
        object.__setattr__(self, "_invoke_async_fn", invoke_async_fn)

    @property
    def ref(self) -> RemoteRef:
        return self._ref

    @property
    def futures(self) -> _FutureCaller:
        """Async view of the proxy: ``stub.futures.method(...)`` -> future.

        When the stub was built without an asynchronous invoker (detached
        stubs, hand-rolled test doubles), each "future" runs the blocking
        invocation eagerly and arrives already completed — same results,
        no overlap.
        """
        invoke_async_fn = object.__getattribute__(self, "_invoke_async_fn")
        if invoke_async_fn is None:
            invoke_fn = object.__getattribute__(self, "_invoke_fn")

            def eager(ref: RemoteRef, method: str, args: "tuple[Any, ...]",
                      kwargs: "dict[str, Any]",
                      deadline: Deadline | None = None) -> CallFuture:
                future = CallFuture(f"{ref}.{method}")
                if deadline is not None and deadline.expired:
                    future._fail(CallTimeoutError(
                        f"{ref}.{method}: deadline expired"
                    ))
                    return future
                try:
                    future._resolve(invoke_fn(ref, method, args, kwargs))
                except Exception as exc:
                    future._fail(exc)
                return future

            invoke_async_fn = eager
        return _FutureCaller(self._ref, invoke_async_fn)

    def __getattr__(self, method: str) -> Callable[..., Any]:
        return _bound_remote_method(
            object.__getattribute__(self, "_ref"),
            method,
            object.__getattribute__(self, "_invoke_fn"),
        )

    def __setattr__(self, name: str, value: Any) -> None:
        if name in self._INTERNALS:
            object.__setattr__(self, name, value)
            return
        raise ConfigurationError(
            "remote field writes are not part of the RMI model; "
            f"call a method instead of assigning {name!r}"
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Stub) and other._ref == self._ref

    def __hash__(self) -> int:
        return hash(self._ref)

    def __repr__(self) -> str:
        return f"Stub({self._ref})"

    def __reduce__(self) -> NoReturn:
        # Stubs never pickle directly: the marshalling layer intercepts them
        # via its persistent-id hook and ships only the ref.  Reaching this
        # line means someone bypassed repro.rmi.marshal.
        raise ConfigurationError(
            "stubs must be marshalled with repro.rmi.marshal, not pickled raw"
        )


class DetachedStubError(ConfigurationError):
    """A stub was unmarshalled without a namespace to re-attach it to."""


def detached_stub(ref: RemoteRef) -> Stub:
    """A stub that remembers its ref but raises if invoked.

    Used when unmarshalling outside any namespace (e.g. inspecting a blob in
    a test); real namespaces pass a live ``invoke_fn`` instead.
    """

    def refuse(_ref: RemoteRef, method: str, args: "tuple[Any, ...]",
               kwargs: "dict[str, Any]") -> Any:
        raise DetachedStubError(
            f"stub for {_ref} is detached; it can only be invoked after "
            "being received by a namespace"
        )

    return Stub(ref, refuse)
