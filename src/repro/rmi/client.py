"""Client-side RMI: turning stubs' method calls into INVOKE messages.

Since the same-host fast paths landed, the client also owns the
per-namespace **location cache** (tier 3 of the locality ladder): a
``name -> node_id`` map fed by the MAGE registry's location funnel
(forwarding hints, move commits, membership announcements) and evicted
when hosts die, so each call picks its tier — in-process bypass, cached
remote host, or the ref's own address — without a registry lookup on the
hot path.  The cache is only wired up on transports that support the
bypass; on the simulated network every call keeps the exact pre-cache
routing (and therefore the exact figure traces).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import NoSuchObjectError
from repro.net.deadline import Deadline
from repro.net.message import MessageKind
from repro.net.transport import CallFuture, Transport
from repro.rmi.marshal import marshal_call, unmarshal
from repro.rmi.protocol import InvokeRequest
from repro.rmi.stub import RemoteRef, Stub

if TYPE_CHECKING:
    from repro.rmi.bypass import LocalDispatch


class RmiClient:
    """One per namespace: issues invocations on behalf of local callers.

    Also serves as the namespace's stub factory — every stub it creates (or
    re-attaches during unmarshalling) routes invocations back through this
    client, so results containing further stubs keep working recursively.
    """

    def __init__(self, node_id: str, transport: Transport) -> None:
        self.node_id = node_id
        self._transport = transport
        #: Tier-1 dispatcher, attached by the namespace when the
        #: transport supports the in-process bypass; ``None`` keeps the
        #: classic wire-only behaviour.
        self._local: "LocalDispatch | None" = None
        #: Tier-3 location cache: ``name -> node_id``.  Written under the
        #: GIL by registry listeners (plain dict ops are atomic enough for
        #: a cache whose worst staleness is one redirected call) and read
        #: lock-free on the invoke hot path.
        self._locations: dict[str, str] = {}

    # -- locality ladder -------------------------------------------------------

    def attach_local(self, dispatch: "LocalDispatch") -> None:
        """Enable the in-process bypass (and with it, cache routing)."""
        self._local = dispatch

    @property
    def local_hits(self) -> int:
        """How many invocations took the in-process bypass."""
        return 0 if self._local is None else self._local.hits

    def note_location(self, name: str, node_id: str) -> None:
        """Location-funnel feed: ``name`` was last seen at ``node_id``."""
        self._locations[name] = node_id

    def forget_location(self, name: str) -> None:
        """Invalidate one cache entry (stale redirect, moved object)."""
        self._locations.pop(name, None)

    def evict_locations(self, node_id: str) -> int:
        """Drop every cache entry pointing at a dead/evicted host."""
        stale = [name for name, where in list(self._locations.items())
                 if where == node_id]
        for name in stale:
            self._locations.pop(name, None)
        return len(stale)

    def cached_location(self, name: str) -> str | None:
        """The cache's current answer (diagnostics, tests)."""
        return self._locations.get(name)

    # -- invocation ------------------------------------------------------------

    def invoke(self, ref: RemoteRef, method: str, args: tuple, kwargs: dict,
               deadline: Deadline | None = None) -> Any:
        """Perform one remote invocation: marshal, send, unmarshal.

        A call the cache redirected away from the ref's own address gets
        one self-healing retry: if the redirected host no longer has the
        object, the stale entry is dropped and the call re-runs against
        the ref — the same miss the wire path always surfaced, minus the
        caller having to chase it.
        """
        redirected = self._locations.get(ref.name)
        try:
            return self._invoke_blocking(ref, method, args, kwargs, deadline,
                                         redirected)
        except NoSuchObjectError:
            if redirected is None or redirected == ref.node_id:
                raise
            self.forget_location(ref.name)
            return self._invoke_blocking(ref, method, args, kwargs, deadline,
                                         self._locations.get(ref.name))

    def _invoke_blocking(self, ref: RemoteRef, method: str, args: tuple,
                         kwargs: dict, deadline: Deadline | None,
                         cached: str | None) -> Any:
        """One blocking invocation attempt down the locality ladder.

        A colocated target takes the synchronous bypass — same outcomes
        as ``try_invoke(...).result()`` without allocating a future the
        caller would only block on; everything else (and every probe
        miss) is the async path collected inline, exactly as before.
        """
        local = self._local
        if local is not None:
            dst = cached if cached is not None else ref.node_id
            if dst == self.node_id:
                outcome = local.try_invoke_sync(ref, method, args, kwargs,
                                                deadline)
                if outcome is not local.MISS:
                    return outcome
                if cached == self.node_id:
                    self.forget_location(ref.name)
        return self.invoke_async(ref, method, args, kwargs, deadline).result()

    def invoke_async(self, ref: RemoteRef, method: str, args: tuple,
                     kwargs: dict, deadline: Deadline | None = None) -> CallFuture:
        """One remote invocation as a :class:`CallFuture`.

        A proxy can issue several of these before collecting any, so
        independent invocations overlap their round trips on transports
        with a native asynchronous path.  The result blob is unmarshalled
        lazily on the collecting thread (never on the transport's reader
        thread), and stubs inside the result re-attach to this namespace
        exactly as in the blocking path.  ``deadline`` bounds the exchange
        end to end and propagates to the servant (``stub.futures(deadline=
        ...)`` is the proxy-level spelling).

        With the locality ladder attached, the destination is chosen per
        call: the in-process bypass when the target is in the local
        store, else the cached location, else the ref's address.  A
        failed bypass probe drops any stale self-pointing cache entry and
        takes the wire exactly as before.
        """
        local = self._local
        cached = self._locations.get(ref.name) if local is not None else None
        dst = cached if cached is not None else ref.node_id
        if local is not None and dst == self.node_id:
            future = local.try_invoke(ref, method, args, kwargs, deadline)
            if future is not None:
                return future
            # Not (or no longer) here: heal the cache and take the wire.
            if cached == self.node_id:
                self.forget_location(ref.name)
                dst = ref.node_id
        request = InvokeRequest(
            name=ref.name, method=method, args_blob=marshal_call(args, kwargs)
        )
        future = self._transport.call_async(
            self.node_id, dst, MessageKind.INVOKE, request,
            deadline=deadline,
        )
        if cached is not None and dst != ref.node_id:
            # A redirected async call can't safely auto-retry (its
            # collector may sit on a reactor thread), but it can heal the
            # cache so the next call stops chasing the stale entry.
            future.add_done_callback(self._invalidate_on_miss(ref.name))
        return future.map(lambda blob: unmarshal(blob, self.stub_for))

    def _invalidate_on_miss(self, name: str):
        def _check(future: CallFuture) -> None:
            try:
                error = future.exception(0)
            except Exception:
                return  # timeout/cancel race: nothing to learn
            if isinstance(error, NoSuchObjectError):
                self.forget_location(name)
        return _check

    def stub_for(self, ref: RemoteRef) -> Stub:
        """A live stub bound to this namespace's transport."""
        return Stub(ref, self.invoke, self.invoke_async)
