"""Client-side RMI: turning stubs' method calls into INVOKE messages."""

from __future__ import annotations

from typing import Any

from repro.net.message import MessageKind
from repro.net.transport import Transport
from repro.rmi.marshal import marshal_call, unmarshal
from repro.rmi.protocol import InvokeRequest
from repro.rmi.stub import RemoteRef, Stub


class RmiClient:
    """One per namespace: issues invocations on behalf of local callers.

    Also serves as the namespace's stub factory — every stub it creates (or
    re-attaches during unmarshalling) routes invocations back through this
    client, so results containing further stubs keep working recursively.
    """

    def __init__(self, node_id: str, transport: Transport) -> None:
        self.node_id = node_id
        self._transport = transport

    def invoke(self, ref: RemoteRef, method: str, args: tuple, kwargs: dict) -> Any:
        """Perform one remote invocation: marshal, send, unmarshal."""
        request = InvokeRequest(
            name=ref.name, method=method, args_blob=marshal_call(args, kwargs)
        )
        result_blob = self._transport.call(
            self.node_id, ref.node_id, MessageKind.INVOKE, request
        )
        return unmarshal(result_blob, self.stub_for)

    def stub_for(self, ref: RemoteRef) -> Stub:
        """A live stub bound to this namespace's transport."""
        return Stub(ref, self.invoke)
