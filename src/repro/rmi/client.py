"""Client-side RMI: turning stubs' method calls into INVOKE messages."""

from __future__ import annotations

from typing import Any

from repro.net.deadline import Deadline
from repro.net.message import MessageKind
from repro.net.transport import CallFuture, Transport
from repro.rmi.marshal import marshal_call, unmarshal
from repro.rmi.protocol import InvokeRequest
from repro.rmi.stub import RemoteRef, Stub


class RmiClient:
    """One per namespace: issues invocations on behalf of local callers.

    Also serves as the namespace's stub factory — every stub it creates (or
    re-attaches during unmarshalling) routes invocations back through this
    client, so results containing further stubs keep working recursively.
    """

    def __init__(self, node_id: str, transport: Transport) -> None:
        self.node_id = node_id
        self._transport = transport

    def invoke(self, ref: RemoteRef, method: str, args: tuple, kwargs: dict,
               deadline: Deadline | None = None) -> Any:
        """Perform one remote invocation: marshal, send, unmarshal."""
        return self.invoke_async(ref, method, args, kwargs, deadline).result()

    def invoke_async(self, ref: RemoteRef, method: str, args: tuple,
                     kwargs: dict, deadline: Deadline | None = None) -> CallFuture:
        """One remote invocation as a :class:`CallFuture`.

        A proxy can issue several of these before collecting any, so
        independent invocations overlap their round trips on transports
        with a native asynchronous path.  The result blob is unmarshalled
        lazily on the collecting thread (never on the transport's reader
        thread), and stubs inside the result re-attach to this namespace
        exactly as in the blocking path.  ``deadline`` bounds the exchange
        end to end and propagates to the servant (``stub.futures(deadline=
        ...)`` is the proxy-level spelling).
        """
        request = InvokeRequest(
            name=ref.name, method=method, args_blob=marshal_call(args, kwargs)
        )
        future = self._transport.call_async(
            self.node_id, ref.node_id, MessageKind.INVOKE, request,
            deadline=deadline,
        )
        return future.map(lambda blob: unmarshal(blob, self.stub_for))

    def stub_for(self, ref: RemoteRef) -> Stub:
        """A live stub bound to this namespace's transport."""
        return Stub(ref, self.invoke, self.invoke_async)
