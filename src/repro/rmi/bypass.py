"""In-process invoke bypass: tier 1 of the same-host locality ladder.

MAGE's whole argument is that migrating an object toward its callers
makes subsequent invocations cheap — yet a call to a servant *colocated
with its caller* used to pay the full marshal → frame → loopback →
unmarshal round trip anyway.  This module collapses that stack: when the
:class:`~repro.rmi.client.RmiClient` resolves a stub's target to the
local :class:`~repro.runtime.store.ObjectStore`, the invocation is
dispatched straight into the servant call — while preserving every
observable remote semantic:

* **By-value isolation.**  Arguments and results cross the boundary by
  value, exactly as bytes would: immutable primitive trees
  (:func:`~repro.rmi.marshal._plain_immutable`) are shared copy-free —
  indistinguishable from copying — and everything else pays the same
  pickle round trip the wire charges, so a servant mutating its
  arguments (or a caller mutating a result the servant retained) can
  never leak the mutation across the boundary.  Stubs re-attach through
  the namespace's stub factory and mobile instances refuse to marshal,
  both exactly as on the wire.
* **Deadline semantics.**  The call builds a real ``src == dst``
  :class:`~repro.net.message.Message` carrying
  :func:`~repro.net.deadline.effective_deadline` and runs it through
  :meth:`Transport.execute_handler` — the literal wire-path code — so
  expired budgets are dropped at admission with the same
  ``CallTimeoutError`` envelope and the deadline is ambient while the
  servant runs (nested calls inherit it).
* **At-most-once.**  The dispatch shares ``execute_handler``'s
  single-flight reply cache discipline via a dedicated
  :class:`~repro.net.transport.ReplyCache`; a replayed message id is
  answered from the cache without re-executing, and a *mutable* cached
  result is re-isolated per delivery (the wire unmarshals a fresh copy
  per retransmission — so does the bypass).
* **Trace events.**  The request and its reply are recorded in the
  transport's message trace as local (``src == dst``) messages, the same
  shape the simulated network gives self-calls.
* **Failure envelopes.**  Servant exceptions arrive as
  :class:`~repro.errors.RemoteInvocationError` with the remote traceback,
  missing objects as ``NoSuchObjectError``, and delivered errors are
  re-isolated so no live ``__cause__`` chain smuggles servant state
  across the boundary — all matching the wire byte-for-byte in type,
  message, and traceback.

The moment the object migrates away the store probe misses and the call
falls back to the wire path untouched (hint chase unchanged); a race
between the probe and the dispatch surfaces the same ``NoSuchObjectError``
a stale wire call would.

This module is the *sanctioned* place to call servant methods across the
RMI boundary — magelint rule MAGE010 flags direct servant-method calls
anywhere else.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.net.deadline import Deadline, effective_deadline
from repro.net.message import (
    Message,
    MessageKind,
    ReplyPayload,
    build_message,
)
from repro.net.transport import CallFuture, ReplyCache, Transport
from repro.rmi.invoker import Invoker
from repro.rmi.marshal import (
    MarshalError,
    StubFactory,
    _plain_immutable,
    marshal,
    unmarshal,
)
from repro.rmi.stub import RemoteRef
from repro.runtime.store import ObjectStore

#: Flat trace-accounting size for bypass messages: nothing is serialized,
#: so the trace is handed the envelope floor instead of re-pickling the
#: (by-reference) payload to measure it.  Local messages never count
#: toward remote-bytes accounting, so the exact figure is cosmetic.
_LOCAL_NBYTES = 64

#: Probe-miss sentinel for the synchronous bypass path (``None`` is a
#: perfectly good servant return value, so it cannot signal the miss).
MISS = object()


class _LocalInvoke:
    """Bypass message payload: an invocation descriptor held by reference.

    Arguments are *already isolated* when this is built — the payload
    never crosses a pickle boundary, it only rides the local message so
    ``execute_handler`` and the trace see a real envelope.
    """

    __slots__ = ("name", "method", "args", "kwargs")

    def __init__(self, name: str, method: str, args: "tuple[Any, ...]",
                 kwargs: "dict[str, Any]") -> None:
        self.name = name
        self.method = method
        self.args = args
        self.kwargs = kwargs

    def __repr__(self) -> str:
        return f"LocalInvoke({self.name}.{self.method})"


class _ByValue:
    """A marshalled result parked in the bypass reply cache.

    Mutable results are cached as *bytes* and unmarshalled fresh per
    delivery: a replayed message id must observe a new copy, exactly as a
    wire retransmission unmarshals the cached reply blob anew.
    """

    __slots__ = ("blob",)

    def __init__(self, blob: bytes) -> None:
        self.blob = blob


class LocalDispatch:
    """Executes colocated invocations without touching the wire.

    One per namespace (attached to its :class:`RmiClient` when the
    transport advertises ``supports_local_bypass``); ``hits`` counts
    bypassed invocations for the locality bench and tier diagnostics.
    """

    #: Re-exported so the client (which cannot import this module at
    #: runtime without a cycle) can compare ``try_invoke_sync`` outcomes.
    MISS = MISS

    def __init__(self, node_id: str, transport: Transport, store: ObjectStore,
                 invoker: Invoker, stub_factory: StubFactory) -> None:
        self.node_id = node_id
        self._transport = transport
        self._store = store
        self._invoker = invoker
        self._stub_factory = stub_factory
        self._cache = ReplyCache()
        self._lock = threading.Lock()
        self.hits = 0

    # -- entry ---------------------------------------------------------------

    def try_invoke(self, ref: RemoteRef, method: str, args: "tuple[Any, ...]",
                   kwargs: "dict[str, Any]",
                   deadline: Deadline | None = None) -> CallFuture | None:
        """Bypass one invocation, or ``None`` when the target is not local.

        ``None`` sends the caller down the unchanged wire path; the probe
        is one shard-lock store lookup, so a miss costs almost nothing on
        top of the call it falls back to.
        """
        if self._store.lookup(ref.name) is None:
            return None
        return self.invoke_message(self._build(ref, method, args, kwargs,
                                               deadline))

    def try_invoke_sync(self, ref: RemoteRef, method: str,
                        args: "tuple[Any, ...]", kwargs: "dict[str, Any]",
                        deadline: Deadline | None = None) -> Any:
        """Blocking-caller bypass: the value, the error, or :data:`MISS`.

        Same outcomes as ``try_invoke(...).result()`` — the delivered
        value is returned, the delivered (isolated) error is raised —
        minus the per-call future allocation a blocking caller pays for
        and never uses.  :data:`MISS` sends the caller down the wire.
        """
        if self._store.lookup(ref.name) is None:
            return MISS
        payload = self._execute(self._build(ref, method, args, kwargs,
                                            deadline))
        error = payload.error
        if error is not None:
            raise self._isolate_error(error)
        return self._fresh_value(payload)

    def _build(self, ref: RemoteRef, method: str, args: "tuple[Any, ...]",
               kwargs: "dict[str, Any]", deadline: Deadline | None) -> Message:
        isolated_args, isolated_kwargs = self._isolate_call(args, kwargs)
        return build_message(
            MessageKind.INVOKE, self.node_id, self.node_id,
            _LocalInvoke(ref.name, method, isolated_args, isolated_kwargs),
            effective_deadline(deadline),
        )

    def invoke_message(self, message: Message) -> CallFuture:
        """Dispatch a pre-built bypass message (the replay-test seam).

        Runs the full wire-path execution discipline and returns an
        already-completed future.
        """
        return self._deliver(message, self._execute(message))

    def _execute(self, message: Message) -> ReplyPayload:
        """Deadline admission, ambient scope, single-flight at-most-once
        — via :meth:`Transport.execute_handler`, the literal wire-path
        code — plus local trace events for both directions.
        """
        trace = self._transport.trace
        clock = self._transport.clock
        trace.record(message, clock.now_ms(), nbytes=_LOCAL_NBYTES)
        payload = Transport.execute_handler(message, self._handle, self._cache)
        trace.record(message.reply(payload), clock.now_ms(),
                     nbytes=_LOCAL_NBYTES)
        with self._lock:
            self.hits += 1
        return payload

    # -- servant side ----------------------------------------------------------

    def _handle(self, message: Message) -> Any:
        """The handler ``execute_handler`` runs: servant call + isolation.

        Result isolation is decided *here*, before the reply payload
        enters the cache: immutable trees are cached (and delivered)
        as-is, everything else is cached as marshalled bytes so every
        delivery — first or replayed — unmarshals its own copy.
        """
        call = message.payload
        result = self._invoker.dispatch(call.name, call.method,
                                        call.args, call.kwargs)
        if _plain_immutable(result):
            return result
        return _ByValue(marshal(result))

    # -- caller side -----------------------------------------------------------

    def _deliver(self, message: Message, payload: ReplyPayload) -> CallFuture:
        future = CallFuture(message.describe)
        error = payload.error
        if error is not None:
            future._fail(self._isolate_error(error))
        else:
            future._resolve(self._fresh_value(payload))
        return future

    def _fresh_value(self, payload: ReplyPayload) -> Any:
        """The delivered result: mutable values unmarshal a fresh copy."""
        value = payload.value
        if isinstance(value, _ByValue):
            value = unmarshal(value.blob, self._stub_factory)
        return value

    def _isolate_call(
        self, args: "tuple[Any, ...]", kwargs: "dict[str, Any]"
    ) -> "tuple[tuple[Any, ...], dict[str, Any]]":
        """Isolate an argument list exactly as ``marshal_call`` would.

        The fast path — no keywords, immutable positional tree — shares
        the tuple outright; anything else round-trips through the
        pickler (stubs travel by ref and re-attach, mobile instances
        refuse, both as on the wire).
        """
        args = tuple(args)
        if not kwargs and _plain_immutable(args):
            return args, {}
        isolated = unmarshal(marshal((args, dict(kwargs))), self._stub_factory)
        return isolated[0], isolated[1]

    def _isolate_error(self, error: BaseException) -> BaseException:
        """Re-create a delivered error the way the wire would.

        A wire caller receives an exception *reconstructed from bytes*:
        no live ``__cause__`` chain, no shared state with the servant.
        An error whose state refuses to pickle is delivered as-is — the
        wire substitutes a summary there, and a shared traceback string
        beats losing the failure entirely.
        """
        try:
            isolated = unmarshal(marshal(error), self._stub_factory)
        except MarshalError:
            return error
        return isolated if isinstance(isolated, BaseException) else error
