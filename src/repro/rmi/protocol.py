"""Wire payload vocabulary.

Every :class:`~repro.net.message.Message` carries one of these dataclasses.
They are deliberately dumb records: all behaviour lives in the services that
exchange them.  Binary fields (``*_blob``) hold marshalled data produced by
:mod:`repro.rmi.marshal`, so arguments and object state cross namespaces
**by value** even on the in-process simulated network — the semantics a real
wire would impose.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# RMI substrate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvokeRequest:
    """Invoke ``method`` on the servant bound as ``name`` at the target node."""

    name: str
    method: str
    args_blob: bytes  # marshalled (args, kwargs)


@dataclass(frozen=True)
class LookupRequest:
    """``Naming.lookup``: resolve ``name`` in the target node's RMI registry."""

    name: str


@dataclass(frozen=True)
class BindRequest:
    """``Naming.bind``/``rebind``: publish a remote reference under ``name``."""

    name: str
    ref: "object"  # a repro.rmi.stub.RemoteRef (kept loose to avoid a cycle)
    replace: bool = False


@dataclass(frozen=True)
class UnbindRequest:
    """``Naming.unbind``: remove the binding for ``name``."""

    name: str


@dataclass(frozen=True)
class ListRequest:
    """``Naming.list_bindings``: enumerate bound names."""


# ---------------------------------------------------------------------------
# MAGE runtime
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FindRequest:
    """Forwarding-chain walk: where does ``name`` live now?

    ``hops`` carries the nodes visited so far — both a cycle guard and the
    list of registries whose forwarding addresses get collapsed onto the
    final location when the answer propagates back (paper §4.1).
    ``origin_hint`` names the component's origin server (§7: clients share
    "the name of the mobile object's origin server"), consulted when a
    registry has no forwarding information of its own.

    ``verify=False`` lets the *first* (local) registry answer straight from
    its forwarding table without walking the chain — the fast path behind
    the paper's observation that the RPC attribute is "a very thin wrapper
    of a standard RMI call".  A stale answer then surfaces as
    ``NoSuchObjectError`` at invocation time, after which callers re-find
    with ``verify=True``.  Chain hops always verify (a walk terminates only
    at the node actually hosting the component).
    """

    name: str
    hops: tuple[str, ...] = ()
    origin_hint: str = ""
    verify: bool = True


@dataclass(frozen=True)
class MoveRequest:
    """Ask the node currently hosting ``name`` to ship it to ``target``.

    ``lock_token`` proves the requester holds the object's move lock when
    locking is in force (empty string when the caller runs unlocked).

    ``alternates`` names additional acceptable targets for a **hedged
    write**: a host shipping a large (streamed) object may stream it
    speculatively to ``target`` and every alternate, commit whichever
    finishes staging first, and abort the rest — the reply then names the
    target that actually won.  Empty (the default) keeps the paper's
    single-target semantics exactly.
    """

    name: str
    target: str
    lock_token: str = ""
    alternates: tuple[str, ...] = ()


@dataclass(frozen=True)
class ObjectTransfer:
    """Host → target: a weakly-migrated object.

    Weak migration ships heap state only (paper §3.5): the class descriptor
    plus the marshalled ``__dict__``/``__getstate__`` of the instance.  The
    class descriptor may be omitted when the sender believes the receiver
    caches the class (``class_hash`` lets the receiver validate; a cache
    miss makes it pull the class from ``origin``).
    """

    name: str
    class_name: str
    state_blob: bytes
    class_desc: "object | None"  # repro.rmi.classdesc.ClassDescriptor | None
    class_hash: str
    origin: str                  # node the object departed
    transfer_id: str             # dedup token: retries must not double-apply
    shared: bool = True          # public (lockable) vs private object


@dataclass(frozen=True)
class TransferPrepare:
    """Phase one of a streamed transfer: reserve a staging slot.

    Carries everything :class:`ObjectTransfer` carries *except* the state
    blob, which follows as :class:`TransferChunk` slices.  PREPARE is
    idempotent per ``transfer_id`` (a retransmission re-reserves the same
    slot) and reserves only *staging* space: nothing touches the object
    store, the registry, or the lock manager until TRANSFER_COMMIT, so a
    partially streamed transfer can never materialize an object.

    ``total_bytes``/``chunk_count`` let the receiver verify completeness
    at commit; ``ttl_ms`` bounds how long an orphaned staging entry (its
    sender died mid-stream) survives before the staging GC reaps it.
    """

    name: str
    class_name: str
    class_desc: "object | None"  # ClassDescriptor when the receiver lacks it
    class_hash: str
    origin: str
    transfer_id: str
    total_bytes: int
    chunk_count: int
    shared: bool = True
    ttl_ms: float = 30_000.0


@dataclass(frozen=True)
class TransferChunk:
    """One slice of a streamed transfer's marshalled state.

    ``data`` is a zero-copy ``memoryview`` slice over the sender's state
    blob — chunking never re-copies the blob on the send path.  Pickling
    (see ``__reduce__``) wraps the view in a *transient*
    :class:`pickle.PickleBuffer`, which protocol 5 serializes in-band
    straight from the original bytes; the receiver then sees plain
    ``bytes``.  The PickleBuffer must not live on the dataclass itself:
    it holds a buffer export on the view, and a garbage-collected cycle
    containing an exported memoryview crashes CPython's ``tp_clear`` —
    creating it only for the duration of the dump keeps the resident
    payload export-free.  On the in-process simulated network the payload
    crosses by reference; :meth:`data_bytes` normalizes either form.
    """

    transfer_id: str
    index: int
    data: "object"  # memoryview on the send path; bytes after the wire

    def __reduce__(self):
        data = self.data
        if isinstance(data, memoryview):
            data = pickle.PickleBuffer(data)
        return (TransferChunk, (self.transfer_id, self.index, data))

    def data_bytes(self) -> bytes:
        """The chunk payload as ``bytes``, whatever form it arrived in."""
        data = self.data
        if isinstance(data, bytes):
            return data
        if isinstance(data, memoryview):
            return data.tobytes()
        return bytes(data)


@dataclass(frozen=True)
class TransferCommit:
    """Phase two: atomically unpack, register, and ack a staged transfer.

    Idempotent per ``transfer_id``: a retransmitted COMMIT (lost ack)
    finds the id in the mover's seen-set and re-acks without re-applying.
    """

    transfer_id: str
    name: str


@dataclass(frozen=True)
class TransferAbort:
    """Discard a staged (or still-streaming) transfer.

    Sent explicitly by the source when its stream failed mid-flight, and
    by a hedged write to the losing target.  Harmless when the id is
    unknown (the staging GC may have reaped it first) — but **refused**
    when the id already committed: the object materialized, so the source
    must treat the transfer as delivered, not abandoned.
    """

    transfer_id: str
    reason: str = ""


@dataclass(frozen=True)
class MoveComplete:
    """Host → original requester: the move finished; object now at ``location``."""

    name: str
    location: str


@dataclass(frozen=True)
class ClassRequest:
    """Pull a class definition from a node (conditional fetch).

    When ``if_hash`` names the version the requester already caches, the
    reply is the small marker ``"unchanged"`` instead of the full source —
    the conditional-fetch pattern that makes warm COD binds cost one round
    trip (paper Table 3's amortized TCOD row).
    """

    class_name: str
    if_hash: str = ""


@dataclass(frozen=True)
class ClassPush:
    """Push a class definition to a node (REV direction).

    A *probe* (``desc is None``) asks "do you cache ``source_hash``?" and the
    reply is a boolean; a push with a body installs the descriptor.

    ``only_if_missing`` makes a body-carrying push *conditional*: the
    receiver installs the descriptor only when it does not already cache
    ``source_hash``.  Batched pushes ride this — a single BATCH frame
    carries the probe and the conditional body, collapsing the warm and
    cold paths into one round trip (at the cost of the body always
    crossing the wire).
    """

    class_name: str
    source_hash: str
    desc: "object | None" = None  # ClassDescriptor when carrying the body
    only_if_missing: bool = False


@dataclass(frozen=True)
class InstantiateRequest:
    """Create an object of an already-cached class and register it.

    The REV/COD *factory* semantics of §4.2: the class moved first (via
    ClassPush or ClassRequest), then the target instantiates.
    """

    class_name: str
    name: str
    args_blob: bytes
    shared: bool = True


@dataclass(frozen=True)
class LockRequestPayload:
    """Stay/move lock acquisition for a mobile object (paper §4.4).

    The request carries the mobility attribute's computation ``target``; the
    lock manager grants a *stay* lock if the object is already there and a
    *move* lock otherwise.

    ``wait_ms`` bounds the *server-side* queue wait.  A deadline-bounded
    chase fills it with the caller's remaining budget at each hop (and the
    dispatch deadline riding the message header caps it again at the lock
    manager), so a request that chases a moving object never waits longer
    in total than the caller allowed — hop count notwithstanding.
    """

    name: str
    target: str
    requester: str
    wait_ms: float | None = None


@dataclass(frozen=True)
class UnlockPayload:
    """Release a previously granted lock."""

    name: str
    token: str


@dataclass(frozen=True)
class LockConfirm:
    """Acknowledge receipt of a *provisional* (leased) lock grant.

    A grant replied within roughly one-way transit of its caller's
    deadline expiry can be dropped by the abandoned waiter, leaving the
    lock held forever.  Such at-risk grants are issued provisionally
    with a short unacknowledged-grant TTL; this message is the caller
    saying "I did receive it" before the lock manager's lease reaper
    auto-releases (see :class:`repro.runtime.locks.LockManager`).
    """

    name: str
    token: str


@dataclass(frozen=True)
class AgentHopPayload:
    """One-way mobile-agent hop: agent state + remaining itinerary.

    MA is "multi-hop and asynchronous" (§3.5): each hop is a cast, the
    receiver runs the agent's arrival hook, then forwards it to the next
    namespace on the itinerary.
    """

    name: str
    class_name: str
    state_blob: bytes
    class_desc: "object | None"
    class_hash: str
    origin: str                       # node the agent departed (class pulls)
    tour_id: str                      # dedup token for retransmitted hops
    itinerary: tuple[str, ...] = ()   # remaining namespaces to visit
    shared: bool = False              # agents default to private objects


@dataclass(frozen=True)
class AgentLaunch:
    """Ask the node hosting ``name`` to start an itinerary tour.

    Synchronous control message; the tour itself proceeds asynchronously
    via AGENT_HOP casts.
    """

    name: str
    itinerary: tuple[str, ...]
    lock_token: str = ""


@dataclass(frozen=True)
class LoadQuery:
    """Ask a node for its current load metric (migration policies use this)."""


@dataclass(frozen=True)
class JoinRequest:
    """Membership: a newcomer presents itself to a seed node.

    ``endpoint`` is the joiner's dialable ``(host, port)`` — extended
    to ``(host, port, uds)`` when the joiner also listens on a
    same-host Unix socket — or ``None`` when the transport needs no
    addressing (the in-process simulated network).  The seed records
    the newcomer in its address book, answers with its own roster
    (``{node_id: (host, port[, uds]) | None}``), and ANNOUNCEs the
    newcomer to the other members it knows.
    """

    node_id: str
    endpoint: tuple | None = None


@dataclass(frozen=True)
class AnnouncePayload:
    """Membership: one node's roster, pushed to peers on every join.

    Receivers merge: unknown members are added to the address book (a
    changed endpoint replaces the stale entry — the re-joining peer's
    fresh address wins), known ones are refreshed.  Merging is
    idempotent, and repeated delivery is harmless.  Endpoint conflicts
    resolve last-write-wins: rosters carry no per-node incarnation
    number yet, so a *stale* roster delivered after a fresher one can
    temporarily revert a re-joined peer's endpoint until the next
    announcement or contact (epoching them is a ROADMAP follow-up).
    """

    members: dict = field(default_factory=dict)  # node_id -> (host, port) | None


@dataclass(frozen=True)
class RegistrySnapshot:
    """Diagnostic dump of a node's registry (bindings + forwarding table)."""

    bindings: dict = field(default_factory=dict)
    forwarding: dict = field(default_factory=dict)
    class_names: tuple[str, ...] = ()
