"""Marshalling: by-value data, by-reference stubs.

Arguments, results, and migrated object state cross namespaces as bytes, so
even on the in-process simulated network a remote call cannot mutate the
caller's objects — the semantics a real network imposes.

Two special cases ride on pickle's *persistent id* hook:

* **Stubs** marshal as their :class:`~repro.rmi.stub.RemoteRef` only and are
  re-attached to the receiving namespace's transport on unmarshal, exactly
  like Java RMI stubs.
* **Mobile instances** (objects of exec-loaded, cache-cloned classes) refuse
  to marshal implicitly: moving an object is a runtime operation with
  registry and locking consequences, so it must go through the mover, never
  hide inside an argument list.  (Java RMI's analogue: a non-Serializable,
  non-exported object.)

Hot-path discipline (PR 8): a Python-level ``persistent_id`` hook is
consulted for *every object* the C pickler visits, and building a fresh
``Pickler`` + ``BytesIO`` per call costs more than encoding a small
argument list.  So :func:`marshal` first checks whether the value is a
plain primitive tree — no instance can hide a stub or a mobile object
there — and takes the pure-C ``pickle.dumps`` path; everything else goes
through a per-thread *reused* pickler (memo cleared, buffer rewound)
instead of fresh objects per call.  Out-of-band buffer handling for
``*_blob``-bearing payloads lives one layer down in
:mod:`repro.net.wirecodec`, which ships ``PickleBuffer`` exports as
separate writev segments.
"""

from __future__ import annotations

import io
import pickle
import threading
from typing import Any, Callable

from repro.errors import MarshalError
from repro.rmi.stub import RemoteRef, Stub, detached_stub

#: Factory used to re-attach stubs on unmarshal: ``ref -> live Stub``.
StubFactory = Callable[[RemoteRef], Stub]

#: Attribute stamped onto exec-loaded mobile classes by the class cache, so
#: the marshaller can recognize their instances.
MOBILE_CLASS_MARKER = "__mage_mobile_class__"


class _MagePickler(pickle.Pickler):
    def persistent_id(self, obj: Any) -> Any:  # noqa: D102 (pickle hook)
        if isinstance(obj, Stub):
            return ("stub", obj.ref)
        if getattr(type(obj), MOBILE_CLASS_MARKER, False):
            raise MarshalError(
                f"mobile object of class {type(obj).__name__!r} cannot be "
                "marshalled by value; move it with the MAGE runtime instead"
            )
        return None


class _MageUnpickler(pickle.Unpickler):
    def __init__(self, file: io.BytesIO, stub_factory: StubFactory) -> None:
        super().__init__(file)
        self._stub_factory = stub_factory

    def persistent_load(self, pid: Any) -> Any:  # noqa: D102 (pickle hook)
        if isinstance(pid, tuple) and len(pid) == 2 and pid[0] == "stub":
            return self._stub_factory(pid[1])
        raise MarshalError(f"unknown persistent id in stream: {pid!r}")


# Values that can never be (or contain) a Stub or a mobile instance, so
# the persistent_id hook has nothing to say about them.
_PLAIN_SCALARS = frozenset({str, int, float, bool, bytes, type(None)})
_PLAIN_MAX_ITEMS = 64
_PLAIN_MAX_DEPTH = 4


def _plain_safe(value: Any, depth: int = 0) -> bool:
    """True when ``value`` is a primitive tree (exact builtin types only).

    Exact-type checks on purpose: a *subclass* of ``str`` or ``tuple``
    could smuggle arbitrary state, so it takes the guarded path.
    """
    t = type(value)
    if t in _PLAIN_SCALARS:
        return True
    if depth >= _PLAIN_MAX_DEPTH:
        return False
    if t is tuple or t is list:
        if len(value) > _PLAIN_MAX_ITEMS:
            return False
        return all(_plain_safe(item, depth + 1) for item in value)
    if t is dict:
        if len(value) > _PLAIN_MAX_ITEMS:
            return False
        return all(
            type(key) in _PLAIN_SCALARS and _plain_safe(item, depth + 1)
            for key, item in value.items()
        )
    return False


def _plain_immutable(value: Any, depth: int = 0) -> bool:
    """True when ``value`` is an *immutable* primitive tree.

    Stricter than :func:`_plain_safe`: list and dict nodes are rejected
    (they pass the persistent-id check but are mutable), so a value
    passing here can be handed across the in-process bypass boundary
    without any copy — neither side can mutate what the other sees.
    """
    t = type(value)
    if t in _PLAIN_SCALARS:
        return True
    if t is not tuple or depth >= _PLAIN_MAX_DEPTH:
        return False
    if len(value) > _PLAIN_MAX_ITEMS:
        return False
    return all(_plain_immutable(item, depth + 1) for item in value)


def isolate(value: Any, stub_factory: StubFactory | None = None) -> Any:
    """A by-value isolated view of ``value`` (the bypass copy boundary).

    Immutable primitive trees are returned as-is — sharing them is
    indistinguishable from copying.  Everything else pays the same
    pickle round trip its bytes would on the wire, re-attaching stubs
    via ``stub_factory`` exactly like :func:`unmarshal` (and raising
    :class:`MarshalError` for mobile instances, exactly like
    :func:`marshal`).
    """
    if _plain_immutable(value):
        return value
    return unmarshal(marshal(value), stub_factory)


class _MarshalScratch(threading.local):
    """Per-thread reused pickler + growable buffer."""

    def __init__(self) -> None:
        self.reset()
        self.busy = False

    def reset(self) -> None:
        self.buffer = io.BytesIO()
        self.pickler = _MagePickler(self.buffer, protocol=pickle.HIGHEST_PROTOCOL)


_scratch = _MarshalScratch()

# Single-slot (value identity -> blob size) cache: the common pattern is
# marshal(value) followed by marshalled_size(value) for bandwidth
# accounting, which used to serialize everything twice.  The strong
# reference in the slot makes the identity check sound (no id reuse).
_last_sized: "tuple[Any, int] | None" = None


def marshal(value: Any) -> bytes:
    """Serialize ``value`` for the wire.

    Raises :class:`MarshalError` for unpicklable values and for mobile
    instances (which must travel via the mover).
    """
    global _last_sized
    if _plain_safe(value):
        blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
        _last_sized = (value, len(blob))
        return blob
    scratch = _scratch
    if scratch.busy:
        # Reentrant marshal (a payload's __reduce__ marshalling nested
        # state) — fall back to fresh objects rather than corrupting the
        # in-flight stream.
        return _marshal_fresh(value)
    scratch.busy = True
    try:
        buffer = scratch.buffer
        buffer.seek(0)
        buffer.truncate()
        pickler = scratch.pickler
        pickler.clear_memo()
        try:
            pickler.dump(value)
        except MarshalError:
            scratch.reset()
            raise
        except Exception as exc:
            scratch.reset()
            raise MarshalError(
                f"cannot marshal {type(value).__name__}: {exc}") from exc
        blob = buffer.getvalue()
    finally:
        scratch.busy = False
    _last_sized = (value, len(blob))
    return blob


def _marshal_fresh(value: Any) -> bytes:
    buffer = io.BytesIO()
    try:
        _MagePickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(value)
    except MarshalError:
        raise
    except Exception as exc:
        raise MarshalError(f"cannot marshal {type(value).__name__}: {exc}") from exc
    return buffer.getvalue()


def unmarshal(blob: bytes, stub_factory: StubFactory | None = None) -> Any:
    """Deserialize wire bytes, re-attaching stubs via ``stub_factory``.

    Without a factory, embedded stubs come back *detached* (usable as refs,
    raising if invoked).
    """
    factory = stub_factory if stub_factory is not None else detached_stub
    try:
        return _MageUnpickler(io.BytesIO(blob), factory).load()
    except MarshalError:
        raise
    except Exception as exc:
        raise MarshalError(f"cannot unmarshal {len(blob)}-byte blob: {exc}") from exc


def marshalled_size(value: Any) -> int:
    """Size in bytes of ``value`` on the wire (for bandwidth accounting).

    When ``value`` is the object most recently marshalled (by identity),
    the size is read from the cached slot instead of serializing again.
    """
    cached = _last_sized
    if cached is not None and cached[0] is value:
        return cached[1]
    return len(marshal(value))


def marshal_call(args: "tuple[Any, ...]", kwargs: "dict[str, Any]") -> bytes:
    """Marshal an argument list for an INVOKE request."""
    return marshal((tuple(args), dict(kwargs)))


def unmarshal_call(
    blob: bytes,
    stub_factory: StubFactory | None = None,
    *,
    context: str = "",
) -> "tuple[tuple[Any, ...], dict[str, Any]]":
    """Inverse of :func:`marshal_call`.

    ``context`` (e.g. ``"INVOKE counter.incr on node-b from node-a"``)
    is folded into the :class:`MarshalError` so a malformed call blob
    names the message kind and nodes involved, not just its shape.
    """
    try:
        value = unmarshal(blob, stub_factory)
    except MarshalError as exc:
        if context:
            raise MarshalError(f"{exc} [{context}]") from exc
        raise
    if (
        not isinstance(value, tuple)
        or len(value) != 2
        or not isinstance(value[0], tuple)
        or not isinstance(value[1], dict)
    ):
        detail = f" [{context}]" if context else ""
        raise MarshalError(
            "call blob did not contain an (args, kwargs) pair: got "
            f"{type(value).__name__}{detail}"
        )
    return value
