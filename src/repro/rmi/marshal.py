"""Marshalling: by-value data, by-reference stubs.

Arguments, results, and migrated object state cross namespaces as bytes, so
even on the in-process simulated network a remote call cannot mutate the
caller's objects — the semantics a real network imposes.

Two special cases ride on pickle's *persistent id* hook:

* **Stubs** marshal as their :class:`~repro.rmi.stub.RemoteRef` only and are
  re-attached to the receiving namespace's transport on unmarshal, exactly
  like Java RMI stubs.
* **Mobile instances** (objects of exec-loaded, cache-cloned classes) refuse
  to marshal implicitly: moving an object is a runtime operation with
  registry and locking consequences, so it must go through the mover, never
  hide inside an argument list.  (Java RMI's analogue: a non-Serializable,
  non-exported object.)
"""

from __future__ import annotations

import io
import pickle
from typing import Any, Callable

from repro.errors import MarshalError
from repro.rmi.stub import RemoteRef, Stub, detached_stub

#: Factory used to re-attach stubs on unmarshal: ``ref -> live Stub``.
StubFactory = Callable[[RemoteRef], Stub]

#: Attribute stamped onto exec-loaded mobile classes by the class cache, so
#: the marshaller can recognize their instances.
MOBILE_CLASS_MARKER = "__mage_mobile_class__"


class _MagePickler(pickle.Pickler):
    def persistent_id(self, obj: Any):  # noqa: D102 (pickle hook)
        if isinstance(obj, Stub):
            return ("stub", obj.ref)
        if getattr(type(obj), MOBILE_CLASS_MARKER, False):
            raise MarshalError(
                f"mobile object of class {type(obj).__name__!r} cannot be "
                "marshalled by value; move it with the MAGE runtime instead"
            )
        return None


class _MageUnpickler(pickle.Unpickler):
    def __init__(self, file: io.BytesIO, stub_factory: StubFactory) -> None:
        super().__init__(file)
        self._stub_factory = stub_factory

    def persistent_load(self, pid: Any) -> Any:  # noqa: D102 (pickle hook)
        if isinstance(pid, tuple) and len(pid) == 2 and pid[0] == "stub":
            return self._stub_factory(pid[1])
        raise MarshalError(f"unknown persistent id in stream: {pid!r}")


def marshal(value: Any) -> bytes:
    """Serialize ``value`` for the wire.

    Raises :class:`MarshalError` for unpicklable values and for mobile
    instances (which must travel via the mover).
    """
    buffer = io.BytesIO()
    try:
        _MagePickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(value)
    except MarshalError:
        raise
    except Exception as exc:
        raise MarshalError(f"cannot marshal {type(value).__name__}: {exc}") from exc
    return buffer.getvalue()


def unmarshal(blob: bytes, stub_factory: StubFactory | None = None) -> Any:
    """Deserialize wire bytes, re-attaching stubs via ``stub_factory``.

    Without a factory, embedded stubs come back *detached* (usable as refs,
    raising if invoked).
    """
    factory = stub_factory if stub_factory is not None else detached_stub
    try:
        return _MageUnpickler(io.BytesIO(blob), factory).load()
    except MarshalError:
        raise
    except Exception as exc:
        raise MarshalError(f"cannot unmarshal {len(blob)}-byte blob: {exc}") from exc


def marshalled_size(value: Any) -> int:
    """Size in bytes of ``value`` on the wire (for bandwidth accounting)."""
    return len(marshal(value))


def marshal_call(args: tuple, kwargs: dict) -> bytes:
    """Marshal an argument list for an INVOKE request."""
    return marshal((tuple(args), dict(kwargs)))


def unmarshal_call(blob: bytes, stub_factory: StubFactory | None = None) -> tuple[tuple, dict]:
    """Inverse of :func:`marshal_call`."""
    value = unmarshal(blob, stub_factory)
    if (
        not isinstance(value, tuple)
        or len(value) != 2
        or not isinstance(value[0], tuple)
        or not isinstance(value[1], dict)
    ):
        raise MarshalError("call blob did not contain an (args, kwargs) pair")
    return value
