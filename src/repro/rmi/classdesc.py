"""Class descriptors: shipping class definitions between namespaces.

The paper moves Java ``.class`` files between JVMs and caches them: "MAGE
currently clones classes, leaving behind a copy of each object's class that
visited a particular node" (§4.2).  Python has no class files, so we ship
**source**: a :class:`ClassDescriptor` carries the class's source text and
enough naming to re-``exec`` it at the destination.

Fidelity notes:

* Each namespace ``exec``s its own clone, so class-level ("static") fields
  are independent per namespace — reproducing the paper's stated limitation
  that static fields get no coherency.
* Symbolic references in the source (imports, module helpers, base classes)
  resolve against the defining module's globals at load time, the analogue
  of resolving a class file against the target's classpath.
* Descriptors are content-hashed; the hash keys the per-node class cache,
  so re-shipping an already-cached class is skipped (the §4.2 optimization,
  ablatable in the benches).
"""

from __future__ import annotations

import hashlib
import inspect
import sys
import textwrap
from dataclasses import dataclass

from repro.errors import ClassTransferError
from repro.rmi.marshal import MOBILE_CLASS_MARKER


@dataclass(frozen=True)
class ClassDescriptor:
    """A transportable class definition."""

    class_name: str   # simple name, also the name bound by ``exec``
    module: str       # defining module (globals provider at load time)
    source: str       # dedented source text of the class statement
    source_hash: str  # sha256 of the source, cache key

    def __post_init__(self) -> None:
        if not self.class_name.isidentifier():
            raise ClassTransferError(f"not a class name: {self.class_name!r}")

    def __str__(self) -> str:
        return f"<classdesc {self.class_name} #{self.source_hash[:8]}>"


def _hash_source(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def describe_class(cls: type) -> ClassDescriptor:
    """Build the descriptor that ships ``cls`` to another namespace.

    Requires retrievable source (``inspect.getsource``); builtins and
    C-implemented classes are not mobile — the paper's analogue would be
    trying to migrate a JVM-internal class.
    """
    if not isinstance(cls, type):
        raise ClassTransferError(f"expected a class, got {type(cls).__name__}")
    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError) as exc:
        raise ClassTransferError(
            f"class {cls.__name__!r} has no retrievable source; "
            "only source-backed classes are mobile"
        ) from exc
    return ClassDescriptor(
        class_name=cls.__name__,
        module=cls.__module__,
        source=source,
        source_hash=_hash_source(source),
    )


def load_class(desc: ClassDescriptor, namespace_id: str) -> type:
    """``exec`` a descriptor into a fresh clone for ``namespace_id``.

    The clone's ``__module__`` is rewritten to a synthetic per-namespace
    name so that (a) two namespaces' clones are distinguishable and (b)
    accidental pickle-by-reference of mobile instances fails loudly instead
    of silently resolving to the wrong class.
    """
    env = _module_globals(desc.module)
    local_env = dict(env)
    try:
        code = compile(desc.source, f"<mobile:{desc.class_name}>", "exec")
        exec(code, local_env)  # noqa: S102 — the whole point is code mobility
    except Exception as exc:
        raise ClassTransferError(
            f"loading class {desc.class_name!r} failed: {exc}"
        ) from exc
    cls = local_env.get(desc.class_name)
    if not isinstance(cls, type):
        raise ClassTransferError(
            f"source for {desc.class_name!r} did not define that class"
        )
    cls.__module__ = f"repro._mobile.{namespace_id}.{desc.source_hash[:12]}"
    # Marker consumed by repro.rmi.marshal: instances of this clone must not
    # be marshalled by value.
    setattr(cls, MOBILE_CLASS_MARKER, True)
    setattr(cls, "__mage_source_hash__", desc.source_hash)
    return cls


def _module_globals(module_name: str) -> dict:
    """Globals environment that the shipped source resolves names against.

    When the defining module is loaded here, its globals are the
    classpath the source resolves against.  A class arriving from
    **another process** may name a module this process never imported
    (the sending test file, a script run as ``__main__``); it then
    resolves against builtins only — a dependency-free class loads
    cleanly, and one with unresolved symbolic references fails at
    ``exec`` with the usual :class:`ClassTransferError`, naming the
    missing symbol instead of refusing wholesale.
    """
    module = sys.modules.get(module_name)
    if module is None:
        return {"__builtins__": __builtins__}
    return dict(vars(module))


def is_mobile_instance(obj: object) -> bool:
    """True if ``obj``'s class came from :func:`load_class`."""
    return bool(getattr(type(obj), MOBILE_CLASS_MARKER, False))
