"""Server-side invocation dispatch.

The invoker is the receiving half of an RMI call: it resolves the servant
named by an :class:`~repro.rmi.protocol.InvokeRequest`, unmarshals the
arguments against the local namespace (re-attaching any stubs), runs the
method, and marshals the result.

Servant exceptions are wrapped in
:class:`~repro.errors.RemoteInvocationError` with the remote traceback
attached, so callers can diagnose failures without access to the remote
namespace.  Errors of the library's own :class:`~repro.errors.MageError`
family raised *by the dispatch machinery* (e.g. ``NoSuchObjectError``)
propagate unwrapped — they are protocol semantics, not application bugs.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable

from repro.errors import NoSuchObjectError, RemoteInvocationError
from repro.rmi.marshal import StubFactory, marshal, unmarshal_call
from repro.rmi.protocol import InvokeRequest

#: Resolves a servant name to the live object, or raises ``NoSuchObjectError``.
ServantLookup = Callable[[str], Any]


class Invoker:
    """Dispatches INVOKE requests onto local servants.

    One instance lives on every node's dispatch path; with the transport
    coalescing concurrent INVOKEs into aggregated frames, several pool
    workers share it at once — it is deliberately immutable after
    construction (``__slots__`` keeps accidental per-request state off).
    """

    __slots__ = ("node_id", "_servant_lookup", "_stub_factory")

    def __init__(self, node_id: str, servant_lookup: ServantLookup,
                 stub_factory: StubFactory) -> None:
        self.node_id = node_id
        self._servant_lookup = servant_lookup
        self._stub_factory = stub_factory

    def handle(self, request: InvokeRequest) -> bytes:
        """Execute the request; returns the marshalled result."""
        servant = self._servant_lookup(request.name)
        method = self._resolve_method(servant, request.name, request.method)
        args, kwargs = unmarshal_call(
            request.args_blob, self._stub_factory,
            context=f"INVOKE {request.name}.{request.method} on {self.node_id}",
        )
        return marshal(self._call(servant, request.method, method, args, kwargs))

    def dispatch(self, name: str, method_name: str, args: "tuple[Any, ...]",
                 kwargs: "dict[str, Any]") -> Any:
        """Run one invocation on a live servant, skipping the byte layer.

        The in-process bypass entry (:mod:`repro.rmi.bypass`): same
        servant lookup, method resolution, and exception envelope as
        :meth:`handle`, but the arguments arrive already isolated and the
        raw result is returned for the *caller* side to isolate — no
        marshal/unmarshal here.
        """
        servant = self._servant_lookup(name)
        method = self._resolve_method(servant, name, method_name)
        return self._call(servant, method_name, method, args, kwargs)

    @staticmethod
    def _call(servant: Any, method_name: str, method: Callable[..., Any],
              args: "tuple[Any, ...]", kwargs: "dict[str, Any]") -> Any:
        try:
            return method(*args, **kwargs)
        except Exception as exc:
            raise RemoteInvocationError(
                f"{type(servant).__name__}.{method_name} raised "
                f"{type(exc).__name__}: {exc}",
                remote_traceback=traceback.format_exc(),
            ) from exc

    def _resolve_method(self, servant: Any, name: str,
                        method_name: str) -> Callable[..., Any]:
        if method_name.startswith("_"):
            raise NoSuchObjectError(
                f"{name}.{method_name} (private methods are not remote)",
                self.node_id,
            )
        method = getattr(servant, method_name, None)
        if not callable(method):
            raise NoSuchObjectError(
                f"{name}.{method_name}", self.node_id
            )
        return method
