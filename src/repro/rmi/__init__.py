"""The RMI substrate MAGE is layered on.

The paper builds MAGE on Java RMI; this package is the from-scratch Python
equivalent: marshalling with by-value data and by-reference stubs
(:mod:`~repro.rmi.marshal`), transportable class definitions
(:mod:`~repro.rmi.classdesc`), per-node registries and ``Naming``
(:mod:`~repro.rmi.registry`, :mod:`~repro.rmi.naming`), dynamic proxies
(:mod:`~repro.rmi.stub`), and server-side dispatch
(:mod:`~repro.rmi.invoker`).
"""

from repro.rmi.classdesc import ClassDescriptor, describe_class, is_mobile_instance, load_class
from repro.rmi.client import RmiClient
from repro.rmi.invoker import Invoker
from repro.rmi.marshal import marshal, marshal_call, marshalled_size, unmarshal, unmarshal_call
from repro.rmi.naming import Naming
from repro.rmi.registry import RmiRegistry
from repro.rmi.stub import RemoteRef, Stub, detached_stub, interface_methods

__all__ = [
    "ClassDescriptor",
    "Invoker",
    "Naming",
    "RemoteRef",
    "RmiClient",
    "RmiRegistry",
    "Stub",
    "describe_class",
    "detached_stub",
    "interface_methods",
    "is_mobile_instance",
    "load_class",
    "marshal",
    "marshal_call",
    "marshalled_size",
    "unmarshal",
    "unmarshal_call",
]
