"""The plain RMI registry.

One per node: a thread-safe name → :class:`~repro.rmi.stub.RemoteRef` table
with Java-RMI-shaped semantics (``bind`` refuses to overwrite, ``rebind``
replaces, ``lookup`` of an unbound name raises).  The MAGE registry of
§4.1 *wraps* this — forwarding addresses and class tracking live in
:mod:`repro.runtime.registry`, not here.
"""

from __future__ import annotations

import threading

from repro.errors import AlreadyBoundError, NotBoundError
from repro.rmi.stub import RemoteRef
from repro.util.ids import validate_component_name


class RmiRegistry:
    """Name → remote-reference bindings for a single node."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._bindings: dict[str, RemoteRef] = {}
        self._lock = threading.RLock()

    def bind(self, name: str, ref: RemoteRef) -> None:
        """Publish ``ref`` under ``name``; refuses to overwrite."""
        validate_component_name(name)
        with self._lock:
            if name in self._bindings:
                raise AlreadyBoundError(name)
            self._bindings[name] = ref

    def rebind(self, name: str, ref: RemoteRef) -> None:
        """Publish ``ref`` under ``name``, replacing any existing binding."""
        validate_component_name(name)
        with self._lock:
            self._bindings[name] = ref

    def unbind(self, name: str) -> None:
        """Remove the binding for ``name``; raises if absent."""
        with self._lock:
            if name not in self._bindings:
                raise NotBoundError(name)
            del self._bindings[name]

    def lookup(self, name: str) -> RemoteRef:
        """Resolve ``name``; raises :class:`NotBoundError` if unbound."""
        with self._lock:
            ref = self._bindings.get(name)
        if ref is None:
            raise NotBoundError(name)
        return ref

    def contains(self, name: str) -> bool:
        """Whether ``name`` currently has a binding."""
        with self._lock:
            return name in self._bindings

    def list_bindings(self) -> list[str]:
        """All bound names, sorted."""
        with self._lock:
            return sorted(self._bindings)

    def snapshot(self) -> dict[str, RemoteRef]:
        """Copy of the binding table (diagnostics)."""
        with self._lock:
            return dict(self._bindings)
