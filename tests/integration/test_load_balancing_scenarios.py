"""Load-driven migration with synthetic load dynamics and discovery."""

import pytest

from repro.cluster.load import OscillatingProfile, RampProfile
from repro.core.policy import LoadBalancing
from repro.bench.workloads import Counter


class TestWithProfiles:
    def test_service_flees_a_ramping_host(self, trio):
        """§1: 'a host whose CPU was pegged may become idle' — and the
        converse: the service leaves a host whose load keeps climbing."""
        trio["alpha"].register("svc", Counter())
        ramp = RampProfile(start=0.0, step=60.0)
        trio["alpha"].load_monitor.use_profile(ramp)
        trio["beta"].set_load(10.0)
        trio["gamma"].set_load(20.0)
        policy = LoadBalancing("svc", candidates=["beta", "gamma"],
                               threshold=100.0,
                               runtime=trio["alpha"].namespace)
        locations = []
        for _ in range(4):
            policy.bind()
            locations.append(policy.cloc)
        # The ramp crosses the threshold and the service settles on beta.
        assert locations[0] == "alpha"       # still calm
        assert locations[-1] == "beta"       # fled to the least loaded
        assert policy.migrations == 1        # and then stayed put

    def test_oscillating_load_causes_bounded_migration(self, trio):
        trio["alpha"].register("svc", Counter())
        trio["alpha"].load_monitor.use_profile(
            OscillatingProfile(lo=0.0, hi=300.0, period_queries=4)
        )
        trio["beta"].set_load(50.0)
        trio["gamma"].set_load(50.0)
        policy = LoadBalancing("svc", candidates=["beta", "gamma"],
                               threshold=150.0,
                               runtime=trio["alpha"].namespace)
        for _ in range(6):
            policy.bind()
        # It left alpha at most once (beta/gamma stay calm afterwards).
        assert policy.migrations <= 1
        assert policy.cloc in ("alpha", "beta", "gamma")


class TestWithDiscovery:
    def test_discovery_driven_candidates(self, quad):
        """Pick candidates dynamically from live cluster membership."""
        quad["alpha"].register("svc", Counter())
        quad["alpha"].set_load(500.0)
        quad["beta"].set_load(90.0)
        quad["gamma"].set_load(10.0)
        quad["delta"].set_load(30.0)
        candidates = quad["alpha"].discovery.alive_peers()
        policy = LoadBalancing("svc", candidates=candidates, threshold=100.0,
                               runtime=quad["alpha"].namespace)
        policy.bind()
        assert policy.cloc == "gamma"

    def test_crashed_candidate_is_survivable(self, trio):
        """A dead candidate must fail the bind loudly, not hang."""
        from repro.errors import NodeUnreachableError

        trio["alpha"].register("svc", Counter())
        trio["alpha"].set_load(500.0)
        trio["beta"].set_load(1.0)
        trio.crash("beta")
        policy = LoadBalancing("svc", candidates=["beta"], threshold=100.0,
                               runtime=trio["alpha"].namespace)
        with pytest.raises(NodeUnreachableError):
            policy.bind()
        # The component is still safely at home.
        assert trio["alpha"].namespace.store.contains("svc")

    def test_state_survives_the_whole_day(self, trio):
        """However much the policy shuffles the service, no request lost."""
        trio["alpha"].register("svc", Counter())
        policy = LoadBalancing("svc", candidates=["beta", "gamma"],
                               threshold=100.0,
                               runtime=trio["alpha"].namespace)
        schedule = [
            {"alpha": 200, "beta": 10, "gamma": 50},
            {"alpha": 10, "beta": 300, "gamma": 20},
            {"alpha": 10, "beta": 10, "gamma": 400},
            {"alpha": 500, "beta": 400, "gamma": 5},
        ]
        handled = 0
        for loads in schedule:
            for node, value in loads.items():
                trio[node].set_load(value)
            stub = policy.bind()
            handled = stub.increment()
        assert handled == len(schedule)
