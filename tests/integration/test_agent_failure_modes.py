"""Agent failure modes: lost hops, crashed stops, dedup of retransmits.

AGENT_HOP is the system's one fire-and-forget message (§3.5's asynchrony),
so its failure semantics differ from everything else: a lost hop loses the
agent.  These tests pin down exactly that contract — and the behaviours
that must still hold around it.
"""

import pytest

from repro.core.agents import Agent
from repro.errors import ComponentNotFoundError, MageError
from repro.net.conditions import DeterministicLoss
from repro.bench.workloads import Counter


class TestLostHops:
    def test_lost_hop_loses_the_agent_loudly_on_find(self, make_cluster):
        """Best-effort casts: the agent is gone, and finds say so rather
        than pretending."""
        cluster = make_cluster(
            ["alpha", "beta"], loss=DeterministicLoss({"AGENT_HOP": 99}),
        )
        cluster["alpha"].agents.launch(Agent(), "doomed", ("beta",))
        cluster.quiesce()
        assert not cluster["beta"].namespace.store.contains("doomed")
        assert not cluster["alpha"].namespace.store.contains("doomed")
        # alpha's registry optimistically forwarded to beta; the verified
        # walk discovers the truth: nobody has it.
        with pytest.raises(ComponentNotFoundError):
            cluster["alpha"].find("doomed", verify=True)

    def test_synchronous_moves_are_not_best_effort(self, make_cluster):
        """Contrast: the same loss rate cannot lose a MOVE (retried)."""
        cluster = make_cluster(
            ["alpha", "beta"],
            loss=DeterministicLoss({"OBJECT_TRANSFER": 2, "REPLY": 2}),
        )
        cluster["alpha"].register("solid", Counter(5))
        assert cluster["alpha"].namespace.move("solid", "beta") == "beta"
        assert cluster["beta"].stub("solid", location="beta").get() == 5


class TestCrashedStops:
    def test_hop_into_a_crashed_node_strands_the_agent(self, make_cluster):
        cluster = make_cluster(["alpha", "beta", "gamma"])
        cluster.crash("beta")
        cluster["alpha"].agents.launch(Agent(), "traveler",
                                       ("beta", "gamma"))
        cluster.quiesce()
        # The cast could not be delivered; the agent never reached gamma.
        assert not cluster["gamma"].namespace.store.contains("traveler")

    def test_agent_hook_failure_does_not_poison_the_node(self, make_cluster):
        class Faulty(Agent):
            def on_arrival(self, ctx):
                raise RuntimeError("bug in agent code")

        cluster = make_cluster(["alpha", "beta"])
        cluster["alpha"].agents.launch(Faulty(), "faulty", ("beta",))
        cluster.quiesce()
        # The failed arrival is contained; beta keeps serving.
        cluster["alpha"].register("c", Counter())
        assert cluster["alpha"].namespace.move("c", "beta") == "beta"
        assert cluster["beta"].stub("c", location="beta").increment() == 1


class TestDedup:
    def test_duplicate_hop_payload_is_ignored(self, pair):
        """A retransmitted (duplicated) hop must not clone the agent."""
        from repro.rmi.protocol import AgentHopPayload

        alpha = pair["alpha"].namespace
        agent = Counter(3)
        alpha.register("dup", agent, shared=False)
        manager = pair["alpha"].agents
        record = alpha.store.record("dup")
        desc = alpha.mover.descriptor_for(record.obj)
        payload = AgentHopPayload(
            name="dup",
            class_name=desc.class_name,
            state_blob=alpha.mover.pack_state(record.obj),
            class_desc=desc,
            class_hash=desc.source_hash,
            origin="alpha",
            tour_id="fixed-tour",
            itinerary=(),
            shared=False,
        )
        beta_manager = pair["beta"].agents
        beta_manager._on_hop(payload)
        pair["beta"].stub("dup", location="beta").increment()
        beta_manager._on_hop(payload)  # the duplicate
        # State not clobbered back to 3: the duplicate was dropped.
        assert pair["beta"].stub("dup", location="beta").get() == 4
