"""Concurrent invocations on shared mobile objects (§4.4's raison d'être)."""

import threading

import pytest

from repro.core.models import CLE, COD, GREV
from repro.errors import LockError, LockMovedError, LockTimeoutError, MageError
from repro.bench.workloads import Counter


class TestConcurrentLocking:
    def test_two_attributes_different_targets_do_not_interleave(self, trio):
        """The §4.4 scenario: two invocations apply different attributes
        naming different targets; locking serializes the moves so the
        object is neither cloned nor lost."""
        trio["alpha"].register("C", Counter(), shared=True)
        errors: list[Exception] = []
        done = threading.Barrier(3)

        def invoker(node, target_model):
            try:
                attr = target_model()
                successes = 0
                attempts = 0
                while successes < 5 and attempts < 100:
                    attempts += 1
                    try:
                        with attr.locked(timeout_ms=5000) as stub:
                            stub.increment()
                        successes += 1
                    except (LockMovedError, LockTimeoutError):
                        continue  # contention is expected; retry the bracket
                if successes != 5:
                    raise AssertionError(f"only {successes} increments landed")
            except Exception as exc:  # noqa: BLE001 — recorded for the assert
                errors.append(exc)
            finally:
                done.wait(timeout=10)

        beta_puller = lambda: COD("C", runtime=trio["beta"].namespace, origin="alpha")
        gamma_puller = lambda: GREV("C", "gamma", runtime=trio["gamma"].namespace, origin="alpha")

        threads = [
            threading.Thread(target=invoker, args=("beta", beta_puller)),
            threading.Thread(target=invoker, args=("gamma", gamma_puller)),
        ]
        for t in threads:
            t.start()
        done.wait(timeout=10)
        for t in threads:
            t.join(timeout=10)
        assert errors == []
        # Exactly one copy exists, somewhere, with all increments applied.
        hosts = [
            node.node_id for node in trio
            if node.namespace.store.contains("C")
        ]
        assert len(hosts) == 1
        final = trio[hosts[0]].stub("C", location=hosts[0])
        assert final.get() == 10

    def test_readers_share_stay_locks(self, pair):
        pair["alpha"].register("C", Counter(), shared=True)
        results = []

        def reader():
            cle = CLE("C", runtime=pair["alpha"].namespace)
            with cle.locked(timeout_ms=5000) as stub:
                results.append(stub.increment())

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert sorted(results) == list(range(1, 9))

    def test_unlocked_concurrent_moves_are_refused(self, trio):
        """Without the move lock, a second mover is turned away while the
        object is contended."""
        trio["alpha"].register("C", Counter(), shared=True)
        grant = trio["beta"].namespace.lock("C", "beta", origin_hint="alpha")
        with pytest.raises((LockError, MageError)):
            trio["gamma"].namespace.move("C", "gamma", origin_hint="alpha")
        trio["beta"].namespace.unlock(grant)


class TestConcurrentInvocations:
    def test_parallel_increments_on_stationary_object(self, pair):
        pair["beta"].register("C", Counter(), shared=True)
        stub = pair["alpha"].stub("C", location="beta")

        def hammer():
            for _ in range(25):
                stub.increment()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        assert stub.get() == 100
