"""Child process for the two-process cluster tests (and example).

Not a test module (no ``test_`` prefix): the integration tests and the
``examples/two_process_cluster.py`` demo launch this script with
``sys.executable`` to host a real, separate-process MAGE node.  It

* builds its own ``TcpNetwork`` (separate process ⇒ separate registry,
  so every exchange with the parent provably crosses the wire),
* joins the parent's cluster through the seed endpoint passed on the
  command line (JOIN/ANNOUNCE fill both address books),
* hosts a ``counter`` servant (invocation target), and a pinned
  ``probe`` servant that reports this process's observed message trace —
  which is how the parent asserts, from outside, that a streamed
  transfer really arrived as PREPARE/CHUNK/COMMIT frames,
* then serves until its stdin closes or it is killed (the tests kill it
  on purpose to exercise heartbeat failure detection).
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import Node
from repro.net import Endpoint, TcpNetwork


class Counter:
    """A tiny servant the parent invokes across processes."""

    def __init__(self) -> None:
        self.value = 0

    def incr(self, by: int = 1) -> int:
        self.value += by
        return self.value

    def get(self) -> int:
        return self.value


class TraceProbe:
    """Reports this process's transport trace to remote callers.

    The parent cannot see the child's trace directly; invoking the probe
    is how the tests assert which frames arrived here.
    """

    def __init__(self, net: TcpNetwork) -> None:
        self._net = net

    def kinds(self) -> list[str]:
        return sorted(set(self._net.trace.kinds()))

    def summary(self) -> dict[str, int]:
        return dict(self._net.trace.summary())

    def negotiated(self, src: str, dst: str):
        return self._net.negotiated_codecs(src, dst)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--node", default="worker", help="this node's id")
    parser.add_argument("--seed", required=True,
                        help="seed member as 'node_id@host:port'")
    parser.add_argument("--load", type=float, default=0.0,
                        help="advertised host load")
    parser.add_argument("--stream-threshold", type=int, default=None)
    parser.add_argument("--chunk-bytes", type=int, default=None)
    args = parser.parse_args()
    seed_id, _, seed_addr = args.seed.partition("@")

    net = TcpNetwork()
    node = Node(args.node, net,
                stream_threshold=args.stream_threshold,
                chunk_bytes=args.chunk_bytes)
    node.set_load(args.load)
    node.register("counter", Counter())
    node.register("probe", TraceProbe(net), pinned=True)
    node.join(seed_id, Endpoint.parse(seed_addr))
    print(f"READY {args.node} @ {net.endpoint_of(args.node)}", flush=True)

    # Serve until the parent closes our stdin (or kills us outright —
    # the heartbeat tests do exactly that).
    sys.stdin.read()
    node.shutdown()
    net.shutdown()


if __name__ == "__main__":
    main()
