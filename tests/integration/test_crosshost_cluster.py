"""Two real processes, one cluster: the cross-host acceptance tests.

The parent hosts ``hub`` on its own ``TcpNetwork``; a spawned child
Python process (``crosshost_child.py``) hosts ``worker`` on another.
Everything the single-process stack does in-memory must here cross the
wire through the HELLO-handshaked, address-book-routed endpoint layer:
membership join, locking, invocation, a *streamed* move, codec
negotiation — and, when the child is killed, heartbeat failure
detection feeding the load balancer.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import threading

import pytest

from repro.cluster import Cluster, LoadBalancer
from repro.net import TcpNetwork

CHILD = pathlib.Path(__file__).with_name("crosshost_child.py")
SRC = pathlib.Path(__file__).resolve().parents[2] / "src"

STREAM_THRESHOLD = 4 * 1024
CHUNK_BYTES = 2 * 1024


class Payload:
    """Migrates by value; its class ships by source to the child.

    Deliberately dependency-free: the child process has never imported
    this test module, so the class crosses as a source descriptor and is
    rebuilt there.
    """

    def __init__(self, blob):
        self.blob = blob

    def size(self):
        return len(self.blob)

    def checksum(self):
        return sum(self.blob) % 65536


class ChildProcess:
    """A spawned worker node, with captured output and a READY gate."""

    def __init__(self, seed: str, load: float = 5.0) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, str(CHILD), "--node", "worker",
             "--seed", seed, "--load", str(load),
             "--stream-threshold", str(STREAM_THRESHOLD),
             "--chunk-bytes", str(CHUNK_BYTES)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, env=env, text=True,
        )
        self.lines: list[str] = []
        self._ready = threading.Event()
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        for line in self.proc.stdout:
            self.lines.append(line.rstrip())
            if line.startswith("READY"):
                self._ready.set()
        self._ready.set()  # EOF: unblock waiters so they can report output

    def wait_ready(self, timeout_s: float = 30.0) -> None:
        if not self._ready.wait(timeout_s) or self.proc.poll() is not None:
            raise AssertionError(
                f"child never became ready; output: {self.lines}"
            )
        if not any(line.startswith("READY") for line in self.lines):
            raise AssertionError(f"child failed before READY: {self.lines}")

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=10)

    def close(self) -> None:
        try:
            if self.proc.poll() is None:
                self.proc.stdin.close()  # child exits its serve loop
                self.proc.wait(timeout=5)
        except (OSError, subprocess.TimeoutExpired):
            self.kill()


@pytest.fixture
def two_process():
    """A hub cluster in this process plus a worker child process."""
    net = TcpNetwork()
    cluster = Cluster(["hub"], transport=net,
                      stream_threshold=STREAM_THRESHOLD,
                      chunk_bytes=CHUNK_BYTES)
    child = ChildProcess(seed=f"hub@{net.endpoint_of('hub')}")
    try:
        child.wait_ready()
        yield cluster, net, child
    finally:
        child.kill()
        cluster.shutdown()


def test_two_process_cluster_end_to_end(two_process):
    cluster, net, child = two_process
    hub = cluster["hub"]
    membership = hub.membership

    # -- membership: the JOIN (and its roster reply) crossed the wire ------
    assert membership.hosts() == ["hub", "worker"]
    assert net.endpoint_of("worker") is not None
    assert hub.namespace.server.ping("worker")

    # -- invoke: a GREV-style remote invocation against the child ----------
    counter = hub.stub("counter", location="worker")
    assert counter.incr(3) == 3
    assert counter.incr(4) == 7

    # -- lock: stay/move locking served by the other process ---------------
    grant = hub.namespace.lock("counter", target="hub",
                               origin_hint="worker", timeout_ms=10_000)
    assert grant.location == "worker"
    assert grant.kind == "move"
    hub.namespace.unlock(grant)

    # -- streaming move: PREPARE/CHUNK/COMMIT into the child ---------------
    blob = bytes(range(256)) * 256  # 64 KiB >> the 4 KiB stream threshold
    payload = Payload(blob)
    hub.register("payload", payload)
    assert hub.move("payload", "worker") == "worker"
    assert not hub.namespace.store.contains("payload")
    assert hub.find("payload", origin_hint="hub") == "worker"
    moved = hub.stub("payload", location="worker")
    assert moved.size() == len(blob)
    assert moved.checksum() == payload.checksum()

    # The child's own trace proves the object arrived as a chunked
    # two-phase stream, not one monolithic OBJECT_TRANSFER frame.
    probe = hub.stub("probe", location="worker")
    seen = probe.kinds()
    assert "TRANSFER_PREPARE" in seen
    assert "TRANSFER_CHUNK" in seen
    assert "TRANSFER_COMMIT" in seen
    assert probe.summary()["TRANSFER_CHUNK"] >= len(blob) // CHUNK_BYTES

    # -- codec negotiation happened on the wire, not via any registry ------
    # (the two processes share no in-process advertisement state, and no
    # advertise_codecs call was ever made between them)
    negotiated = net.negotiated_codecs("hub", "worker")
    assert negotiated is not None and "zlib" in negotiated
    assert net.peer_codecs("worker") == ()  # the registry path knows nothing
    assert probe.negotiated("worker", "hub") is not None  # child side too

    # -- failure: kill the child; the heartbeat must notice ----------------
    # A forwarding hint now points at the dead host; it must be evicted.
    assert hub.namespace.registry.forwarding_hint("payload") == "worker"
    child.kill()
    membership.heartbeat_timeout_ms = 500
    for _ in range(membership.suspect_after):
        membership.heartbeat_once()
    assert membership.is_dead("worker")
    assert membership.hosts() == ["hub"]
    assert hub.namespace.registry.forwarding_hint("payload") is None
    assert net.link_latency_s("worker") is None
    assert net.endpoint_of("worker") is None

    # -- and the balancer never targets the corpse -------------------------
    balancer = LoadBalancer(cluster, membership=membership, threshold=50)
    snapshot = balancer.snapshot()
    assert "worker" not in snapshot
    assert balancer.hedge_candidates(snapshot) == ["hub"]


def test_balancer_sees_cross_process_load_before_failure(two_process):
    cluster, net, child = two_process
    hub = cluster["hub"]
    hub.set_load(10)
    balancer = LoadBalancer(cluster, membership=hub.membership, threshold=50)
    snapshot = balancer.snapshot()
    # The child advertised --load 5; the sweep crossed processes.
    assert snapshot == {"hub": 10.0, "worker": 5.0}
    assert balancer.least_loaded(snapshot) == "worker"
