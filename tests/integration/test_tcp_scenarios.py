"""The paper's scenarios over the real TCP transport.

Everything the simulated-network tests prove, re-run over loopback
sockets: marshalling, class shipping, weak migration, attributes, and
agents all cross genuine connections here.
"""

import pytest

from repro.cluster import Cluster
from repro.core.factory import FactoryMode
from repro.core.models import CLE, COD, MAgent, REV
from repro.bench.workloads import Counter, GeoDataFilterImpl, ProbeAgent


@pytest.fixture
def tcp_cluster():
    cluster = Cluster(["lab", "sensor1", "sensor2"], transport="tcp")
    yield cluster
    cluster.shutdown()


class TestOilTourOverTcp:
    def test_rev_ma_cod_sequence(self, tcp_cluster):
        lab = tcp_cluster["lab"].namespace
        tcp_cluster["lab"].register_class(GeoDataFilterImpl)

        rev = REV("GeoDataFilterImpl", "geoData", "sensor1",
                  mode=FactoryMode.SINGLE_USE, ctor_args=(0.5,), runtime=lab)
        geo = rev.bind()
        geo.ingest([0.2, 0.8, 0.9])
        assert geo.filter_data() == 2

        ma = MAgent("geoData", "sensor2", runtime=lab, origin="sensor1")
        geo = ma.bind()
        geo.ingest([0.7])
        assert geo.filter_data() == 1

        cod = COD("geoData", runtime=lab, origin="sensor1")
        geo = cod.bind()
        assert geo.process_data()["samples"] == 3
        assert tcp_cluster["lab"].namespace.store.contains("geoData")


class TestPrimitivesOverTcp:
    def test_cle_follows_moves(self, tcp_cluster):
        tcp_cluster["lab"].register("c", Counter(), shared=True)
        cle = CLE("c", runtime=tcp_cluster["sensor2"].namespace, origin="lab")
        assert cle.bind().increment() == 1
        tcp_cluster["lab"].namespace.move("c", "sensor1")
        assert cle.bind().increment() == 2
        assert cle.cloc == "sensor1"

    def test_forwarding_chain_over_sockets(self, tcp_cluster):
        tcp_cluster["lab"].register("w", Counter())
        tcp_cluster["lab"].namespace.move("w", "sensor1")
        tcp_cluster["sensor1"].namespace.move("w", "sensor2")
        assert tcp_cluster["lab"].find("w", verify=True) == "sensor2"

    def test_locking_over_sockets(self, tcp_cluster):
        tcp_cluster["lab"].register("c", Counter())
        grant = tcp_cluster["sensor1"].namespace.lock(
            "c", "sensor1", origin_hint="lab", timeout_ms=5000
        )
        assert grant.kind == "move"
        moved = tcp_cluster["sensor1"].namespace.move(
            "c", "sensor1", origin_hint="lab", lock_token=grant.token
        )
        assert moved == "sensor1"
        tcp_cluster["sensor1"].namespace.unlock(grant)

    def test_agent_tour_over_sockets(self, tcp_cluster):
        tcp_cluster["lab"].agents.launch(
            ProbeAgent(), "probe", ("sensor1", "sensor2")
        )
        # TCP casts are genuinely asynchronous; poll for arrival.
        import time

        deadline = time.monotonic() + 10.0
        sensor2 = tcp_cluster["sensor2"].namespace
        while time.monotonic() < deadline:
            if sensor2.store.contains("probe"):
                break
            time.sleep(0.05)
        report = tcp_cluster["lab"].stub("probe", location="sensor2").report()
        assert report["visited"] == ["sensor1", "sensor2"]
        assert report["completed"] is True

    def test_remote_error_carries_traceback_over_sockets(self, tcp_cluster):
        from repro.errors import RemoteInvocationError

        tcp_cluster["sensor1"].register("c", Counter())
        stub = tcp_cluster["lab"].stub("c", location="sensor1")
        with pytest.raises(RemoteInvocationError) as excinfo:
            stub.add("wrong")
        assert "Traceback" in excinfo.value.remote_traceback
