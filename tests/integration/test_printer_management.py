"""§3.3's CLE scenario: clients print via CLE while a job controller moves
print servers around in response to printer availability."""

import pytest

from repro.core.models import CLE
from repro.bench.workloads import PrintServer


@pytest.fixture
def office(make_cluster):
    cluster = make_cluster(["controller", "floor1", "floor2", "floor3"])
    cluster["controller"].register("ps", PrintServer("ps"), shared=True)
    return cluster


class TestPrinterManagement:
    def test_clients_follow_the_moving_server(self, office):
        controller = office["controller"].namespace
        client = CLE("ps", runtime=office["floor3"].namespace,
                     origin="controller")

        assert client.bind().print_job("q1").startswith("ps:1")
        controller.move("ps", "floor1")          # printer came online
        assert client.bind().print_job("q2").startswith("ps:2")
        controller.move("ps", "floor2")          # floor1's printer jammed
        assert client.bind().print_job("q3").startswith("ps:3")
        # One component, one queue, three namespaces: CLE ≠ Jini.
        assert client.bind().queue_length() == 3

    def test_multiple_clients_one_component(self, office):
        clients = [
            CLE("ps", runtime=office[node].namespace, origin="controller")
            for node in ("floor1", "floor2", "floor3")
        ]
        for i, client in enumerate(clients):
            client.bind().print_job(f"job-{i}")
        office["controller"].namespace.move("ps", "floor2")
        for i, client in enumerate(clients):
            client.bind().print_job(f"job2-{i}")
        final = CLE("ps", runtime=office["controller"].namespace,
                    origin="controller")
        assert final.bind().queue_length() == 6

    def test_locked_printing_during_migration_pressure(self, office):
        """Clients bracket their jobs with stay locks; the controller's
        moves interleave safely (§4.4)."""
        client = CLE("ps", runtime=office["floor1"].namespace,
                     origin="controller")
        controller = office["controller"].namespace

        with client.locked() as stub:
            stub.print_job("protected")
        controller.move("ps", "floor3")
        with client.locked() as stub:
            receipt = stub.print_job("after-move")
        assert receipt.startswith("ps:2")
