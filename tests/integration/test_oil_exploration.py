"""§3.6 end to end: the oil-exploration scenario.

REV instantiates the filter at sensor1; when the sensor is exhausted an MA
moves it to sensor2; finally COD brings the object (and its accumulated
data) back to the lab for processing — including the CombinedMA rewrite.
"""

import pytest

from repro.core.factory import FactoryMode
from repro.core.models import COD, MAgent, REV
from repro.core.policy import Combined
from repro.bench.workloads import GeoDataFilterImpl


@pytest.fixture
def field(make_cluster):
    cluster = make_cluster(["lab", "sensor1", "sensor2"])
    cluster["lab"].register_class(GeoDataFilterImpl)
    return cluster


def feed_sensor(cluster, sensor, stub, readings):
    """Simulate the sensor feeding raw data into the co-located filter."""
    assert stub.ref.node_id == sensor
    stub.ingest(readings)
    stub.mark_site(sensor)


class TestPaperSequence:
    def test_rev_then_ma_then_cod(self, field):
        lab = field["lab"].namespace

        # "We declare an REV mobility attribute and call its bind to
        #  instantiate geoData on its target, sensor1."
        rev = REV("GeoDataFilterImpl", "geoData", "sensor1",
                  mode=FactoryMode.SINGLE_USE, ctor_args=(0.5,), runtime=lab)
        geo_filter = rev.bind()
        feed_sensor(field, "sensor1", geo_filter, [0.2, 0.7, 0.9])
        assert geo_filter.filter_data() == 2  # filtering happened in place

        # "When sensor1 is exhausted, we move geoData to sensor2."
        magent = MAgent("geoData", "sensor2", runtime=lab, origin="sensor1")
        geo_filter = magent.bind()
        feed_sensor(field, "sensor2", geo_filter, [0.8, 0.1])
        assert geo_filter.filter_data() == 1

        # "Finally, we'd return the data to our research lab by binding a
        #  COD mobility attribute to the geoData object."
        cod = COD("geoData", runtime=lab, origin="sensor1")
        geo_filter = cod.bind()
        summary = geo_filter.process_data()
        assert summary["samples"] == 3
        assert summary["sites"] == ["sensor1", "sensor2"]
        assert field["lab"].namespace.store.contains("geoData")

    def test_filtering_in_place_keeps_raw_data_off_the_wire(self, field):
        """The point of REV here: the enormous raw buffer never crosses
        the network — only the component and the filtered summary do."""
        lab = field["lab"].namespace
        rev = REV("GeoDataFilterImpl", "geoData", "sensor1",
                  mode=FactoryMode.SINGLE_USE, ctor_args=(0.99,), runtime=lab)
        geo_filter = rev.bind()
        big = [0.0] * 10_000
        geo_filter.ingest(big)   # crosses once as an argument (unavoidable)
        geo_filter.filter_data()
        cod = COD("geoData", runtime=lab, origin="sensor1")
        geo_filter = cod.bind()
        # The filter came home with zero survivors, not 10k readings.
        assert geo_filter.process_data()["samples"] == 0


class TestCombinedRewrite:
    def test_combined_ma_drives_the_whole_tour(self, field):
        """§3.6's CombinedMA: 'a single mobility attribute that controls
        where geoData executes across all method invocations'."""
        lab = field["lab"].namespace
        # Seed the component at sensor1 as in the plain sequence.
        seed = REV("GeoDataFilterImpl", "geoData", "sensor1",
                   mode=FactoryMode.SINGLE_USE, ctor_args=(0.5,), runtime=lab)
        seed.bind()

        sensor_status = {"sensor1": "active", "sensor2": "active"}

        def select_target(attr):
            for sensor, status in sensor_status.items():
                if status == "active":
                    return sensor
            return "researchLab"

        combined = Combined(
            "geoData",
            {
                "sensor1": MAgent("geoData", "sensor1", runtime=lab,
                                  origin="sensor1"),
                "sensor2": MAgent("geoData", "sensor2", runtime=lab,
                                  origin="sensor1"),
                "researchLab": COD("geoData", runtime=lab, origin="sensor1"),
            },
            chooser=select_target,
            runtime=lab,
        )

        # Loop over sensors exactly like the paper's while-loop.
        for sensor in ("sensor1", "sensor2"):
            geo_filter = combined.bind()
            feed_sensor(field, sensor, geo_filter, [0.6, 0.3])
            geo_filter.filter_data()
            sensor_status[sensor] = "exhausted"

        geo_filter = combined.bind()  # all sensors spent: come home
        summary = geo_filter.process_data()
        assert summary["samples"] == 2
        assert combined.history == ["sensor1", "sensor2", "researchLab"]
        assert field["lab"].namespace.store.contains("geoData")

    def test_seamlessly_handles_new_sensors(self, field):
        """'It seamlessly handles the addition of new sensors.'"""
        field.add_node("sensor3")
        lab = field["lab"].namespace
        seed = REV("GeoDataFilterImpl", "geoData", "sensor1",
                   mode=FactoryMode.SINGLE_USE, ctor_args=(0.5,), runtime=lab)
        seed.bind()

        itinerary = iter(["sensor2", "sensor3", "researchLab"])
        attributes = {
            "sensor2": MAgent("geoData", "sensor2", runtime=lab, origin="sensor1"),
            "sensor3": MAgent("geoData", "sensor3", runtime=lab, origin="sensor1"),
            "researchLab": COD("geoData", runtime=lab, origin="sensor1"),
        }
        combined = Combined("geoData", attributes,
                            chooser=lambda attr: next(itinerary), runtime=lab)
        for expected in ("sensor2", "sensor3", "lab"):
            stub = combined.bind()
            assert stub.ref.node_id == expected
