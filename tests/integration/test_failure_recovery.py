"""Fault tolerance: message loss with retries, crashes, partitions."""

import pytest

from repro.errors import NodeUnreachableError
from repro.net.conditions import BernoulliLoss, DeterministicLoss
from repro.bench.workloads import Counter


class TestMessageLoss:
    def test_migration_survives_lossy_network(self, make_cluster):
        """§4.3: protocols 'must recover from message loss'."""
        cluster = make_cluster(
            ["alpha", "beta"], loss=BernoulliLoss(0.15, seed=5)
        )
        cluster["alpha"].register("c", Counter(10))
        cluster["alpha"].namespace.move("c", "beta")
        stub = cluster["alpha"].stub("c", location="beta")
        for expected in range(11, 21):
            assert stub.increment() == expected

    def test_lost_transfer_does_not_duplicate_object(self, make_cluster):
        """The OBJECT_TRANSFER ack is lost; the retry must not create a
        second copy or reset state (at-most-once execution)."""
        cluster = make_cluster(
            ["alpha", "beta"],
            loss=DeterministicLoss({"REPLY": 1}),
        )
        cluster["alpha"].register("c", Counter(5))
        cluster["alpha"].namespace.move("c", "beta")
        assert not cluster["alpha"].namespace.store.contains("c")
        assert cluster["beta"].stub("c", location="beta").get() == 5

    def test_lost_find_retries(self, make_cluster):
        cluster = make_cluster(
            ["alpha", "beta"], loss=DeterministicLoss({"FIND": 2})
        )
        cluster["beta"].register("c", Counter())
        assert cluster["alpha"].find("c", origin_hint="beta") == "beta"


class TestCrashes:
    def test_crashed_host_surfaces_clean_error(self, pair):
        pair["beta"].register("c", Counter())
        pair.crash("beta")
        with pytest.raises(NodeUnreachableError):
            pair["alpha"].namespace.move("c", "alpha", origin_hint="beta")

    def test_work_resumes_after_recovery(self, pair):
        pair["beta"].register("c", Counter())
        pair.crash("beta")
        with pytest.raises(NodeUnreachableError):
            pair["alpha"].find("c", origin_hint="beta")
        pair.recover("beta")
        assert pair["alpha"].find("c", origin_hint="beta") == "beta"
        assert pair["alpha"].namespace.move("c", "alpha",
                                            origin_hint="beta") == "alpha"

    def test_crash_of_chain_intermediate(self, trio):
        """A dead forwarding hop breaks the walk with a clean error."""
        trio["alpha"].register("c", Counter())
        trio["alpha"].namespace.move("c", "beta")
        trio["beta"].namespace.move("c", "gamma")
        trio.crash("beta")
        # alpha's stale hint names beta; the walk dies at the crash, loudly.
        with pytest.raises(NodeUnreachableError):
            trio["alpha"].find("c", verify=True)
        trio.recover("beta")
        assert trio["alpha"].find("c", verify=True) == "gamma"


class TestPartitions:
    def test_partitioned_move_fails_atomically(self, pair):
        pair["alpha"].register("c", Counter(7))
        pair.partition("alpha", "beta")
        with pytest.raises(NodeUnreachableError):
            pair["alpha"].namespace.move("c", "beta")
        # Transfer-then-evict ordering: the object is still whole at home.
        assert pair["alpha"].namespace.store.contains("c")
        pair.heal("alpha", "beta")
        assert pair["alpha"].namespace.move("c", "beta") == "beta"
        assert pair["beta"].stub("c", location="beta").get() == 7

    def test_unaffected_paths_keep_working(self, trio):
        trio["alpha"].register("c", Counter())
        trio.partition("alpha", "beta")
        # gamma can still orchestrate a move around the broken link.
        assert trio["gamma"].namespace.move(
            "c", "gamma", origin_hint="alpha"
        ) == "gamma"
