"""Quantifying the paper's motivation: colocation keeps data off the wire.

§1: mobility exists "to improve her program's runtime efficiency by
colocating components and resources."  §3.6 makes it concrete: sensors
generate "an enormous amount of data, which we would like to filter in
place, at the sensor."  With byte-level trace accounting we can assert the
claim, not just narrate it.
"""

from repro.core.factory import FactoryMode
from repro.core.models import COD, REV
from repro.bench.workloads import GeoDataFilterImpl

RAW_READINGS = 20_000


class TestColocationSavesBandwidth:
    def test_filter_in_place_vs_ship_raw_data(self, make_cluster):
        # --- Strategy A (MAGE): move the filter to the data --------------
        mage = make_cluster(["lab", "sensor"])
        mage["lab"].register_class(GeoDataFilterImpl)
        lab = mage["lab"].namespace
        rev = REV("GeoDataFilterImpl", "geo", "sensor",
                  mode=FactoryMode.SINGLE_USE, ctor_args=(0.99,), runtime=lab)
        geo = rev.bind()
        # The sensor feeds its *local* filter directly (no network).
        sensor_filter = mage["sensor"].namespace.store.get("geo")
        sensor_filter.ingest([0.5] * RAW_READINGS)
        geo.filter_data()
        cod = COD("geo", runtime=lab, origin="sensor")
        summary = cod.bind().process_data()
        assert summary["samples"] == 0
        mage_bytes = mage.trace.remote_bytes()

        # --- Strategy B (static RPC): ship every reading to the lab ------
        static = make_cluster(["lab", "sensor"])
        static["lab"].register("geo", GeoDataFilterImpl(0.99))
        sensor_stub = static["sensor"].namespace.stub("geo", location="lab")
        batch = 1000
        for start in range(0, RAW_READINGS, batch):
            sensor_stub.ingest([0.5] * batch)
        sensor_stub.filter_data()
        sensor_stub.process_data()
        static_bytes = static.trace.remote_bytes()

        # The MAGE strategy moves the component (a few KB); the static
        # strategy moves the data (hundreds of KB).
        assert mage_bytes * 10 < static_bytes, (
            f"colocation shipped {mage_bytes}B, static shipped {static_bytes}B"
        )

    def test_component_size_is_independent_of_data_size(self, make_cluster):
        """Moving the filter costs the same whether it has seen 10 or 10k
        readings *if the data stays filtered down* — and grows only with
        retained state."""
        costs = {}
        for n_raw in (10, 10_000):
            cluster = make_cluster(["lab", "sensor"])
            geo = GeoDataFilterImpl(threshold=0.99)
            geo.ingest([0.1] * n_raw)
            geo.filter_data()  # retains ~nothing
            cluster["lab"].register("geo", geo)
            before = cluster.trace.remote_bytes()
            cluster["lab"].namespace.move("geo", "sensor")
            costs[n_raw] = cluster.trace.remote_bytes() - before
        # Both transfers carry just the class + near-empty state.
        assert abs(costs[10] - costs[10_000]) < 200
