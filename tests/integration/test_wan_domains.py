"""§7's WAN vision, end to end: administrative domains with access control
and resource budgets.

"We are exploring a version of MAGE that runs on and scales to WANs
consisting of large, heterogeneous networks, fragmented into competing and
disjoint administrative domains, each with different services, resources
and security needs."
"""

import pytest

from repro.core.models import CLE, REV
from repro.errors import AccessDeniedError, MageError, ResourceExhaustedError
from repro.ext.access import AccessPolicy, guard
from repro.ext.resources import OBJECT_SLOTS, meter
from repro.bench.workloads import Counter


@pytest.fixture
def wan(make_cluster):
    """Two domains: labnet {lab1, lab2} and partnernet {partner}."""
    cluster = make_cluster(["lab1", "lab2", "partner"])
    for node, domain in (("lab1", "labnet"), ("lab2", "labnet"),
                         ("partner", "partnernet")):
        policy = AccessPolicy(domain=domain).restrict()
        for peer, peer_domain in (("lab1", "labnet"), ("lab2", "labnet"),
                                  ("partner", "partnernet")):
            policy.join_domain(peer, peer_domain)
        guard(cluster[node].namespace, policy)
        cluster[node].namespace._policy = policy  # test handle
    return cluster


class TestDomainIsolation:
    def test_intra_domain_mobility_is_free(self, wan):
        wan["lab1"].register("data", Counter())
        assert wan["lab1"].namespace.move("data", "lab2") == "lab2"
        assert wan["lab2"].stub("data", location="lab2").increment() == 1

    def test_cross_domain_everything_denied_by_default(self, wan):
        wan["lab1"].register("data", Counter())
        with pytest.raises((AccessDeniedError, MageError)):
            wan["partner"].stub("data", location="lab1").get()
        with pytest.raises((AccessDeniedError, MageError)):
            wan["partner"].namespace.move("data", "partner",
                                          origin_hint="lab1")
        assert wan["lab1"].namespace.store.contains("data")

    def test_selective_cross_domain_grant(self, wan):
        """labnet opens invocation (only) to partnernet."""
        wan["lab1"].namespace._policy.allow("partnernet", "invoke")
        wan["lab1"].register("svc", Counter())
        # Partner may now call ...
        assert wan["partner"].stub("svc", location="lab1").increment() == 1
        # ... but still cannot pull the component out of the domain.
        with pytest.raises((AccessDeniedError, MageError)):
            wan["partner"].namespace.move("svc", "partner",
                                          origin_hint="lab1")

    def test_rev_deployment_needs_move_in_grant(self, wan):
        wan["lab1"].register_class(Counter)
        rev = REV("Counter", "deployed", "partner",
                  runtime=wan["lab1"].namespace)
        with pytest.raises((AccessDeniedError, MageError)):
            rev.bind()
        # Partner opens its door to labnet code:
        wan["partner"].namespace._policy.allow("labnet", "move_in",
                                               "load_class", "invoke")
        stub = rev.bind()
        assert stub.increment() == 1


class TestDomainResources:
    def test_budgeted_domain_gateway(self, wan):
        """partnernet accepts labnet components, but only two at a time."""
        wan["partner"].namespace._policy.allow(
            "labnet", "move_in", "load_class", "invoke", "move_out"
        )
        # labnet accepts its own components back from partnernet.
        wan["lab1"].namespace._policy.allow("partnernet", "move_in")
        metered = meter(wan["partner"].namespace, {OBJECT_SLOTS: 2})
        for i in range(2):
            wan["lab1"].register(f"job{i}", Counter())
            wan["lab1"].namespace.move(f"job{i}", "partner")
        wan["lab1"].register("job2", Counter())
        with pytest.raises(ResourceExhaustedError):
            wan["lab1"].namespace.move("job2", "partner")
        assert metered.rejections == 1
        # Work finishes and leaves; capacity frees up.
        wan["lab1"].namespace.move("job0", "lab1", origin_hint="lab1")
        assert wan["lab1"].namespace.move("job2", "partner") == "partner"

    def test_cle_across_granted_domains(self, wan):
        wan["lab1"].namespace._policy.allow("partnernet", "invoke")
        wan["lab2"].namespace._policy.allow("partnernet", "invoke")
        wan["lab1"].register("svc", Counter(), shared=True)
        client = CLE("svc", runtime=wan["partner"].namespace, origin="lab1")
        assert client.bind().increment() == 1
        wan["lab1"].namespace.move("svc", "lab2")
        assert client.bind().increment() == 2
        assert client.cloc == "lab2"
