"""Every shipped example must run clean (exit 0, expected landmarks)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: script name → a landmark string its output must contain.
LANDMARKS = {
    "async_fanout.py": "rebalanced shard7: host7 -> host0",
    "deadlines.py": "deadline demo complete",
    "quickstart.py": "calls survived every move",
    "oil_exploration.py": "CombinedMA → researchLab",
    "printer_management.py": "queue length after all moves: 4",
    "load_balancing.py": "migrations: 2",
    "grev_tour.py": "GREV trail:",
    "cluster_dashboard.py": "whole day:",
    "streaming_move.py": "loser never materialized the object",
    "two_process_cluster.py": "[parent] done.",
}


@pytest.mark.parametrize("script", sorted(LANDMARKS))
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert LANDMARKS[script] in result.stdout, result.stdout


def test_every_example_is_covered():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    assert shipped == set(LANDMARKS), "update LANDMARKS for new examples"
